"""Experiment SRV.2 — chaos/soak: the serving layer under injected faults.

A serving tier for EXPTIME/PSPACE-hard procedures *will* see workers
OOM-killed mid-search, budgets tripping, store contention, and queue
spikes.  This experiment drives a 10k-job Zipf+burst traffic stream
(:func:`repro.workloads.scaling.serve_traffic_burst`) into a
``SolverService(workers=4)`` while :class:`repro.guard.inject.ChaosSpec`
deterministically injects:

* **worker kills** — ``os._exit`` at a guard checkpoint, genuinely
  mid-job, breaking the whole process pool (recovery = respawn +
  re-dispatch);
* **guard trips** — forced budget exhaustion (recovery = budget-
  escalation retry, exhausted retries dead-letter);
* **exec stalls** — wedged-worker sleeps before execution;
* **store faults** — first-attempt "database is locked" errors on the
  SQLite tier (recovery = the store's decorrelated-jitter retry).

The invariants asserted, fault schedule notwithstanding:

1. **every job resolves** — decided, sound UNKNOWN, or dead-lettered;
   no handle hangs;
2. **zero contradictions** — every *decided* answer equals the
   unfaulted ground truth computed beforehand;
3. **bounded drain** — the whole soak completes within
   :data:`DRAIN_BOUND_S`.

A second section demonstrates budget-escalation retry converting a
guard-tripped workload family (``nonempty_pl`` on the 12-bit succinct
counter under a too-small step budget) from UNKNOWN to a definite YES —
no chaos involved, just escalation.

``main()`` records both into ``BENCH_serve_chaos.json`` via
``merge_section``.
"""

from __future__ import annotations

import tempfile
import time

from repro import metrics
from repro.analysis import nonempty_pl
from repro.guard import Budget
from repro.guard import inject
from repro.serve import RetryPolicy, SolverService
from repro.workloads.scaling import pl_counter_sws, serve_traffic_burst

from _bench_io import BENCH_SCHEMA_VERSION, merge_section  # noqa: F401

BENCH_SERVE_CHAOS = "BENCH_serve_chaos.json"

#: The soak: 10k jobs over 12 distinct counter services in 8 waves,
#: every 3rd wave a 4x burst.
TRAFFIC_KWARGS = dict(
    n_jobs=10_000, distinct=12, seed=7, min_bits=4, waves=8, burst_every=3,
    burst_factor=4,
)

#: Deterministic fault rates (drawn per dispatched job, keyed on
#: ``fingerprint:attempt`` so a re-dispatched job re-draws its fate).
#: Rates are deliberately brutal: dedup + the answer cache collapse the
#: 10k jobs to a few dozen actual executions, so per-dispatch rates must
#: be high for every fault path to fire in one soak.
CHAOS = inject.ChaosSpec(
    kill_rate=0.15,
    stall_rate=0.10,
    stall_s=0.02,
    trip_rate=0.35,
    trip_limit="steps",
    store_error_rate=0.20,
    seed=7,
)

#: Generous wall-clock ceiling for the whole soak (the point is "does
#: not hang", not "is fast"); the measured time is recorded too.
DRAIN_BOUND_S = 180.0

#: Step budget for the soak jobs — roomy enough that only *injected*
#: trips fire (the largest instance, 15 bits, needs ~2^15 steps).
SOAK_BUDGET = Budget(step_budget=200_000)


def run_chaos_soak(
    traffic_kwargs: dict = TRAFFIC_KWARGS,
    chaos: inject.ChaosSpec = CHAOS,
    workers: int = 4,
    drain_bound_s: float = DRAIN_BOUND_S,
) -> dict:
    """Drive the burst traffic through a chaos-faulted service.

    Returns the soak report dict; raises ``AssertionError`` if any
    invariant breaks.  Reusable by the tier-2 soak test with a smaller
    traffic shape.
    """
    if not metrics.is_enabled():
        # Recording on, no sink: the fault counters (store retries,
        # worker losses, io errors) are part of the soak's report.
        metrics.configure(enabled=True)
    waves = serve_traffic_burst(**traffic_kwargs)
    n_jobs = sum(len(wave) for wave in waves)

    # Unfaulted ground truth, one direct call per distinct instance.
    truth: dict[int, str] = {}
    for wave in waves:
        for _, args in wave:
            if id(args[0]) not in truth:
                truth[id(args[0])] = nonempty_pl(args[0]).verdict.value
    assert all(v != "unknown" for v in truth.values()), "ground truth undecided"

    outcomes = {"decided": 0, "unknown": 0, "dead_lettered": 0}
    contradictions = 0
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as cache_dir:
        with inject.chaos(chaos):
            service = SolverService(
                workers=workers,
                cache_dir=cache_dir,
                retry_policy=RetryPolicy(
                    max_attempts=3, budget_multiplier=4.0, backoff_base_s=0.01,
                    backoff_cap_s=0.2,
                ),
            )
            try:
                for wave in waves:
                    handles = [
                        service.submit(
                            name, *args, budget=SOAK_BUDGET, source="soak"
                        )
                        for name, args in wave
                    ]
                    service.drain()
                    for handle, (_, args) in zip(handles, wave):
                        assert handle.done(), "handle left unresolved"
                        answer = handle.result(timeout=0)
                        verdict = answer.verdict.value
                        if handle.dead_lettered:
                            outcomes["dead_lettered"] += 1
                        elif verdict == "unknown":
                            outcomes["unknown"] += 1
                        else:
                            outcomes["decided"] += 1
                            if verdict != truth[id(args[0])]:
                                contradictions += 1
                dlq_records = [r.as_dict() for r in service.dlq.records()]
                stats = service.stats()
            finally:
                service.close()
    elapsed = time.perf_counter() - t0

    resolved = sum(outcomes.values())
    assert resolved == n_jobs, f"{n_jobs - resolved} of {n_jobs} jobs unresolved"
    assert contradictions == 0, f"{contradictions} decided answers wrong"
    assert elapsed < drain_bound_s, f"soak took {elapsed:.1f}s >= {drain_bound_s}s"

    counters = metrics.snapshot()["counters"]
    return {
        "traffic": dict(traffic_kwargs),
        "chaos": chaos.as_dict(),
        "workers": workers,
        "jobs": n_jobs,
        "outcomes": outcomes,
        "contradictions": contradictions,
        "elapsed_s": round(elapsed, 3),
        "drain_bound_s": drain_bound_s,
        "service": stats,
        "dlq_records": len(dlq_records),
        "faults_observed": {
            "worker_lost": stats["resilience"]["worker_lost"],
            "pool_respawns": stats["resilience"]["pool_respawns"],
            "retried": stats["resilience"]["retried"],
            "store_retries": metrics.counter_total(
                counters, "serve.store.retries"
            ),
            "store_io_errors": metrics.counter_total(
                counters, "serve.store.io_errors"
            ),
        },
    }


def run_escalation_demo() -> dict:
    """Budget escalation turning a tripped family from UNKNOWN to YES.

    The 12-bit succinct counter needs ~2^12 reachability steps; a
    256-step budget trips.  Without a retry policy the service returns
    the trip UNKNOWN; with ``RetryPolicy(max_attempts=3,
    budget_multiplier=4)`` the third attempt runs under a 4096-step
    budget and decides YES.
    """
    sws = pl_counter_sws(12)
    starved = Budget(step_budget=256)

    with SolverService() as service:
        bare = service.submit("nonempty_pl", sws, budget=starved).result()
    assert bare.is_unknown and bare.trip is not None

    policy = RetryPolicy(
        max_attempts=3, budget_multiplier=4.0, backoff_base_s=0.0,
        backoff_cap_s=0.0,
    )
    with SolverService(retry_policy=policy) as service:
        handle = service.submit("nonempty_pl", sws, budget=starved)
        escalated = handle.result()
        attempts = handle.attempts
    assert escalated.is_yes, f"escalation still {escalated.verdict.value}"
    assert attempts > 1, "escalation demo never retried"

    return {
        "family": "pl_counter_sws(12) / nonempty_pl",
        "initial_budget": starved.as_dict(),
        "policy": {"max_attempts": 3, "budget_multiplier": 4.0},
        "without_retry": bare.verdict.value,
        "with_retry": escalated.verdict.value,
        "attempts": attempts,
    }


def main() -> None:
    escalation = run_escalation_demo()
    soak = run_chaos_soak()
    merge_section(
        BENCH_SERVE_CHAOS,
        "chaos_soak",
        soak,
        regenerate="python benchmarks/bench_serve_chaos.py",
    )
    merge_section(
        BENCH_SERVE_CHAOS,
        "budget_escalation",
        escalation,
        regenerate="python benchmarks/bench_serve_chaos.py",
    )
    faults = soak["faults_observed"]
    print(
        f"{soak['jobs']} jobs in {soak['elapsed_s']}s | "
        f"outcomes {soak['outcomes']} | "
        f"kills {faults['worker_lost']} (respawns {faults['pool_respawns']}) | "
        f"retries {faults['retried']} | "
        f"store retries {faults['store_retries']} | "
        f"escalation {escalation['without_retry']} -> "
        f"{escalation['with_retry']} in {escalation['attempts']} attempts"
    )
    assert faults["worker_lost"] > 0, "chaos never killed a worker"
    assert faults["retried"] > 0, "chaos never exercised the retry path"


if __name__ == "__main__":
    main()
