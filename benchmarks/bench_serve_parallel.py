"""Experiment SRV.1 — the serving layer on a service-traffic sweep.

The decision procedures themselves are bounded by the paper's complexity
results; what a *service* adds is throughput on realistic question
streams.  :func:`repro.workloads.scaling.serve_traffic` draws a
Zipf-shaped batch of non-emptiness jobs over the succinct-counter
family — heavy repetition plus a long tail, like deploy pipelines
re-checking the same services.  This experiment measures three ways of
answering the same batch:

* **sequential** — call each procedure directly, once per job (the
  pre-``repro.serve`` baseline: no dedup, no cache, no workers);
* **service, 4 workers** — ``SolverService(workers=4)``: in-flight
  dedup collapses repeats to one computation per distinct fingerprint
  and distinct jobs overlap across worker processes;
* **service, resubmitted** — the identical batch again: every job is a
  content-addressed cache hit, no procedure runs at all.

``main()`` records the numbers into ``BENCH_serve_parallel.json`` (via
``merge_section``, so other emitters' sections survive).
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import nonempty_pl
from repro.serve import JobSpec, SolverService
from repro.workloads.scaling import serve_traffic

from _bench_io import BENCH_SCHEMA_VERSION, merge_section  # noqa: F401

BENCH_SERVE_PARALLEL = "BENCH_serve_parallel.json"

#: The sweep: 64 jobs over 6 distinct counter services (bits 8..13).
TRAFFIC_KWARGS = dict(n_jobs=64, distinct=6, seed=1, min_bits=8)

_PROCEDURES = {"nonempty_pl": nonempty_pl}


def _specs(traffic):
    return [
        JobSpec(name, args, label=f"job-{i}")
        for i, (name, args) in enumerate(traffic)
    ]


def run_sequential(traffic) -> float:
    t0 = time.perf_counter()
    for name, args in traffic:
        answer = _PROCEDURES[name](*args)
        assert answer.is_yes
    return time.perf_counter() - t0


def run_service(service: SolverService, traffic) -> float:
    t0 = time.perf_counter()
    results = service.run_batch(_specs(traffic))
    elapsed = time.perf_counter() - t0
    assert all(a.is_yes for a in results)
    return elapsed


# -- interactive pytest-benchmark runs ----------------------------------------


@pytest.fixture
def traffic():
    return serve_traffic(**TRAFFIC_KWARGS)


def test_srv_1_sequential_baseline(benchmark, traffic):
    benchmark.pedantic(
        run_sequential, args=(traffic,), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(TRAFFIC_KWARGS)


def test_srv_1_service_four_workers(benchmark, traffic):
    def once():
        with SolverService(workers=4) as service:
            return run_service(service, traffic)

    benchmark.pedantic(once, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(TRAFFIC_KWARGS)


def test_srv_1_service_resubmission(benchmark, traffic):
    with SolverService() as service:
        run_service(service, traffic)  # warm the cache

        def warm():
            return run_service(service, traffic)

        benchmark.pedantic(warm, rounds=3, iterations=1, warmup_rounds=0)
        assert service.cache.stats.hits >= len(traffic)


# -- BENCH_serve_parallel.json emission ---------------------------------------


def main() -> None:
    traffic = serve_traffic(**TRAFFIC_KWARGS)
    distinct = len({id(args[0]) for _, args in traffic})

    sequential_s = run_sequential(traffic)

    with SolverService(workers=4) as service:
        service_s = run_service(service, traffic)
        executed = service.jobs_executed
        deduped = service.jobs_deduped
        resubmit_s = run_service(service, traffic)
        cache_stats = service.cache.stats.as_dict()

    speedup = sequential_s / service_s
    resubmit_speedup = sequential_s / resubmit_s
    payload = {
        "traffic": {**TRAFFIC_KWARGS, "distinct_sampled": distinct},
        "sequential_s": round(sequential_s, 6),
        "service_4workers_s": round(service_s, 6),
        "service_resubmit_s": round(resubmit_s, 6),
        "speedup_vs_sequential": round(speedup, 2),
        "resubmit_speedup_vs_sequential": round(resubmit_speedup, 2),
        "jobs": len(traffic),
        "jobs_executed": executed,
        "jobs_deduped": deduped,
        "cache": cache_stats,
        "notes": (
            "sequential = direct procedure calls, one per job; service = "
            "SolverService(workers=4) with fingerprint dedup + answer cache; "
            "resubmit = identical batch against the warm cache (zero "
            "procedure executions)"
        ),
    }
    merge_section(
        BENCH_SERVE_PARALLEL,
        "serve_traffic_sweep",
        payload,
        regenerate="python benchmarks/bench_serve_parallel.py",
    )
    print(
        f"sequential {sequential_s:.3f}s | service(4w) {service_s:.3f}s "
        f"({speedup:.1f}x) | resubmit {resubmit_s:.4f}s "
        f"({resubmit_speedup:.0f}x) | executed {executed}/{len(traffic)}"
    )
    assert speedup >= 2.0, f"expected >=2x speedup, got {speedup:.2f}x"
    assert resubmit_speedup >= 10.0


if __name__ == "__main__":
    main()
