"""Experiment T2.9 — Table 2, CP(SWS(UC2RPQ), MDT(UC2RPQ), SWS_nr(CQ^r)).

Paper bound (Corollary 5.2): decidable in 2EXPTIME, via equivalent query
rewriting of UC2RPQ queries using CQ views.  The benchmark sweeps the
goal's path-language complexity (star depth, alternatives) and the view
vocabulary, measuring the rewriting pipeline and verifying the synthesized
mediator's answers against the goal on random graph databases.
"""

import random

import pytest

from repro.automata.regex import parse_regex
from repro.automata.rpq import GraphDatabase, RPQ
from repro.logic.rewriting import View, certain_answers
from repro.mediator.rpq_composition import (
    chain_view,
    compose_uc2rpq,
    evaluate_over_views,
)


def _random_graph(seed: int, labels=("a", "b"), nodes=7, edges=14):
    rng = random.Random(seed)
    pool = list(range(nodes))
    out = {label: set() for label in labels}
    for _ in range(edges):
        out[rng.choice(labels)].add((rng.choice(pool), rng.choice(pool)))
    return GraphDatabase(out)


GOALS = {
    "linear": ("a b", {"P": ["a", "b"]}),
    "star": ("(a b)* a", {"P": ["a", "b"], "Q": ["a"]}),
    "union": ("a a | b b | a b", {"AA": ["a", "a"], "BB": ["b", "b"], "AB": ["a", "b"]}),
    "two_way": ("a b^ (a b^)*", {"V": ["a", "b^"]}),
}


@pytest.mark.parametrize("shape", sorted(GOALS))
def test_t2_9_rewriting_pipeline(benchmark, shape, one_shot):
    """Full synthesis per goal shape, mediator verified on random graphs."""
    regex, views = GOALS[shape]
    goal = RPQ(parse_regex(regex), shape)

    result = one_shot(lambda: compose_uc2rpq(goal, views))
    assert result.exists
    benchmark.extra_info["shape"] = shape
    for seed in range(3):
        graph = _random_graph(seed)
        assert goal.evaluate(graph) == evaluate_over_views(
            result.mediator_rpq, graph, views
        )


def test_t2_9_negative_case(benchmark):
    """Odd-length paths cannot be stitched from even-length views."""
    goal = RPQ(parse_regex("a+"), "aplus")

    result = benchmark(lambda: compose_uc2rpq(goal, {"AA": ["a", "a"]}))
    assert not result.exists


@pytest.mark.parametrize("chain_length", [2, 3, 4])
def test_t2_9_certain_answers_baseline(benchmark, chain_length, one_shot):
    """The maximally-contained half: Duschka–Genesereth inverse rules."""
    from repro.data.relation import Relation
    from repro.data.schema import RelationSchema
    from repro.logic.cq import Atom, ConjunctiveQuery
    from repro.logic.terms import var
    from repro.logic.ucq import UnionQuery

    graph = _random_graph(11)
    word = (["a", "b"] * chain_length)[:chain_length]
    view_cq = chain_view("V", word)
    view = View(view_cq)
    extension = Relation(
        RelationSchema("V", ("s", "t")),
        view_cq.evaluate(graph.as_relations()),
    )
    # The base-relation query spells two view words back to back; its
    # certain answers over the view extension are the V-joins.
    query = UnionQuery.of(chain_view("Q", word + word))

    answers = one_shot(
        lambda: certain_answers(query, [view], {"V": extension})
    )
    benchmark.extra_info["chain_length"] = chain_length
    benchmark.extra_info["answers"] = len(answers)
    # Soundness: every certain answer really is a two-step V-join.
    joins = {
        (s1, t2)
        for (s1, t1) in extension.rows
        for (s2, t2) in extension.rows
        if t1 == s2
    }
    assert answers <= joins
