"""Experiments T2.7–T2.8 — Table 2, the decidable general PL rows.

Paper results (Theorem 5.1(4,5)): composition is decidable when the goal
is in SWS_nr(PL,PL) with arbitrary MDT(PL) mediators over SWS(PL,PL)
components, and when the goal is in SWS(PL,PL) with nonrecursive mediators
over nonrecursive components — in both cases because only k-prefix
recognizable languages are in play, which bounds the mediators worth
trying.

The benchmark measures the bounded-shape enumeration procedure
(:func:`compose_pl_prefix`) as the goal's prefix horizon k grows, and
checks that a recursive goal whose language is *not* k-prefix recognizable
is correctly rejected (the paper's point that only k-prefix goals make
sense in this setting).
"""

import pytest

from repro.mediator.synthesis import compose_pl_prefix, kprefix_bound
from repro.workloads.pl_services import HASH, union_word_service, word_service
from repro.workloads.scaling import pl_counter_sws

ALPHA = ["a", "b"]


def _components():
    return {
        "X": word_service(["a", HASH], ALPHA, "X"),
        "Y": word_service(["b", HASH], ALPHA, "Y"),
    }


@pytest.mark.parametrize("sessions", [1, 2, 3])
def test_t2_7_prefix_horizon_sweep(benchmark, sessions, one_shot):
    """Enumeration cost vs the goal's session count (prefix horizon)."""
    components = _components()
    chain = []
    for i in range(sessions):
        chain.extend([ALPHA[i % 2], HASH])
    goal = union_word_service([chain], ALPHA, "chain")

    result = one_shot(
        lambda: compose_pl_prefix(goal, components, max_chain_length=sessions)
    )
    assert result.exists
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["k"] = kprefix_bound(goal, components)


@pytest.mark.parametrize("branches", [1, 2])
def test_t2_7_branching_goals(benchmark, branches, one_shot):
    """Union-shaped goals need union-shaped mediators."""
    components = _components()
    words = [[ALPHA[i % 2], HASH] for i in range(branches)]
    goal = union_word_service(words, ALPHA, "menu")

    result = one_shot(
        lambda: compose_pl_prefix(
            goal, components, max_chain_length=1, max_branches=branches
        )
    )
    assert result.exists
    benchmark.extra_info["branches"] = branches


def test_t2_8_non_prefix_goal_rejected(benchmark):
    """A goal that counts (not k-prefix recognizable) has no mediator.

    The paper's discussion after Theorem 5.1: a recursive goal needing
    unboundedly many computation steps cannot equal any nonrecursive
    mediator — here the period-2 counter against single-session
    components.
    """
    result = benchmark.pedantic(
        lambda: compose_pl_prefix(
            pl_counter_sws(1), _components(), max_chain_length=2
        ),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert not result.exists
