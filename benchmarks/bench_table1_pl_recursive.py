"""Experiment T1.4 — Table 1, row SWS(PL, PL).

Paper bounds: non-emptiness, validation and equivalence all
PSPACE-complete, "along the same lines as AFA".  The succinct-counter
family makes the exponential behaviour concrete: the service counter(b)
accepts exactly input lengths ≡ 0 (mod 2^b), so the vector-reachability
procedure must traverse 2^b valuation vectors before its first witness —
the measured time should roughly double per extra bit.
"""

import pytest

from repro.analysis import equivalent_pl, nonempty_pl, validate_pl
from repro.reductions.afa_to_sws import afa_to_sws
from repro.workloads.scaling import afa_counter, pl_counter_sws


@pytest.mark.parametrize("bits", [2, 3, 4, 5])
def test_t1_4_nonemptiness_counter(benchmark, bits, one_shot):
    """PSPACE shape: witness length (and vector count) is 2^bits."""
    service = pl_counter_sws(bits)

    answer = one_shot(lambda: nonempty_pl(service))
    assert answer.is_yes
    assert len(answer.witness) == 2**bits
    benchmark.extra_info["bits"] = bits
    benchmark.extra_info["witness_length"] = len(answer.witness)


@pytest.mark.parametrize("bits", [2, 3, 4])
def test_t1_4_nonemptiness_via_afa_reduction(benchmark, bits, one_shot):
    """The AFA lower-bound family pushed through the reduction."""
    service = afa_to_sws(afa_counter(bits))

    answer = one_shot(lambda: nonempty_pl(service))
    assert answer.is_yes
    benchmark.extra_info["bits"] = bits


@pytest.mark.parametrize("bits", [2, 3, 4])
def test_t1_4_validation_counter(benchmark, bits, one_shot):
    """Validation coincides with non-emptiness for O = true (Section 4)."""
    service = pl_counter_sws(bits)

    answer = one_shot(lambda: validate_pl(service, True))
    assert answer.is_yes
    benchmark.extra_info["bits"] = bits


@pytest.mark.parametrize("bits", [2, 3])
def test_t1_4_equivalence_counters(benchmark, bits, one_shot):
    """Equivalence via the product vector space: counter(b) vs counter(b+1)."""
    left = pl_counter_sws(bits)
    right = pl_counter_sws(bits + 1)

    answer = one_shot(lambda: equivalent_pl(left, right))
    assert answer.is_no
    assert len(answer.witness) == 2**bits  # shortest distinguishing word
    benchmark.extra_info["bits"] = bits
    benchmark.extra_info["witness_length"] = len(answer.witness)
