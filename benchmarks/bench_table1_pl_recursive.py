"""Experiment T1.4 — Table 1, row SWS(PL, PL).

Paper bounds: non-emptiness, validation and equivalence all
PSPACE-complete, "along the same lines as AFA".  The succinct-counter
family makes the exponential behaviour concrete: the service counter(b)
accepts exactly input lengths ≡ 0 (mod 2^b), so the vector-reachability
procedure must traverse 2^b valuation vectors before its first witness —
the measured time should roughly double per extra bit.
"""

import pytest

from repro.analysis import equivalent_pl, nonempty_pl, validate_pl
from repro.reductions.afa_to_sws import afa_to_sws
from repro.workloads.scaling import afa_counter, pl_counter_sws


@pytest.mark.parametrize("bits", [2, 3, 4, 5])
def test_t1_4_nonemptiness_counter(benchmark, bits, one_shot):
    """PSPACE shape: witness length (and vector count) is 2^bits."""
    service = pl_counter_sws(bits)

    answer = one_shot(lambda: nonempty_pl(service))
    assert answer.is_yes
    assert len(answer.witness) == 2**bits
    benchmark.extra_info["bits"] = bits
    benchmark.extra_info["witness_length"] = len(answer.witness)


@pytest.mark.parametrize("bits", [2, 3, 4])
def test_t1_4_nonemptiness_via_afa_reduction(benchmark, bits, one_shot):
    """The AFA lower-bound family pushed through the reduction."""
    service = afa_to_sws(afa_counter(bits))

    answer = one_shot(lambda: nonempty_pl(service))
    assert answer.is_yes
    benchmark.extra_info["bits"] = bits


@pytest.mark.parametrize("bits", [2, 3, 4])
def test_t1_4_validation_counter(benchmark, bits, one_shot):
    """Validation coincides with non-emptiness for O = true (Section 4)."""
    service = pl_counter_sws(bits)

    answer = one_shot(lambda: validate_pl(service, True))
    assert answer.is_yes
    benchmark.extra_info["bits"] = bits


@pytest.mark.parametrize("bits", [2, 3])
def test_t1_4_equivalence_counters(benchmark, bits, one_shot):
    """Equivalence via the product vector space: counter(b) vs counter(b+1)."""
    left = pl_counter_sws(bits)
    right = pl_counter_sws(bits + 1)

    answer = one_shot(lambda: equivalent_pl(left, right))
    assert answer.is_no
    assert len(answer.witness) == 2**bits  # shortest distinguishing word
    benchmark.extra_info["bits"] = bits
    benchmark.extra_info["witness_length"] = len(answer.witness)


# -- BENCH_table1_pl.json emission ------------------------------------------


def _seed_reference_witness(afa):
    """The seed engine's accepting-witness search, verbatim.

    Interpreted AST ``pre_step`` per state, ``repr``-ordered symbols, and
    per-vector witness tuples rebuilt by prepending (O(length²) total) —
    reproduced here so BENCH_table1_pl.json's *before* column measures the
    seed algorithm from the current tree.
    """
    from collections import deque

    start = afa.empty_word_vector()
    if afa.initial_condition.evaluate(start):
        return ()
    witnesses = {start: ()}
    queue = deque([start])
    order = sorted(afa.alphabet, key=repr)
    while queue:
        vector = queue.popleft()
        for symbol in order:
            nxt = afa._pre_step_ast(vector, symbol)
            if nxt in witnesses:
                continue
            word = (symbol,) + witnesses[vector]
            if afa.initial_condition.evaluate(nxt):
                return word
            witnesses[nxt] = word
            queue.append(nxt)
    return None


def collect_before_after() -> dict:
    """Before/after rows: seed algorithm vs compiled bitmask path."""
    from _bench_io import timed
    from repro.analysis.stats import stats_delta
    from repro.automata import afa as afa_mod
    from repro.core.pl_semantics import to_afa

    rows = []
    for bits in (4, 6, 8, 10, 12):
        service = pl_counter_sws(bits)
        # Snapshot-diff rather than STATS.reset(): scoped to this sweep,
        # so nothing enclosing (a trace span, another section) is clobbered.
        with stats_delta() as work:
            t_compiled, answer = timed(lambda: nonempty_pl(service))
        with afa_mod.ast_fallback():
            t_ast, answer_ast = timed(lambda: nonempty_pl(service))
        t_seed, seed_witness = timed(
            lambda: _seed_reference_witness(to_afa(service))
        )
        assert answer.is_yes and answer_ast.is_yes
        assert answer.witness == answer_ast.witness
        assert len(seed_witness) == len(answer.witness)
        rows.append(
            {
                "bits": bits,
                "witness_length": len(answer.witness),
                "seconds_seed": round(t_seed, 6),
                "seconds_ast_interpreter": round(t_ast, 6),
                "seconds_after_compiled": round(t_compiled, 6),
                "speedup_vs_seed": round(t_seed / t_compiled, 2),
                "speedup_vs_ast": round(t_ast / t_compiled, 2),
                "vectors_explored": work["vectors_explored"],
                "pre_steps": work["pre_steps"],
                "alphabet_symbols": work["alphabet_symbols"],
                "symbol_classes": work["symbol_classes"],
            }
        )
    eq_rows = []
    for bits in (4, 6, 8):
        left, right = pl_counter_sws(bits), pl_counter_sws(bits + 1)
        t_compiled, answer = timed(lambda: equivalent_pl(left, right))
        with afa_mod.ast_fallback():
            t_ast, answer_ast = timed(lambda: equivalent_pl(left, right))
        assert answer.is_no and answer_ast.is_no
        assert answer.witness == answer_ast.witness
        eq_rows.append(
            {
                "bits": bits,
                "witness_length": len(answer.witness),
                "seconds_before_ast": round(t_ast, 6),
                "seconds_after_compiled": round(t_compiled, 6),
                "speedup": round(t_ast / t_compiled, 2),
            }
        )
    return {
        "experiment": "T1.4 SWS(PL, PL) — counter family, PSPACE row",
        "before": "interpreted AST evaluation (seed engine)",
        "after": "compiled bitmask evaluation with symbol-class dedup",
        "nonemptiness": rows,
        "equivalence": eq_rows,
        "headline_speedup_vs_seed": max(r["speedup_vs_seed"] for r in rows),
        "note": (
            "seconds_seed reproduces the seed algorithm exactly (interpreted "
            "AST pre_step, repr symbol order, quadratic witness prepending); "
            "seconds_ast_interpreter is the current interpreter fallback, "
            "which already has linear witness bookkeeping and canonical "
            "symbol order"
        ),
    }


def emit_trace_artifact(path: str) -> None:
    """Re-run a representative sweep with tracing on, into ``path``.

    Separate from the timed sweep so trace emission never pollutes the
    recorded before/after numbers.
    """
    from repro import obs

    obs.configure(path=path, mode="w")
    try:
        for bits in (4, 6, 8):
            assert nonempty_pl(pl_counter_sws(bits)).provenance is not None
        assert equivalent_pl(pl_counter_sws(4), pl_counter_sws(5)).is_no
    finally:
        obs.configure(enabled=False)


def main() -> None:
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from _bench_io import BENCH_TABLE1_PL, merge_section, trace_artifact_path

    payload = collect_before_after()
    merge_section(
        BENCH_TABLE1_PL,
        "recursive_pl",
        payload,
        regenerate="PYTHONPATH=src python benchmarks/bench_table1_pl_recursive.py",
    )
    worst = min(
        r["speedup_vs_seed"] for r in payload["nonemptiness"] if r["bits"] >= 8
    )
    trace_path = trace_artifact_path(__file__)
    emit_trace_artifact(trace_path)
    print(f"wrote {BENCH_TABLE1_PL}")
    print(f"wrote {trace_path} (inspect: python -m repro.obs report)")
    print(
        f"headline speedup vs seed {payload['headline_speedup_vs_seed']}x "
        f"(worst large-input {worst}x)"
    )


if __name__ == "__main__":
    main()
