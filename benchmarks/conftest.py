"""Benchmark harness configuration.

Every benchmark regenerates one experiment of the paper (see DESIGN.md's
per-experiment index and EXPERIMENTS.md for the recorded outcomes).  The
benchmarks measure *scaling shape*, not absolute time: each parameterized
family should grow the way its Table 1 / Table 2 complexity bound predicts.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Attach the experiment ids to the JSON export (if used)."""
    for bench in output_json.get("benchmarks", []):
        bench.setdefault("extra_info", {}).setdefault("paper", "PODS 2008")


@pytest.fixture
def one_shot(benchmark):
    """Run the measured callable a small fixed number of times.

    The decision procedures under test take milliseconds to seconds;
    auto-calibration would re-run the expensive ones dozens of times for
    no extra signal.
    """

    def run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=3, iterations=1, warmup_rounds=0
        )

    return run
