"""Experiments T2.10–T2.12 — Table 2, the MDT(∨) composition rows.

Paper bounds: CP(SWS(PL,PL), MDT(∨), SWS(PL,PL)) in 3EXPSPACE;
CP(NFA, MDT(∨), ·) 2EXPSPACE-complete; CP(DFA, MDT(∨), ·) in EXPSPACE.
All run through the rewriting of regular languages with run-to-completion
(prefix-free) component languages.

The benchmark sweeps (a) the number of available components and (b) the
number of sessions the goal chains, measuring the full synthesis
(translate to automata, rewrite, check exactness, materialize the
mediator).  DFA-shaped goals (a single session chain) are compared with
NFA-shaped goals (a menu of alternatives) at equal size — the paper's
special-case gap.
"""

import pytest

from repro.mediator.synthesis import compose_pl_regular
from repro.workloads.pl_services import HASH, union_word_service, word_service

LETTERS = ["a", "b", "c", "d"]


def _components(k: int):
    return {
        f"S{i}": word_service([LETTERS[i], HASH], LETTERS[:k], f"S{i}")
        for i in range(k)
    }


@pytest.mark.parametrize("k", [2, 3])
def test_t2_10_components_sweep(benchmark, k, one_shot):
    """Synthesis cost vs number of available components."""
    components = _components(k)
    goal_words = [
        [LETTERS[i], HASH, LETTERS[(i + 1) % k], HASH] for i in range(k)
    ]
    goal = union_word_service(goal_words, LETTERS[:k], "menu")

    result = one_shot(lambda: compose_pl_regular(goal, components))
    assert result.exists
    benchmark.extra_info["components"] = k
    benchmark.extra_info["mediator_states"] = len(result.mediator.states)


@pytest.mark.parametrize("sessions", [1, 2, 3])
def test_t2_12_dfa_goal_chain(benchmark, sessions, one_shot):
    """DFA-shaped goal: a single chain of sessions (the EXPSPACE case)."""
    components = _components(2)
    chain: list[str] = []
    for i in range(sessions):
        chain.extend([LETTERS[i % 2], HASH])
    goal = union_word_service([chain], LETTERS[:2], "chain")

    result = one_shot(lambda: compose_pl_regular(goal, components))
    assert result.exists
    benchmark.extra_info["sessions"] = sessions


@pytest.mark.parametrize("branches", [2, 3])
def test_t2_11_nfa_goal_menu(benchmark, branches, one_shot):
    """NFA-shaped goal: a menu of session alternatives (2EXPSPACE case)."""
    components = _components(2)
    words = []
    for i in range(branches):
        words.append([LETTERS[i % 2], HASH, LETTERS[(i + 1) % 2], HASH])
    goal = union_word_service(words, LETTERS[:2], "nfa_menu")

    result = one_shot(lambda: compose_pl_regular(goal, components))
    benchmark.extra_info["branches"] = branches
    benchmark.extra_info["exists"] = result.exists


def test_t2_10_negative_case(benchmark):
    """A goal outside the components' span is rejected with a witness."""
    components = _components(2)
    goal = union_word_service([["a", "b", HASH]], LETTERS[:2], "fused")

    result = benchmark(lambda: compose_pl_regular(goal, components))
    assert not result.exists
    assert result.witness is not None


def test_t2_10_recursive_component(benchmark, one_shot):
    """Theorem 5.3(1) proper: a *recursive* component (a+ sessions)."""
    from repro.core import pl_sws
    from repro.workloads.pl_services import exactly, star_word_service

    alpha = ["a", "b"]
    ga, gb, ge = (str(exactly(s, alpha)) for s in ("a", "b", HASH))
    goal = (
        pl_sws("a_plus_b")
        .transition("s0", ("loop", ga), ("d1", ga))
        .synthesize("s0", "A1 | A2")
        .transition("loop", ("loop", f"Msg & ({ga})"), ("d1", f"Msg & ({ga})"))
        .synthesize("loop", "A1 | A2")
        .transition("d1", ("d2", f"Msg & ({ge})"))
        .synthesize("d1", "A1")
        .transition("d2", ("end", f"Msg & ({gb})"))
        .synthesize("d2", "A1")
        .final("end")
        .synthesize("end", f"Msg & ({ge})")
        .build()
    )
    components = {
        "Astar": star_word_service("a", alpha),
        "B": word_service(["b", HASH], alpha, "B"),
    }
    result = one_shot(lambda: compose_pl_regular(goal, components))
    assert result.exists
    benchmark.extra_info["component_recursive"] = True
