"""Experiment F1 — Figure 1: FSA vs SWS specification of the travel service.

The paper's motivating comparison: the FSA of Figure 1(a) checks airfare,
hotel and the local arrangement *sequentially* (three rounds of
interaction), while the SWS of Figure 1(b) fans out in parallel (one round)
and synthesizes deterministically.  The benchmark measures both
specifications deciding the same booking and records the round counts; the
accepted outcomes must coincide.
"""

import pytest

from repro.core.run import run_relational
from repro.models.roman import RomanService, encode_roman_word, roman_to_sws
from repro.core.run import run_pl
from repro.workloads import travel


@pytest.mark.parametrize("scenario", ["tickets", "cars", "nothing"])
def test_f1_sws_parallel_rounds(benchmark, scenario):
    """The SWS decides any scenario in one round (tree height 1)."""
    service = travel.travel_service()
    database = travel.sample_database(
        with_tickets=scenario == "tickets",
        with_cars=scenario in ("tickets", "cars"),
    )
    request = travel.booking_request()

    result = benchmark(lambda: run_relational(service, database, request))
    benchmark.extra_info["rounds"] = result.tree.height()
    benchmark.extra_info["packages"] = len(result.output)
    assert result.tree.height() == 1
    # Deterministic synthesis: tickets preferred when available.
    if scenario == "tickets":
        assert all(row[2] != travel.BLANK for row in result.output)
    if scenario == "cars":
        assert result.output and all(
            row[3] != travel.BLANK for row in result.output
        )
    if scenario == "nothing":
        assert not result.output


def test_f1_fsa_sequential_rounds(benchmark):
    """The FSA needs one interaction per aspect: three sequential rounds."""
    fsa = travel.travel_fsa()
    word = ["a", "h", "t"]

    accepted = benchmark(lambda: fsa.accepts(word))
    benchmark.extra_info["rounds"] = len(word)
    assert accepted
    assert len(word) == 3  # the paper's sequential-dependency point


def test_f1_translated_fsa_as_sws(benchmark):
    """The Roman translation preserves the FSA's decision, now in SWS form."""
    service = RomanService(travel.travel_fsa(), "travel")
    sws = roman_to_sws(service)
    encoded = encode_roman_word(["a", "h", "c"])

    value = benchmark(lambda: run_pl(sws, encoded).output)
    assert value
    benchmark.extra_info["sws_states"] = len(sws.states)
