"""Experiments T2.1–T2.5 — Table 2, the undecidable composition rows.

Paper results (Theorem 5.1(1,2)): composition synthesis is undecidable for
FO goals/components/mediators (even all nonrecursive — from FO
satisfiability) and for CQ/UCQ classes as soon as recursion is present on
either the mediator or the component side (from SWS(CQ, UCQ) equivalence).

Nothing terminating decides these rows, so the benchmark measures the
*sound bounded searches* that stand in for them:

* the bounded FO equivalence search that underlies the FO undecidability
  (composition reduces to equivalence of candidate mediators with the
  goal) — cost explodes with the instance bounds and honest UNKNOWNs
  appear;
* the bounded expansion-equivalence of recursive CQ services — the
  undecidable equivalence problem the CQ rows reduce from — at growing
  session horizons.
"""

import pytest

from repro.analysis import equivalent_cq, equivalent_fo_bounded
from repro.workloads.scaling import cq_chain_sws
from repro.workloads.travel import recursive_airfare_service, travel_service


@pytest.mark.parametrize("max_rows", [0, 1])
def test_t2_1_bounded_fo_equivalence(benchmark, max_rows, one_shot):
    """The FO substrate of rows T2.1–T2.2: bounded equivalence search."""
    goal = travel_service()

    answer = one_shot(
        lambda: equivalent_fo_bounded(
            goal,
            goal,
            max_domain=1,
            max_rows=max_rows,
            max_session_length=1,
            budget=3000,
        )
    )
    # Reflexive comparison: never NO; bounded search reports UNKNOWN.
    assert not answer.is_no
    benchmark.extra_info["max_rows"] = max_rows


def test_t2_1_fo_difference_detected(benchmark):
    """When a difference exists within bounds, the search finds it (exact NO)."""
    goal = travel_service()
    other = recursive_airfare_service()

    answer = benchmark.pedantic(
        lambda: equivalent_fo_bounded(
            goal,
            other,
            max_domain=1,
            max_rows=1,
            max_session_length=1,
            budget=200000,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    # τ1 and τ2 differ; if the witness lies within bounds the verdict is
    # NO, otherwise UNKNOWN — never a wrong YES.
    assert not answer.is_yes
    benchmark.extra_info["verdict"] = answer.verdict.value


@pytest.mark.parametrize("horizon", [2, 3, 4])
def test_t2_3_bounded_cq_equivalence(benchmark, horizon, one_shot):
    """The CQ substrate of rows T2.3–T2.5: expansion equivalence under a
    session-length budget — the cost grows with the horizon."""
    chain = cq_chain_sws(0)

    answer = one_shot(
        lambda: equivalent_cq(chain, chain, max_session_length=horizon)
    )
    assert not answer.is_no
    benchmark.extra_info["horizon"] = horizon
