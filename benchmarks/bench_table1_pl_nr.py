"""Experiment T1.5 — Table 1, row SWS_nr(PL, PL).

Paper bounds: non-emptiness and validation NP-complete, equivalence
coNP-complete.  The upper-bound procedure is a SAT encoding (DPLL); the
lower bound is the SAT reduction.  The benchmark sweeps random 3-CNF
instances encoded as services and shows (a) the SWS procedure tracks the
DPLL baseline on the same instances, and (b) the coNP equivalence check
stays feasible on nonrecursive services.
"""

import pytest

from repro.analysis import (
    equivalent_pl,
    nonempty_pl_nr_sat,
    validate_pl,
    validate_pl_nr_sat,
)
from repro.logic.sat import solve_cnf
from repro.reductions.sat_to_sws import clauses_from_tuples, cnf_to_sws
from repro.workloads.random_sws import random_pl_sws
from repro.workloads.scaling import random_3cnf


@pytest.mark.parametrize("n_variables,n_clauses", [(4, 8), (6, 14), (8, 20)])
def test_t1_5_nonemptiness_sat_procedure(benchmark, n_variables, n_clauses):
    """NP procedure: bounded-depth unfolding + DPLL."""
    instances = [
        cnf_to_sws(clauses_from_tuples(random_3cnf(seed, n_variables, n_clauses)))
        for seed in range(5)
    ]

    def analyze():
        return [nonempty_pl_nr_sat(sws).is_yes for sws in instances]

    outcomes = benchmark(analyze)
    benchmark.extra_info["satisfiable"] = sum(outcomes)
    benchmark.extra_info["n_variables"] = n_variables


@pytest.mark.parametrize("n_variables,n_clauses", [(4, 8), (6, 14), (8, 20)])
def test_t1_5_dpll_baseline(benchmark, n_variables, n_clauses):
    """Baseline: DPLL on the raw CNF (the reduction's source problem)."""
    instances = [
        clauses_from_tuples(random_3cnf(seed, n_variables, n_clauses))
        for seed in range(5)
    ]

    def solve():
        return [solve_cnf(clauses) is not None for clauses in instances]

    outcomes = benchmark(solve)
    benchmark.extra_info["satisfiable"] = sum(outcomes)


def test_t1_5_procedures_agree(benchmark):
    """Cross-validation: the NP procedure equals the DPLL baseline."""

    def check():
        for seed in range(10):
            clauses = clauses_from_tuples(random_3cnf(seed, 5, 10))
            via_sws = nonempty_pl_nr_sat(cnf_to_sws(clauses)).is_yes
            via_dpll = solve_cnf(clauses) is not None
            assert via_sws == via_dpll
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("n_states", [3, 4, 5])
def test_t1_5_validation(benchmark, n_states, one_shot):
    """Validation (NP): the SAT procedure, both output values."""
    services = [
        random_pl_sws(seed, n_states=n_states, n_variables=2, recursive=False)
        for seed in range(4)
    ]

    def analyze():
        return [
            (
                validate_pl_nr_sat(sws, True).verdict,
                validate_pl_nr_sat(sws, False).verdict,
            )
            for sws in services
        ]

    one_shot(analyze)
    benchmark.extra_info["n_states"] = n_states


def test_t1_5_validation_routes_agree(benchmark):
    """Cross-validation: SAT route equals the vector-search route."""

    def check():
        for seed in range(8):
            sws = random_pl_sws(seed, n_states=4, n_variables=2, recursive=False)
            for output in (True, False):
                assert (
                    validate_pl_nr_sat(sws, output).is_yes
                    == validate_pl(sws, output).is_yes
                )
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("n_states", [3, 4, 5])
def test_t1_5_equivalence(benchmark, n_states, one_shot):
    """Equivalence (coNP): pairwise over random nonrecursive services."""
    services = [
        random_pl_sws(seed, n_states=n_states, n_variables=2, recursive=False)
        for seed in range(4)
    ]

    def analyze():
        return [
            equivalent_pl(a, b).verdict
            for a in services
            for b in services
        ]

    one_shot(analyze)
    benchmark.extra_info["n_states"] = n_states


# -- BENCH_table1_pl.json emission ------------------------------------------


def collect_before_after() -> dict:
    """Nonrecursive row: SAT work counters plus AFA-route before/after."""
    from _bench_io import timed
    from repro.analysis.stats import stats_delta
    from repro.automata import afa as afa_mod

    sat_rows = []
    for n_variables, n_clauses in ((4, 8), (6, 14), (8, 20)):
        instances = [
            cnf_to_sws(
                clauses_from_tuples(random_3cnf(seed, n_variables, n_clauses))
            )
            for seed in range(5)
        ]
        # Snapshot-diff rather than STATS.reset() — see stats_delta().
        with stats_delta() as work:
            seconds, outcomes = timed(
                lambda: [nonempty_pl_nr_sat(sws).is_yes for sws in instances]
            )
        sat_rows.append(
            {
                "n_variables": n_variables,
                "n_clauses": n_clauses,
                "satisfiable": sum(outcomes),
                "seconds": round(seconds, 6),
                "sat_calls": work["sat_calls"],
                "dpll_decisions": work["dpll_decisions"],
            }
        )
    eq_rows = []
    for n_states in (3, 4, 5):
        services = [
            random_pl_sws(seed, n_states=n_states, n_variables=2, recursive=False)
            for seed in range(4)
        ]

        def pairwise():
            return [
                equivalent_pl(a, b).verdict for a in services for b in services
            ]

        t_compiled, verdicts = timed(pairwise)
        with afa_mod.ast_fallback():
            t_ast, verdicts_ast = timed(pairwise)
        assert verdicts == verdicts_ast
        eq_rows.append(
            {
                "n_states": n_states,
                "seconds_before_ast": round(t_ast, 6),
                "seconds_after_compiled": round(t_compiled, 6),
                "speedup": round(t_ast / t_compiled, 2),
            }
        )
    return {
        "experiment": "T1.5 SWS_nr(PL, PL) — SAT procedure, NP/coNP row",
        "before": "interpreted AST evaluation (seed engine)",
        "after": "compiled bitmask evaluation with symbol-class dedup",
        "nonemptiness_sat": sat_rows,
        "equivalence": eq_rows,
    }


def emit_trace_artifact(path: str) -> None:
    """A traced representative SAT-route sweep (see the recursive emitter)."""
    from repro import obs

    obs.configure(path=path, mode="w")
    try:
        for seed in range(3):
            sws = cnf_to_sws(clauses_from_tuples(random_3cnf(seed, 5, 10)))
            assert nonempty_pl_nr_sat(sws).provenance is not None
    finally:
        obs.configure(enabled=False)


def main() -> None:
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from _bench_io import BENCH_TABLE1_PL, merge_section, trace_artifact_path

    payload = collect_before_after()
    merge_section(
        BENCH_TABLE1_PL,
        "nonrecursive_pl",
        payload,
        regenerate="PYTHONPATH=src python benchmarks/bench_table1_pl_nr.py",
    )
    trace_path = trace_artifact_path(__file__)
    emit_trace_artifact(trace_path)
    print(f"wrote {BENCH_TABLE1_PL}")
    print(f"wrote {trace_path} (inspect: python -m repro.obs report)")


if __name__ == "__main__":
    main()
