"""Experiment T1.3 — Table 1, row SWS_nr(CQ, UCQ).

Paper bounds: non-emptiness PSPACE-complete, validation NEXPTIME-complete,
equivalence coNEXPTIME-complete.  The engine behind all three is the UCQ≠
expansion, whose size doubles per level of the shared-successor diamond
DAG — O(depth) states, 2^depth disjuncts.  The benchmark sweeps the
diamond depth and measures (a) expansion-based non-emptiness, (b)
Klug-containment equivalence of expansions, and (c) the guided small-model
validation, recording the expansion sizes alongside.
"""

import pytest

from repro.analysis import equivalent_cq_nr, nonempty_cq_nr, validate_cq_nr
from repro.core.run import run_relational
from repro.core.unfold import expand, saturation_length
from repro.data.generators import InstanceGenerator
from repro.workloads.scaling import cq_diamond_sws


@pytest.mark.parametrize("depth", [2, 3, 4, 5])
def test_t1_3_nonemptiness_diamond(benchmark, depth, one_shot):
    """PSPACE shape: the expansion doubles per diamond level."""
    service = cq_diamond_sws(depth)

    answer = one_shot(lambda: nonempty_cq_nr(service))
    assert answer.is_yes
    expansion = expand(service, saturation_length(service))
    assert len(expansion.disjuncts) == 2**depth
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["disjuncts"] = len(expansion.disjuncts)


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_t1_3_equivalence_diamond(benchmark, depth, one_shot):
    """coNEXPTIME procedure: containment of exponential expansions."""
    left = cq_diamond_sws(depth)
    right = cq_diamond_sws(depth)

    answer = one_shot(lambda: equivalent_cq_nr(left, right))
    assert answer.is_yes
    benchmark.extra_info["depth"] = depth


@pytest.mark.parametrize("depth", [1, 2])
def test_t1_3_equivalence_negative(benchmark, depth, one_shot):
    """Distinguishing diamonds of different depth."""
    answer = one_shot(
        lambda: equivalent_cq_nr(cq_diamond_sws(depth), cq_diamond_sws(depth + 1))
    )
    assert answer.is_no
    benchmark.extra_info["depth"] = depth


@pytest.mark.parametrize("depth", [1, 2])
def test_t1_3_validation_diamond(benchmark, depth, one_shot):
    """NEXPTIME procedure: validate a real run's output."""
    service = cq_diamond_sws(depth)
    gen = InstanceGenerator(seed=23, domain_size=2)
    output = frozenset()
    for _ in range(20):
        database = gen.database(service.db_schema, 4)
        inputs = gen.input_sequence(service.input_schema, depth + 1, 2)
        output = run_relational(service, database, inputs).output.rows
        if output:
            break
    assert output, "fixture never produced output"

    answer = one_shot(lambda: validate_cq_nr(service, output))
    assert answer.is_yes
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["output_rows"] = len(output)
