"""Experiment T1.1 — Table 1, row SWS_nr(FO, FO).

Paper bound: non-emptiness, validation and equivalence are all
*undecidable* (reduction from FO satisfiability).  Nothing terminating can
decide these cells; the reproduction therefore measures the *bounded*
procedures and the reduction substrate:

* the bounded-model FO satisfiability search (MACE-style grounding to SAT)
  whose cost explodes with the domain bound — the practical face of the
  undecidability;
* the run-enumeration non-emptiness search, with explicit budgets and
  UNKNOWN verdicts;
* certificate checking (hints), which stays cheap — verifying is decidable
  even though finding is not.
"""

import pytest

from repro.analysis import nonempty_fo_bounded
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.logic import fo
from repro.logic.terms import var
from repro.reductions.fo_sat_to_sws import fo_sat_to_sws
from repro.workloads import travel

x, y, z = var("x"), var("y"), var("z")
SCHEMA = DatabaseSchema([RelationSchema("R", ("a", "b"))])


def _needs_n_elements(n: int) -> fo.FOFormula:
    """A sentence whose smallest model has exactly n elements."""
    variables = [var(f"v{i}") for i in range(n)]
    distinct = [
        fo.NotF(fo.Equals(variables[i], variables[j]))
        for i in range(n)
        for j in range(i + 1, n)
    ]
    chained = [
        fo.atom("R", variables[i], variables[i + 1]) for i in range(n - 1)
    ]
    return fo.Exists(tuple(variables), fo.AndF(distinct + chained))


@pytest.mark.parametrize("n", [2, 3, 4])
def test_t1_1_bounded_model_search(benchmark, n, one_shot):
    """Grounding-to-SAT model search: cost grows with the model size."""
    sentence = _needs_n_elements(n)

    found, size = one_shot(
        lambda: fo.bounded_satisfiable(sentence, max_domain_size=n)
    )
    assert found and size == n
    benchmark.extra_info["model_size"] = n


@pytest.mark.parametrize("budget", [200, 2000])
def test_t1_1_bounded_nonemptiness_unknown(benchmark, budget, one_shot):
    """The blind bounded search on τ1: honest UNKNOWN within budget."""
    service = travel.travel_service()

    answer = one_shot(
        lambda: nonempty_fo_bounded(
            service, budget=budget, max_session_length=1
        )
    )
    assert answer.is_unknown
    benchmark.extra_info["budget"] = budget


def test_t1_1_certificate_checking(benchmark):
    """Verifying a supplied witness is a single run — always cheap."""
    service = travel.travel_service()
    hint = (travel.sample_database(), travel.booking_request())

    answer = benchmark(
        lambda: nonempty_fo_bounded(service, hints=[hint], budget=1)
    )
    assert answer.is_yes


@pytest.mark.parametrize("n", [2, 3])
def test_t1_1_reduction_roundtrip(benchmark, n, one_shot):
    """FO-sat reduction: the service procedure tracks the model finder."""
    sentence = _needs_n_elements(n)
    service = fo_sat_to_sws(sentence, SCHEMA)

    answer = one_shot(
        lambda: nonempty_fo_bounded(
            service, max_domain=n, max_rows=n, max_session_length=0
        )
    )
    assert answer.is_yes
    benchmark.extra_info["model_size"] = n
