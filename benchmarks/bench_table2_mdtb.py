"""Experiments T2.13–T2.14 — Table 2, the MDT_b(PL) rows.

Paper bounds: CP(SWS(PL,PL), MDT_b(PL), SWS(PL,PL)) in EXPSPACE;
PSPACE-complete with nonrecursive components.  The small-model property
makes enumeration-plus-equivalence a decision procedure; the benchmark
sweeps the invocation bound (the candidate space grows exponentially in
it) and compares nonrecursive against recursive goals.
"""

import pytest

from repro.mediator.bounded import compose_mdtb_pl
from repro.workloads.pl_services import HASH, union_word_service, word_service
from repro.workloads.scaling import pl_counter_sws

ALPHA = ["a", "b"]


def _components():
    return {
        "X": word_service(["a", HASH], ALPHA, "X"),
        "Y": word_service(["b", HASH], ALPHA, "Y"),
    }


@pytest.mark.parametrize("bound", [1, 2, 3])
def test_t2_13_invocation_bound_sweep(benchmark, bound, one_shot):
    """Candidate space grows exponentially with the invocation bound."""
    components = _components()
    sessions = [["a", HASH] * 1, ["b", HASH]]
    goal = union_word_service(
        [[s for pair in sessions for s in pair]], ALPHA, "fixed"
    )

    result = one_shot(
        lambda: compose_mdtb_pl(goal, components, invocation_bound=bound)
    )
    benchmark.extra_info["invocation_bound"] = bound
    benchmark.extra_info["candidates"] = result.candidates_tried
    assert result.exists  # a#b# is reachable at every tested bound


@pytest.mark.parametrize("sessions", [2, 3])
def test_t2_14_nonrecursive_components(benchmark, sessions, one_shot):
    """The PSPACE case: everything nonrecursive, goal chains sessions."""
    components = _components()
    chain = []
    for i in range(sessions):
        chain.extend([ALPHA[i % 2], HASH])
    goal = union_word_service([chain], ALPHA, "chain")

    result = one_shot(
        lambda: compose_mdtb_pl(goal, components, invocation_bound=sessions)
    )
    assert result.exists
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["candidates"] = result.candidates_tried


def test_t2_13_recursive_goal(benchmark):
    """The EXPSPACE case admits recursive goals; here: provably no match."""
    result = benchmark.pedantic(
        lambda: compose_mdtb_pl(
            pl_counter_sws(1), _components(), invocation_bound=1
        ),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert not result.exists


def test_t2_13_negative_exhausts_candidates(benchmark):
    """A non-composable goal forces the full candidate sweep."""
    components = _components()
    goal = union_word_service([["a", "b", HASH]], ALPHA, "fused")

    result = benchmark.pedantic(
        lambda: compose_mdtb_pl(goal, components, invocation_bound=2),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert not result.exists
    benchmark.extra_info["candidates"] = result.candidates_tried
