"""Experiment SRV.2 — the SQLite answer + artifact store across processes.

Two claims the store makes beyond the in-memory cache:

* **Cold-process warm start.**  A fresh interpreter pointed at a
  populated cache directory reuses decided answers *and* derived
  artifacts (compiled AFA searchers, symbol-class quotients) from prior
  runs.  Measured with real subprocesses — three of them, each running
  the same non-emptiness batch over the succinct-counter family:

  - ``from_scratch`` — empty cache directory, everything derived;
  - ``warm_start`` — same directory, but the most expensive job's
    *answer* is deleted first, so the run reuses the remaining answers
    and re-executes one job on top of its stored artifacts;
  - ``artifacts_only`` — all answers deleted: every job re-executes,
    isolating what the artifact tier alone saves.

* **Concurrent writers.**  N writer processes hammer one store; the
  bench records wall-clock and throughput per N and verifies that not
  a single record was lost or corrupted.

``main()`` records both sections into ``BENCH_serve_store.json`` via
``merge_section``.  The child modes (``_solve``, ``_write``) are this
same file re-invoked with a mode argument, so numbers come from genuine
cold interpreters, not a forked warm one.
"""

from __future__ import annotations

import json
import os
import shutil
import sqlite3
import subprocess
import sys
import tempfile
import time

from _bench_io import merge_section

BENCH_SERVE_STORE = "BENCH_serve_store.json"

_REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
_SRC = os.path.join(_REPO_ROOT, "src")

#: The solve batch: counter bits, ascending cost; the last is the one
#: whose answer the warm-start scenario deletes and re-derives.
BITS = (13, 14, 15)

WRITER_COUNTS = (1, 2, 4, 8)
RECORDS_PER_WRITER = 100


def _child_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_child(mode: str, *args: object) -> dict:
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), mode, *map(str, args)],
        capture_output=True,
        text=True,
        env=_child_env(),
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


# -- child modes (run in fresh interpreters) ----------------------------------


def _child_solve(cache_dir: str) -> None:
    from repro._stats import STATS
    from repro.serve import JobSpec, SolverService
    from repro.workloads.scaling import pl_counter_sws

    specs = [JobSpec("nonempty_pl", (pl_counter_sws(n),)) for n in BITS]
    t0 = time.perf_counter()
    with SolverService(cache_dir=cache_dir) as service:
        results = service.run_batch(specs)
        elapsed = time.perf_counter() - t0
        assert all(answer.is_yes for answer in results)
        out = {
            "elapsed_s": round(elapsed, 6),
            "answer_hits": service.cache.stats.hits,
            "jobs_executed": service.jobs_executed,
            "artifact_hits": STATS.artifact_hits,
            "artifact_stores": STATS.artifact_stores,
            "artifacts_in_store": service.cache.store.artifact_counts(),
        }
    print(json.dumps(out))


def _child_write(path: str, worker_id: str, count: str) -> None:
    from repro.analysis.verdict import Answer
    from repro.serve.store import Store

    t0 = time.perf_counter()
    with Store(path) as store:
        for i in range(int(count)):
            key = f"bench-w{worker_id}-{i}"
            assert store.put_answer(key, Answer.yes(detail=key), procedure="bench")
    print(json.dumps({"elapsed_s": round(time.perf_counter() - t0, 6)}))


# -- sections -----------------------------------------------------------------


def bench_warm_start(workdir: str) -> dict:
    cache_dir = os.path.join(workdir, "cache")
    from_scratch = _run_child("_solve", cache_dir)
    store_path = os.path.join(cache_dir, "answers.sqlite3")

    # Warm start: answers reused for all but the most expensive job,
    # whose re-execution rides on the stored artifacts.
    with sqlite3.connect(store_path) as conn:
        cursor = conn.execute(
            "DELETE FROM answers WHERE fingerprint = "
            "(SELECT fingerprint FROM answers ORDER BY LENGTH(payload) DESC LIMIT 1)"
        )
        assert cursor.rowcount == 1
    warm = _run_child("_solve", cache_dir)

    # Artifacts only: every answer gone, every job re-executes.
    with sqlite3.connect(store_path) as conn:
        conn.execute("DELETE FROM answers")
    artifacts_only = _run_child("_solve", cache_dir)

    assert warm["answer_hits"] == len(BITS) - 1
    assert warm["artifact_hits"] >= 1, "warm start must reuse stored artifacts"
    assert artifacts_only["artifact_hits"] >= 1
    speedup = from_scratch["elapsed_s"] / warm["elapsed_s"]
    assert speedup > 1.0, (
        f"warm start ({warm['elapsed_s']}s) not faster than from scratch "
        f"({from_scratch['elapsed_s']}s)"
    )
    return {
        "bits": list(BITS),
        "from_scratch": from_scratch,
        "warm_start": warm,
        "artifacts_only": artifacts_only,
        "warm_speedup_vs_scratch": round(speedup, 2),
        "artifacts_only_speedup_vs_scratch": round(
            from_scratch["elapsed_s"] / artifacts_only["elapsed_s"], 2
        ),
        "notes": (
            "each row is one fresh python process; warm_start deletes the "
            "largest answer so the run reuses the other answers and rebuilds "
            "one job over stored searcher/quotient artifacts; artifacts_only "
            "deletes all answers"
        ),
    }


def bench_concurrent_writers(workdir: str) -> dict:
    sys.path.insert(0, _SRC)
    from repro.serve.store import Store

    rows = []
    for n in WRITER_COUNTS:
        path = os.path.join(workdir, f"writers-{n}.sqlite3")
        Store(path).close()  # schema exists before the stampede
        t0 = time.perf_counter()
        children = [
            subprocess.Popen(
                [sys.executable, os.path.abspath(__file__), "_write", path, str(w), str(RECORDS_PER_WRITER)],
                env=_child_env(),
                stdout=subprocess.DEVNULL,
            )
            for w in range(n)
        ]
        for child in children:
            assert child.wait(timeout=300) == 0
        elapsed = time.perf_counter() - t0

        with Store(path) as store:
            count = store.answer_count()
            assert count == n * RECORDS_PER_WRITER, (
                f"{n} writers: {count} records, expected {n * RECORDS_PER_WRITER}"
            )
            for w in range(n):  # spot-check every writer's records load
                answer = store.get_answer(f"bench-w{w}-0")
                assert answer is not None and answer.is_yes
        rows.append(
            {
                "writers": n,
                "records": n * RECORDS_PER_WRITER,
                "elapsed_s": round(elapsed, 6),
                "records_per_s": round(n * RECORDS_PER_WRITER / elapsed, 1),
                "lost_records": 0,
            }
        )
    return {
        "records_per_writer": RECORDS_PER_WRITER,
        "rows": rows,
        "notes": (
            "N subprocess writers against one WAL-mode store; elapsed includes "
            "interpreter startup; lost_records asserts count and loadability"
        ),
    }


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="bench-serve-store-")
    try:
        warm = bench_warm_start(workdir)
        writers = bench_concurrent_writers(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    merge_section(
        BENCH_SERVE_STORE,
        "warm_start",
        warm,
        regenerate="python benchmarks/bench_serve_store.py",
    )
    merge_section(
        BENCH_SERVE_STORE,
        "concurrent_writers",
        writers,
        regenerate="python benchmarks/bench_serve_store.py",
    )
    print(
        f"from scratch {warm['from_scratch']['elapsed_s']:.3f}s | "
        f"warm start {warm['warm_start']['elapsed_s']:.3f}s "
        f"({warm['warm_speedup_vs_scratch']:.1f}x) | "
        f"artifacts only {warm['artifacts_only']['elapsed_s']:.3f}s"
    )
    for row in writers["rows"]:
        print(
            f"{row['writers']} writers: {row['records']} records in "
            f"{row['elapsed_s']:.3f}s ({row['records_per_s']:.0f} rec/s)"
        )


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "_solve":
        sys.path.insert(0, _SRC)
        _child_solve(sys.argv[2])
    elif len(sys.argv) > 1 and sys.argv[1] == "_write":
        sys.path.insert(0, _SRC)
        _child_write(*sys.argv[2:5])
    else:
        main()
