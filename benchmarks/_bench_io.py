"""Shared timing/emission helpers for the BENCH_*.json exports.

The pytest-benchmark runs measure scaling shape interactively; the
``main()`` entry points in ``bench_table1_pl_recursive.py`` and
``bench_table1_pl_nr.py`` use these helpers to record *before/after*
numbers for the compiled PL/AFA engine — the interpreted AST path (the
seed behaviour) against the compiled bitmask path — into a single
``BENCH_table1_pl.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable

BENCH_TABLE1_PL = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_table1_pl.json")
)


def timed(func: Callable[[], Any], repeats: int = 3) -> tuple[float, Any]:
    """Best-of-``repeats`` wall-clock for ``func``; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - t0)
    return best, result


def merge_section(path: str, section: str, payload: dict) -> dict:
    """Write ``payload`` under ``section`` in the JSON file at ``path``.

    Other sections are preserved, so the two bench files can each emit
    their half independently and in either order.
    """
    data: dict = {}
    if os.path.exists(path):
        with open(path) as handle:
            data = json.load(handle)
    data[section] = payload
    data["_meta"] = {
        "file": "BENCH_table1_pl.json",
        "regenerate": [
            "PYTHONPATH=src python benchmarks/bench_table1_pl_recursive.py",
            "PYTHONPATH=src python benchmarks/bench_table1_pl_nr.py",
        ],
        "before": "interpreted AST evaluation (seed engine)",
        "after": "compiled bitmask evaluation with symbol-class dedup",
    }
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return data
