"""Shared timing/emission helpers for the BENCH_*.json exports.

The pytest-benchmark runs measure scaling shape interactively; the
``main()`` entry points in ``bench_table1_pl_recursive.py`` and
``bench_table1_pl_nr.py`` use these helpers to record *before/after*
numbers for the compiled PL/AFA engine into a single
``BENCH_table1_pl.json`` at the repository root, and to drop a
``repro.obs`` JSONL trace artifact next to it (one per emitter; inspect
with ``python -m repro.obs report <artifact>``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable

#: Version of the BENCH_*.json layout written by :func:`merge_section`.
BENCH_SCHEMA_VERSION = 2

_REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

BENCH_TABLE1_PL = os.path.join(_REPO_ROOT, "BENCH_table1_pl.json")


def trace_artifact_path(emitter_file: str) -> str:
    """The trace artifact path for a bench emitter, next to the JSON.

    ``bench_table1_pl_recursive.py`` → ``BENCH_table1_pl_recursive.trace.jsonl``
    at the repository root, so each emitter owns (and truncates) exactly
    one artifact regardless of run order.
    """
    stem = os.path.splitext(os.path.basename(emitter_file))[0]
    stem = stem.removeprefix("bench_")
    return os.path.join(_REPO_ROOT, f"BENCH_{stem}.trace.jsonl")


def timed(func: Callable[[], Any], repeats: int = 3) -> tuple[float, Any]:
    """Best-of-``repeats`` wall-clock for ``func``; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _metrics_context() -> dict | None:
    """The active :mod:`repro.metrics` snapshot context, if enabled.

    ``REPRO_METRICS=... python benchmarks/bench_*.py`` stamps the run's
    cache hit rate and per-histogram count/p99 into the emitted
    ``_meta`` block, tying the committed numbers to the serving-layer
    conditions they were measured under.  Disabled (the default) stamps
    nothing, so plain regeneration runs leave the files byte-stable.
    """
    try:
        from repro import metrics
    except ImportError:  # pragma: no cover - src/ not on the path
        return None
    return metrics.bench_context()


def _progress_context() -> dict | None:
    """The live search-progress/profiler context, if telemetry is on.

    ``REPRO_PROGRESS=1`` (optionally plus ``REPRO_PROFILE=...``) stamps
    the run's final frontier size, peak depth, and sample count into
    ``_meta.progress`` so a committed number carries the search shape it
    was measured under.  Disabled (the default) stamps nothing.
    """
    try:
        from repro.obs import progress
    except ImportError:  # pragma: no cover - src/ not on the path
        return None
    return progress.bench_context()


def merge_section(
    path: str, section: str, payload: dict, regenerate: str | None = None
) -> dict:
    """Write ``payload`` under ``section`` in the JSON file at ``path``.

    Other sections are preserved, so several bench emitters can each
    write their own section independently and in either order.  The
    ``_meta`` block is derived from the arguments — the file name from
    ``path``, the per-section regeneration command from ``regenerate`` —
    rather than hardcoded, and carries a ``schema_version`` so readers
    can detect layout changes.  Section-specific context (what "before"
    and "after" mean, notes) belongs in the section payload itself.
    """
    data: dict = {}
    if os.path.exists(path):
        with open(path) as handle:
            data = json.load(handle)
    data[section] = payload
    meta = data.get("_meta")
    if not isinstance(meta, dict):
        meta = {}
    meta["file"] = os.path.basename(path)
    meta["schema_version"] = BENCH_SCHEMA_VERSION
    commands = meta.get("regenerate")
    if not isinstance(commands, dict):
        # Legacy layout (schema v1) kept a flat list and PL-specific
        # before/after strings; rebuild from scratch.
        commands = {}
        meta.pop("before", None)
        meta.pop("after", None)
    if regenerate:
        commands[section] = regenerate
    meta["regenerate"] = commands
    context = _metrics_context()
    if context is not None:
        meta.setdefault("metrics", {})[section] = context
    progress_context = _progress_context()
    if progress_context is not None:
        meta.setdefault("progress", {})[section] = progress_context
    data["_meta"] = meta
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return data
