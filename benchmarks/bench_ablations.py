"""Ablations: the design choices DESIGN.md calls out, measured.

Each ablation compares the implementation's chosen mechanism against the
naive alternative on the same instances, quantifying why the choice was
made:

* **A1** Tseitin vs distributive CNF inside the SAT backend — the
  distributive transformation explodes on disjunctions of conjunctions,
  Tseitin stays linear.
* **A2** vector-space search vs brute-force word enumeration for
  SWS(PL, PL) non-emptiness — the brute force pays |Σ|^length, the vector
  search only 2^states.
* **A3** Klug equality-pattern containment vs the single-canonical-database
  fast path — the ≠-complete test enumerates partitions, so the fast path
  matters whenever queries are comparison-free.
* **A4** prefix-free component cores vs free-choice languages in regular
  rewriting — run-to-completion changes *which* compositions exist, not
  just cost (Theorem 5.3's "subtle interplay").
"""

import itertools

import pytest

from repro.logic import pl
from repro.logic.cnf import to_cnf, tseitin
from repro.logic.cq import Atom, ConjunctiveQuery, neq
from repro.logic.sat import solve_cnf
from repro.logic.terms import var


def _dnf_formula(width: int) -> pl.Formula:
    return pl.Or(
        [pl.Var(f"a{i}") & pl.Var(f"b{i}") for i in range(width)]
    )


@pytest.mark.parametrize("width", [6, 8, 10])
def test_a1_tseitin(benchmark, width):
    """Linear-size equisatisfiable CNF."""
    formula = _dnf_formula(width)

    clauses, _root = benchmark(lambda: tseitin(formula))
    benchmark.extra_info["clauses"] = len(clauses)
    assert solve_cnf(clauses) is not None


@pytest.mark.parametrize("width", [6, 8, 10])
def test_a1_distributive(benchmark, width):
    """Exponential-size equivalent CNF (the ablated alternative)."""
    formula = _dnf_formula(width)

    clauses = benchmark(lambda: to_cnf(formula))
    benchmark.extra_info["clauses"] = len(clauses)
    # The blow-up is the point: 2^width clauses.
    assert len(clauses) == 2**width


@pytest.mark.parametrize("bits", [2, 3])
def test_a2_vector_search(benchmark, bits, one_shot):
    """Chosen: AFA valuation-vector reachability."""
    from repro.analysis import nonempty_pl
    from repro.workloads.scaling import pl_counter_sws

    service = pl_counter_sws(bits)
    answer = one_shot(lambda: nonempty_pl(service))
    assert answer.is_yes
    benchmark.extra_info["bits"] = bits


@pytest.mark.parametrize("bits", [2, 3])
def test_a2_brute_force_words(benchmark, bits, one_shot):
    """Ablated: enumerate words by increasing length and run each."""
    from repro.core.run import run_pl
    from repro.workloads.scaling import pl_counter_sws

    service = pl_counter_sws(bits)

    def brute():
        for length in range(0, 2**bits + 1):
            word = [frozenset()] * length
            if run_pl(service, word).output:
                return length
        return None

    found = one_shot(brute)
    assert found == 2**bits
    benchmark.extra_info["bits"] = bits


x, y, z, u = var("x"), var("y"), var("z"), var("u")


def _chain_query(length: int, with_neq: bool) -> ConjunctiveQuery:
    variables = [var(f"v{i}") for i in range(length + 1)]
    atoms = [
        Atom("E", (variables[i], variables[i + 1])) for i in range(length)
    ]
    comparisons = [neq(variables[0], variables[-1])] if with_neq else []
    return ConjunctiveQuery((variables[0], variables[-1]), atoms, comparisons)


@pytest.mark.parametrize("length", [2, 3])
def test_a3_fast_path_containment(benchmark, length, one_shot):
    """Chosen fast path: single canonical database (no comparisons)."""
    q1 = _chain_query(length, with_neq=False)
    q2 = _chain_query(length, with_neq=False)

    result = one_shot(lambda: q1.contained_in(q2))
    assert result
    benchmark.extra_info["length"] = length


@pytest.mark.parametrize("length", [2, 3])
def test_a3_pattern_enumeration(benchmark, length, one_shot):
    """≠-complete path: partition enumeration over the query's terms."""
    q1 = _chain_query(length, with_neq=True)
    q2 = _chain_query(length, with_neq=True)

    result = one_shot(lambda: q1.contained_in(q2))
    assert result
    benchmark.extra_info["length"] = length
    benchmark.extra_info["variables"] = length + 1


def test_a4_run_to_completion_changes_existence(benchmark):
    """Prefix-free cores vs free choice: different composition verdicts."""
    from repro.automata.regex import parse_regex
    from repro.automata.regular_rewriting import rewrite

    goal = parse_regex("a b b").to_nfa(["a", "b"])
    components = {
        "P": parse_regex("a | a b").to_nfa(["a", "b"]),
        "Q": parse_regex("b").to_nfa(["a", "b"]),
    }

    def both():
        stop = rewrite(goal, components, run_to_completion=True)
        free = rewrite(goal, components, run_to_completion=False)
        return stop.exact, free.exact

    stop_exact, free_exact = benchmark(both)
    # Run-to-completion pins P to its core 'a', making the goal
    # composable; under free choice P is unreliable and nothing works.
    assert stop_exact and not free_exact
