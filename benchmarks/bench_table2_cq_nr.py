"""Experiment T2.6 — Table 2, CP(SWS_nr(CQ,UCQ), MDT_nr(UCQ), SWS_nr(CQ,UCQ)).

Paper bound: 2EXPSPACE, via reduction to equivalent query rewriting using
views for UCQ with ≠.  The benchmark sweeps the number of component views
and the goal's union width, measuring the full pipeline: expand goal and
components, compute the canonical candidate rewriting, verify equivalence,
materialize and re-verify the depth-one mediator.
"""

import pytest

from repro.core.sws import MSG, SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.terms import var
from repro.logic.ucq import UnionQuery
from repro.mediator.rewriting_based import compose_cq_nr

x, y, z = var("x"), var("y"), var("z")

PAYLOAD = RelationSchema("Rin", ("p", "q"))


def _schema(k: int) -> DatabaseSchema:
    return DatabaseSchema(
        [RelationSchema(f"R{i}", ("a", "b")) for i in range(k)]
    )


def _emit_service(schema, emit: UnionQuery, name: str) -> SWS:
    first = ConjunctiveQuery((x, y), [Atom("In", (x, y))], (), "copy")
    up = UnionQuery.of(ConjunctiveQuery((x, y), [Atom("A1", (x, y))], (), "up"))
    return SWS(
        ("q0", "q1"),
        "q0",
        {"q0": TransitionRule([("q1", first)]), "q1": TransitionRule()},
        {"q0": SynthesisRule(up), "q1": SynthesisRule(emit)},
        kind=SWSKind.RELATIONAL,
        db_schema=schema,
        input_schema=PAYLOAD,
        output_arity=2,
        name=name,
    )


def _join(relation: str) -> UnionQuery:
    return UnionQuery.of(
        ConjunctiveQuery(
            (x, z), [Atom(MSG, (x, y)), Atom(relation, (y, z))], (), f"j{relation}"
        )
    )


@pytest.mark.parametrize("k", [1, 2, 3])
def test_t2_6_view_count_sweep(benchmark, k, one_shot):
    """Synthesis cost vs number of views; the goal unions them all."""
    schema = _schema(k)
    goal_emit = _join("R0")
    for i in range(1, k):
        goal_emit = goal_emit.union(_join(f"R{i}"))
    goal = _emit_service(schema, goal_emit, "goal")
    components = {
        f"V{i}": _emit_service(schema, _join(f"R{i}"), f"V{i}") for i in range(k)
    }

    result = one_shot(lambda: compose_cq_nr(goal, components))
    assert result.exists
    benchmark.extra_info["views"] = k
    benchmark.extra_info["rewriting_disjuncts"] = len(result.rewriting.disjuncts)


@pytest.mark.parametrize("k", [2, 3])
def test_t2_6_negative_case(benchmark, k, one_shot):
    """The goal needs a relation no view covers."""
    schema = _schema(k)
    goal_emit = _join("R0").union(_join(f"R{k - 1}"))
    goal = _emit_service(schema, goal_emit, "goal")
    components = {"V0": _emit_service(schema, _join("R0"), "V0")}

    result = one_shot(lambda: compose_cq_nr(goal, components))
    assert not result.exists
    benchmark.extra_info["views"] = 1


def test_t2_6_redundant_views_pruned(benchmark):
    """Minimization keeps the synthesized mediator small."""
    schema = _schema(2)
    goal = _emit_service(schema, _join("R0"), "goal")
    components = {
        "V0": _emit_service(schema, _join("R0"), "V0"),
        "V1": _emit_service(schema, _join("R1"), "V1"),
    }

    result = benchmark.pedantic(
        lambda: compose_cq_nr(goal, components),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.exists
    # Only the matching view survives minimization.
    assert set(result.mediator.components) == {"V0"}
