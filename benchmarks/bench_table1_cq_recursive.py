"""Experiment T1.2 — Table 1, row SWS(CQ, UCQ).

Paper bounds: non-emptiness EXPTIME-complete (upper bound via tree
automata over execution trees; lower bound from sirup datalog); validation
and equivalence undecidable.

Benchmarked here:

* the iterated-unfolding non-emptiness procedure on the recursive chain
  family — cost grows with the session-length horizon, the exponential
  unfolding the EXPTIME bound licenses;
* the sirup substrate (the paper's hardness source) as baseline: bottom-up
  datalog evaluation on growing transitive-closure instances;
* the *bounded* equivalence semi-procedure on recursive services — the
  undecidable cell, exercised at explicit budgets with three-valued
  verdicts.
"""

import pytest

from repro.analysis import equivalent_cq, nonempty_cq
from repro.logic.cq import Atom
from repro.logic.datalog import Rule, Sirup
from repro.logic.terms import var
from repro.workloads.scaling import cq_chain_sws, cq_diamond_sws


@pytest.mark.parametrize("horizon", [2, 3, 4, 5])
def test_t1_2_nonemptiness_unfolding(benchmark, horizon, one_shot):
    """Unfolding-based non-emptiness at growing session-length budgets."""
    service = cq_chain_sws(0)

    answer = one_shot(lambda: nonempty_cq(service, max_session_length=horizon))
    assert answer.is_yes  # the chain produces output from length 2 on
    benchmark.extra_info["horizon"] = horizon


@pytest.mark.parametrize("horizon", [2, 3, 4])
def test_t1_2_nonemptiness_worst_case(benchmark, horizon, one_shot):
    """Worst case: an empty recursive service with a doubling unfolding.

    The emitting state is unsatisfiable, so the procedure must pay for the
    full exponential unfolding at every horizon before answering UNKNOWN —
    the EXPTIME shape without early exits.
    """
    from repro.workloads.scaling import cq_recursive_diamond_sws

    service = cq_recursive_diamond_sws()

    answer = one_shot(lambda: nonempty_cq(service, max_session_length=horizon))
    assert answer.is_unknown
    benchmark.extra_info["horizon"] = horizon


@pytest.mark.parametrize("size", [6, 10, 14])
def test_t1_2_sirup_baseline(benchmark, size, one_shot):
    """The EXPTIME-hardness source: sirup evaluation (transitive closure)."""
    x, y, z = var("x"), var("y"), var("z")
    rule = Rule(Atom("T", (x, z)), [Atom("T", (x, y)), Atom("E", (y, z))])
    facts = [("T", (0, 0))] + [("E", (i, i + 1)) for i in range(size)]
    sirup = Sirup(rule, facts, ("T", (0, size)))

    accepted = one_shot(sirup.accepts)
    assert accepted
    benchmark.extra_info["chain_length"] = size


@pytest.mark.parametrize("horizon", [2, 3])
def test_t1_2_bounded_equivalence(benchmark, horizon, one_shot):
    """Undecidable cell: the bounded semi-procedure, never a wrong answer."""
    chain = cq_chain_sws(0)

    answer = one_shot(
        lambda: equivalent_cq(chain, chain, max_session_length=horizon)
    )
    # Reflexivity can never be refuted; with a finite budget the verdict
    # is UNKNOWN (sound), never NO.
    assert not answer.is_no
    benchmark.extra_info["horizon"] = horizon


def test_t1_2_bounded_equivalence_finds_differences(benchmark):
    """A real difference is found at some finite horizon (NO is exact)."""
    answer = benchmark.pedantic(
        lambda: equivalent_cq(
            cq_chain_sws(0), cq_diamond_sws(1), max_session_length=3
        ),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert answer.is_no
