"""Experiment DLT.1 — incremental re-solving for edited services.

The claim ``repro.delta`` makes: after a *single-row* edit (one state's
transition/synthesis rules change), re-checking the edited version
through a :class:`repro.delta.Session` costs near-constant time — the
sub-fingerprint diff, row patching, and witness replay all scale with
the edit, not the instance — while a from-scratch solve re-pays
canonicalization, ``to_afa``, formula compilation, and the vector BFS
on every keystroke.

Two sections into ``BENCH_delta.json``:

* ``menu_editing`` — the lead: union "menu" services (Table 1's PL
  shape) at growing branch counts, each re-checked over a deterministic
  single-row edit script.  The per-edit re-check must beat the full
  re-solve by ≥5× and should stay roughly flat as the instance grows.
* ``counter_resume`` — budget-tripped succinct counters re-checked with
  a bigger budget: the resume path seeds the BFS from the snapshot's
  surviving frontier instead of restarting at ``V_ε``.  Reported
  honestly: the win is the re-discovered prefix, not a constant factor.
"""

from __future__ import annotations

import pytest

from repro.analysis import nonempty_pl
from repro.delta import Session
from repro.workloads.editing import menu_editing_trace
from repro.workloads.scaling import pl_counter_sws

#: Menu sizes (branch counts) for the editing sweep; words are length 6
#: over a 6-letter alphabet, so states ≈ branches · 6.
MENU_BRANCHES = (8, 16, 32)
MENU_LENGTH = 6
MENU_ALPHABET = "abcdef"
MENU_EDITS = 8

#: Acceptance bar: single-row-edit re-check vs full re-solve.
MIN_SPEEDUP = 5.0


def _menu_trace(branches: int):
    return menu_editing_trace(
        branches=branches,
        length=MENU_LENGTH,
        alphabet=MENU_ALPHABET,
        edits=MENU_EDITS,
        seed=1,
    )


@pytest.mark.parametrize("branches", list(MENU_BRANCHES))
def test_dlt_1_single_row_edit_recheck(benchmark, branches, one_shot):
    """Per-edit re-check stays near-constant while the instance grows."""
    trace = _menu_trace(branches)
    session = Session(trace[0])
    session.check()
    session.edit(trace[1])
    session.recheck()  # warm the engine once; measure steady-state edits
    step = [2]

    def edit_and_recheck():
        version = trace[step[0]]
        step[0] = step[0] + 1 if step[0] + 1 < len(trace) else 2
        session.edit(version)
        return session.recheck()

    result = benchmark.pedantic(
        edit_and_recheck, rounds=3, iterations=1, warmup_rounds=0
    )
    assert result.answer.is_yes
    assert result.mode in ("replay", "warm")
    benchmark.extra_info["branches"] = branches
    benchmark.extra_info["states"] = len(trace[0].states)


@pytest.mark.parametrize("branches", list(MENU_BRANCHES))
def test_dlt_1_full_resolve_reference(benchmark, branches, one_shot):
    """The from-scratch cost the re-check is measured against."""
    trace = _menu_trace(branches)

    answer = one_shot(lambda: nonempty_pl(trace[1]))
    assert answer.is_yes
    benchmark.extra_info["branches"] = branches


# -- BENCH_delta.json emission ------------------------------------------------


def bench_menu_editing() -> dict:
    from _bench_io import timed

    rows = []
    for branches in MENU_BRANCHES:
        trace = _menu_trace(branches)
        # Full re-solve of an edited version, from scratch, best-of-3.
        full_s, answer = timed(lambda: nonempty_pl(trace[1]))
        assert answer.is_yes

        # One session replays the whole edit script; per-edit wall
        # clock includes the diff (sub-fingerprint hashing of the
        # edited copy), invalidation, and the re-check itself.
        session = Session(trace[0])
        session.check()
        modes: dict[str, int] = {}
        per_edit: list[float] = []
        for version in trace[1:]:
            session.edit(version)
            result = session.recheck()
            assert result.answer.is_yes
            per_edit.append(result.elapsed_s)
            modes[result.mode] = modes.get(result.mode, 0) + 1
        # Steady state: the first re-check pays the one-time engine
        # build for the session, so it is reported but not averaged.
        steady = per_edit[1:]
        mean_s = sum(steady) / len(steady)
        best_s = min(steady)
        rows.append(
            {
                "branches": branches,
                "states": len(trace[0].states),
                "edits": len(steady),
                "full_resolve_s": round(full_s, 6),
                "first_recheck_s": round(per_edit[0], 6),
                "recheck_mean_s": round(mean_s, 6),
                "recheck_best_s": round(best_s, 6),
                "speedup_mean": round(full_s / mean_s, 2),
                "speedup_best": round(full_s / best_s, 2),
                "modes": dict(sorted(modes.items())),
            }
        )
    return {
        "claim": (
            "single-row-edit re-check through a delta Session beats a "
            f"from-scratch re-solve by >= {MIN_SPEEDUP}x on Table 1 PL "
            "menu services, and stays near-constant as the instance grows"
        ),
        "min_speedup_required": MIN_SPEEDUP,
        "rows": rows,
    }


def bench_counter_resume() -> dict:
    from _bench_io import timed

    rows = []
    for bits, budget in ((10, 30), (12, 2000)):
        sws = pl_counter_sws(bits)
        full_s, full_answer = timed(lambda: nonempty_pl(sws))
        assert full_answer.is_yes

        # Trip outside the timed region: the bench measures the resumed
        # search, not the budget-starved first attempt.
        best_resume = float("inf")
        result = None
        seeded = 0
        for _ in range(3):
            session = Session(sws, budget=budget)
            assert session.check().is_unknown
            seeded = len(session.state.parents or ())
            elapsed, result = timed(
                lambda: session.recheck(budget=10**9), repeats=1
            )
            best_resume = min(best_resume, elapsed)
        assert result.mode == "resume" and result.answer.is_yes
        rows.append(
            {
                "bits": bits,
                "trip_budget": budget,
                "seeded_vectors": seeded,
                "full_solve_s": round(full_s, 6),
                "resume_s": round(best_resume, 6),
                "resume_pops": result.pops,
            }
        )
    return {
        "note": (
            "resume seeds the BFS from the tripped snapshot's surviving "
            "frontier; the saving is the already-discovered prefix, not "
            "a constant factor, so no speedup bar is asserted here"
        ),
        "rows": rows,
    }


def main() -> None:
    from _bench_io import merge_section

    menu = bench_menu_editing()
    counter = bench_counter_resume()
    merge_section(
        "BENCH_delta.json",
        "menu_editing",
        menu,
        regenerate="python benchmarks/bench_delta.py",
    )
    merge_section(
        "BENCH_delta.json",
        "counter_resume",
        counter,
        regenerate="python benchmarks/bench_delta.py",
    )
    failed = [
        row for row in menu["rows"] if row["speedup_mean"] < MIN_SPEEDUP
    ]
    for row in menu["rows"]:
        print(
            f"menu {row['branches']:>3} branches ({row['states']} states): "
            f"full {row['full_resolve_s'] * 1e3:8.2f}ms | "
            f"re-check {row['recheck_mean_s'] * 1e3:6.2f}ms mean "
            f"({row['speedup_mean']:.1f}x), "
            f"{row['recheck_best_s'] * 1e3:6.2f}ms best "
            f"({row['speedup_best']:.1f}x) | modes {row['modes']}"
        )
    for row in counter["rows"]:
        print(
            f"counter bits={row['bits']:>2} (trip@{row['trip_budget']}): "
            f"full {row['full_solve_s'] * 1e3:8.2f}ms | "
            f"resume {row['resume_s'] * 1e3:8.2f}ms "
            f"({row['resume_pops']} pops)"
        )
    if failed:
        raise SystemExit(
            f"FAIL: {len(failed)} menu row(s) under the {MIN_SPEEDUP}x bar: "
            + ", ".join(str(row["branches"]) for row in failed)
        )


if __name__ == "__main__":
    main()
