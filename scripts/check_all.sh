#!/usr/bin/env bash
# Full verification sweep: install, tests, benchmarks, examples.
# Mirrors what EXPERIMENTS.md and test_output.txt/bench_output.txt record.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== install =="
pip install -e . 2>/dev/null || python setup.py develop

echo "== tests =="
python -m pytest tests/

echo "== benchmarks =="
python -m pytest benchmarks/ --benchmark-only

echo "== examples =="
for example in examples/*.py; do
    echo "-- ${example}"
    python "${example}" > /dev/null
done

echo "all green"
