#!/usr/bin/env bash
# Verification sweep: install, tests, benchmarks, examples.
# Mirrors what EXPERIMENTS.md and test_output.txt/bench_output.txt record.
#
# By default runs the fast tier only (tests not marked `slow`, no
# benchmarks); pass --all for the full sweep the release records use.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_ALL=0
for arg in "$@"; do
    case "${arg}" in
        --all) RUN_ALL=1 ;;
        *) echo "usage: $0 [--all]" >&2; exit 2 ;;
    esac
done

echo "== install =="
pip install -e . 2>/dev/null || python setup.py develop

if [[ "${RUN_ALL}" -eq 1 ]]; then
    echo "== tests (full) =="
    python -m pytest tests/

    echo "== benchmarks =="
    python -m pytest benchmarks/ --benchmark-only

    echo "== examples =="
    for example in examples/*.py; do
        echo "-- ${example}"
        python "${example}" > /dev/null
    done
else
    echo "== tests (fast tier; use --all for the full sweep) =="
    python -m pytest tests/ -m "not slow"
fi

echo "== obs smoke (traced analysis + report CLI) =="
OBS_TRACE="$(mktemp /tmp/repro_obs_smoke.XXXXXX.jsonl)"
trap 'rm -f "${OBS_TRACE}"' EXIT
REPRO_TRACE="${OBS_TRACE}" python - <<'PY'
from repro.analysis import nonempty_pl
from repro.workloads.scaling import pl_counter_sws

answer = nonempty_pl(pl_counter_sws(4))
assert answer.is_yes
assert answer.provenance is not None, "tracing enabled but no provenance"
assert answer.provenance.counters["vectors_explored"] > 0
PY
python -m repro.obs report "${OBS_TRACE}"

echo "== guard smoke (fault injection + guard map CLI) =="
python - <<'PY'
from repro.analysis import nonempty_pl
from repro.guard.inject import injected
from repro.workloads.scaling import pl_counter_sws

sws = pl_counter_sws(4)
assert nonempty_pl(sws).is_yes
with injected("afa.search_witness", limit="deadline") as plan:
    answer = nonempty_pl(sws)
assert plan.fired, "injection never reached the search checkpoint"
assert answer.is_unknown, answer
assert answer.trip.limit == "deadline"
PY
python -m repro.obs guard > /dev/null

echo "== serve smoke (2-worker batch + cache hits on resubmission) =="
python - <<'PY'
from repro.serve import JobSpec, SolverService
from repro.workloads.scaling import pl_counter_sws

specs = [
    JobSpec("nonempty_pl", (pl_counter_sws(n),), label=f"counter-{n}-{i}")
    for i in (0, 1)
    for n in (6, 7, 8, 9)
]
with SolverService(workers=2) as service:
    cold = service.run_batch(specs)
    assert [a.verdict.value for a in cold] == ["yes"] * 8
    assert service.jobs_executed == 4, service.stats()  # dedup
    warm = service.run_batch(specs)
    assert all(a.is_yes for a in warm)
    assert service.cache.stats.hits >= 8, service.stats()
    assert service.jobs_executed == 4, service.stats()  # all cached
PY
python -m repro.serve procedures > /dev/null

echo "== store smoke (write, reopen cold, warm-start hit) =="
STORE_DIR="$(mktemp -d /tmp/repro_store_smoke.XXXXXX)"
trap 'rm -f "${OBS_TRACE}"; rm -rf "${STORE_DIR}"' EXIT
REPRO_STORE_SMOKE_DIR="${STORE_DIR}" python - <<'PY'
import os

import repro.automata.afa as afa
from repro.serve import JobSpec, SolverService
from repro.workloads.scaling import pl_counter_sws

cache_dir = os.environ["REPRO_STORE_SMOKE_DIR"]
specs = [JobSpec("nonempty_pl", (pl_counter_sws(8),))]

# Write: a service with a store-backed disk tier solves once.
with SolverService(cache_dir=cache_dir) as service:
    assert service.run_batch(specs)[0].is_yes
    stats = service.cache.store.stats()
    assert stats["journal_mode"] == "wal", stats
    assert stats["answers"] == 1, stats
    assert stats["artifacts"], stats

# Reopen cold: simulate a fresh process (cleared compile caches,
# empty memory tier) and warm-start from the store.
afa._SEARCHER_CACHE.clear()
afa._DIFF_SEARCHER_CACHE.clear()
with SolverService(cache_dir=cache_dir) as service:
    assert service.cache.stats.disk_loaded == 1
    assert service.run_batch(specs)[0].is_yes
    assert service.jobs_executed == 0, service.stats()  # answer reused
    assert service.cache.stats.hits >= 1
PY
python -m repro.serve store stats "${STORE_DIR}" > /dev/null
python -m repro.serve store vacuum "${STORE_DIR}" > /dev/null

echo "== chaos smoke (faulted soak + dead-letter CLI round-trip) =="
CHAOS_DIR="$(mktemp -d /tmp/repro_chaos_smoke.XXXXXX)"
trap 'rm -f "${OBS_TRACE}"; rm -rf "${STORE_DIR}" "${CHAOS_DIR}"' EXIT
REPRO_METRICS="${CHAOS_DIR}/chaos-metrics.jsonl" python - <<'PY'
from repro.analysis import nonempty_pl
from repro.guard import Budget, inject
from repro.serve import RetryPolicy, SolverService
from repro.workloads.scaling import serve_traffic_burst

waves = serve_traffic_burst(
    n_jobs=120, distinct=5, seed=7, min_bits=4, waves=3, burst_every=2,
    burst_factor=3,
)
truth = {}
for wave in waves:
    for _, args in wave:
        if id(args[0]) not in truth:
            truth[id(args[0])] = nonempty_pl(args[0]).verdict.value

# Rates tuned so this exact seed provably loses a worker: some
# first-attempt job carries a kill fate, and either it runs (and dies)
# or an earlier kill stranded it.  Retry counts stay timing-dependent
# (redispatch shifts attempt numbers), so the retry ladder is asserted
# on the deterministic starved run below instead.
spec = inject.ChaosSpec(
    kill_rate=0.4, trip_rate=0.7, store_error_rate=0.3, seed=7
)
budget = Budget(step_budget=200_000)
resolved = dead = contradictions = 0
with inject.chaos(spec):
    with SolverService(
        workers=2,
        retry_policy=RetryPolicy(
            max_attempts=3, budget_multiplier=4.0, backoff_base_s=0.01,
            backoff_cap_s=0.1,
        ),
    ) as service:
        for wave in waves:
            handles = [
                (service.submit(name, *args, budget=budget), args)
                for name, args in wave
            ]
            service.drain()
            for handle, args in handles:
                assert handle.done(), "handle left unresolved"
                verdict = handle.result(timeout=0).verdict.value
                resolved += 1
                if handle.dead_lettered:
                    dead += 1
                elif verdict != "unknown" and verdict != truth[id(args[0])]:
                    contradictions += 1
        lost = service.jobs_worker_lost
        retried = service.jobs_retried
assert resolved == 120, f"{resolved} of 120 jobs resolved"
assert contradictions == 0, f"{contradictions} decided answers wrong"
assert lost >= 1, "chaos smoke never lost a worker"
print(
    f"chaos smoke: 120 jobs resolved, {dead} dead-lettered, "
    f"{lost} workers lost, {retried} retried, 0 contradictions"
)
PY
cat > "${CHAOS_DIR}/starved.jsonl" <<'JOBS'
{"procedure": "nonempty_pl", "instances": [{"factory": "repro.workloads.scaling:pl_counter_sws", "args": [12]}], "budget": {"step_budget": 4}, "label": "starved-12"}
JOBS
# A hopelessly starved job must dead-letter and fail the run...
if python -m repro.serve run "${CHAOS_DIR}/starved.jsonl" \
    --cache-dir "${CHAOS_DIR}/cache" --retries 2 --budget-multiplier 2 \
    --out /dev/null 2> /dev/null; then
    echo "expected the starved run to exit nonzero" >&2
    exit 1
fi
python -m repro.serve dlq list "${CHAOS_DIR}/cache" | grep -q starved-12
# The retry ladder provably ran: the record shows both attempts.
python -m repro.serve dlq list "${CHAOS_DIR}/cache" --json \
    | grep -q '"attempts": 2'
# ...and recover through dlq retry with real escalation room.
python -m repro.serve dlq retry "${CHAOS_DIR}/cache" \
    --retries 3 --budget-multiplier 32 > /dev/null
python -m repro.serve dlq list "${CHAOS_DIR}/cache" 2>&1 | grep -q "dlq: empty"

echo "== metrics smoke (exported snapshot + dashboard frame) =="
METRICS_DIR="$(mktemp -d /tmp/repro_metrics_smoke.XXXXXX)"
trap 'rm -f "${OBS_TRACE}"; rm -rf "${STORE_DIR}" "${CHAOS_DIR}" "${METRICS_DIR}"' EXIT
cat > "${METRICS_DIR}/jobs.jsonl" <<'JOBS'
{"procedure": "nonempty_pl", "instances": [{"factory": "repro.workloads.scaling:pl_counter_sws", "args": [6]}], "label": "c6"}
{"procedure": "nonempty_pl", "instances": [{"factory": "repro.workloads.scaling:pl_counter_sws", "args": [7]}], "label": "c7"}
{"procedure": "nonempty_pl", "instances": [{"factory": "repro.workloads.scaling:pl_counter_sws", "args": [8]}], "label": "c8"}
{"procedure": "nonempty_pl", "instances": [{"factory": "repro.workloads.scaling:pl_counter_sws", "args": [9]}], "label": "c9"}
JOBS
python -m repro.serve run "${METRICS_DIR}/jobs.jsonl" \
    --workers 2 --repeat 2 --metrics "${METRICS_DIR}/metrics.jsonl" \
    --out /dev/null 2> /dev/null
REPRO_METRICS_SMOKE="${METRICS_DIR}/metrics.jsonl" python - <<'PY'
import os

from repro import metrics

snap = metrics.last_snapshot(os.environ["REPRO_METRICS_SMOKE"])
assert snap is not None, "no snapshot exported"
assert snap["v"] == metrics.METRICS_SCHEMA_VERSION
counters = snap["counters"]
assert metrics.counter_total(counters, "serve.jobs.executed") == 4, counters
latency = snap["histograms"]["serve.job.latency_s{procedure=nonempty_pl}"]
assert latency["count"] == 4, latency  # worker samples merged up
rate = metrics.cache_hit_rate(counters)
assert rate is not None and rate >= 0.4, counters  # warm repeat round
PY
python -m repro.serve top "${METRICS_DIR}/metrics.jsonl" --once > /dev/null

echo "== delta smoke (incremental re-check CLI + serve --repeat sessions) =="
DELTA_DIR="$(mktemp -d /tmp/repro_delta_smoke.XXXXXX)"
trap 'rm -f "${OBS_TRACE}"; rm -rf "${STORE_DIR}" "${CHAOS_DIR}" "${METRICS_DIR}" "${DELTA_DIR}"' EXIT
# Replay an edit script through one session: every verdict is
# cross-checked against a from-scratch solve, and at least 3 re-checks
# must avoid the full path.
python -m repro.delta replay \
    --trace repro.workloads.editing:menu_editing_trace \
    --compare --require-warm 3 > /dev/null
python -m repro.delta diff \
    --trace repro.workloads.editing:growing_trace --json \
    | grep -q '"alphabet_changed": true'
cat > "${DELTA_DIR}/jobs.jsonl" <<'JOBS'
{"procedure": "nonempty_pl", "instances": [{"factory": "repro.workloads.editing:edited_menu", "kwargs": {"step": "@round", "edits": 4}}], "label": "edited-menu"}
{"procedure": "nonempty_pl", "instances": [{"factory": "repro.workloads.scaling:pl_counter_sws", "args": [5]}], "label": "static-counter"}
JOBS
# Repeated rounds reuse one Session per job line: the "@round" spec
# re-checks incrementally, the static one stays cached.
python -m repro.serve run "${DELTA_DIR}/jobs.jsonl" --repeat 3 \
    --metrics "${DELTA_DIR}/delta-metrics.jsonl" --out /dev/null \
    2> "${DELTA_DIR}/run.err"
grep -q "delta: 2 session(s), 4 recheck(s)" "${DELTA_DIR}/run.err"
grep -q "2 cached" "${DELTA_DIR}/run.err"

echo "== perf tripwire (obs check vs committed baselines) =="
python -m repro.obs check --baseline benchmarks/baselines.json \
    --metrics "${METRICS_DIR}/metrics.jsonl" --trace 'BENCH_*.trace.jsonl'
# Second pass with the chaos-smoke snapshot: the resilience bounds
# (serve.retry.*, serve.dlq.*) only have values there.
python -m repro.obs check --baseline benchmarks/baselines.json \
    --metrics "${CHAOS_DIR}/chaos-metrics.jsonl" --trace 'BENCH_*.trace.jsonl'
# Third pass with the delta-smoke snapshot: the incremental re-check
# bounds (delta.*) only have values there.
python -m repro.obs check --baseline benchmarks/baselines.json \
    --metrics "${DELTA_DIR}/delta-metrics.jsonl" --trace 'BENCH_*.trace.jsonl'
python -m repro.obs critical-path 'BENCH_*.trace.jsonl' --limit 8 > /dev/null

echo "== introspection smoke (profiler + progress + explain + flame) =="
INTROSPECT_DIR="$(mktemp -d /tmp/repro_introspect_smoke.XXXXXX)"
trap 'rm -f "${OBS_TRACE}"; rm -rf "${STORE_DIR}" "${CHAOS_DIR}" "${METRICS_DIR}" "${DELTA_DIR}" "${INTROSPECT_DIR}"' EXIT
REPRO_INTROSPECT_DIR="${INTROSPECT_DIR}" python - <<'PY'
import json
import os

from repro import obs
from repro.analysis import nonempty_pl
from repro.guard import Budget
from repro.obs import profile, progress
from repro.workloads.scaling import pl_counter_sws

out = os.environ["REPRO_INTROSPECT_DIR"]
trace = os.path.join(out, "introspect.trace.jsonl")
collapsed = os.path.join(out, "introspect.collapsed")
obs.configure(path=trace, mode="w")
progress.configure(enabled=True, interval_s=0.01)
profile.configure(path=collapsed, hz=500)
try:
    answer = nonempty_pl(pl_counter_sws(15), guard=Budget(deadline_s=120))
finally:
    profile.configure(enabled=False)
    progress.configure(enabled=False)
    obs.configure(enabled=False)
assert answer.is_yes, answer

events = [json.loads(line) for line in open(trace)]
prog = [
    e for e in events
    if e.get("event") == "progress" and e["site"].startswith("afa.")
]
assert prog, "no progress events from the AFA search"
visited = [e["visited"] for e in prog if "visited" in e]
assert visited == sorted(visited), f"visited not monotone: {visited}"

profile.write_collapsed()
samples = profile.parse_collapsed(open(collapsed).read())
assert samples, "profiler collected no samples"
top = max(samples.items(), key=lambda kv: kv[1])[0]
assert any(
    "afa" in frame or "_compiled" in frame or "_search" in frame
    for frame in top
), f"top stack not in the search engine: {top}"
PY
python -m repro.obs explain "${INTROSPECT_DIR}/introspect.trace.jsonl" \
    | grep -q "dominant phase"
python -m repro.obs flame "${INTROSPECT_DIR}/introspect.collapsed" \
    -o "${INTROSPECT_DIR}/introspect.html" > /dev/null
test -s "${INTROSPECT_DIR}/introspect.html"

echo "== profiler-overhead guard (disabled-mode solves stay in bounds) =="
# With the profiler and progress telemetry OFF (the default), fresh
# guarded solves must still clear the committed perf tripwire bounds —
# the telemetry hooks may not tax the disabled path.
REPRO_INTROSPECT_DIR="${INTROSPECT_DIR}" python - <<'PY'
import os

from repro import obs
from repro.analysis import nonempty_pl, nonempty_pl_nr_sat
from repro.obs import profile, progress
from repro.reductions.sat_to_sws import clauses_from_tuples, cnf_to_sws
from repro.workloads.scaling import pl_counter_sws, random_3cnf

assert not profile.is_enabled() and not progress.is_enabled()
trace = os.path.join(os.environ["REPRO_INTROSPECT_DIR"], "overhead.trace.jsonl")
obs.configure(path=trace, mode="w")
try:
    for bits in (8, 9, 10):
        assert nonempty_pl(pl_counter_sws(bits)).is_yes
    for seed in (0, 1):
        sws = cnf_to_sws(clauses_from_tuples(random_3cnf(seed, 8, 24)))
        nonempty_pl_nr_sat(sws)
finally:
    obs.configure(enabled=False)
PY
python -m repro.obs check --baseline benchmarks/baselines.json \
    --trace "${INTROSPECT_DIR}/overhead.trace.jsonl"

echo "all green"
