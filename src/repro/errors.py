"""Exception hierarchy for the SWS reproduction library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one base class.  Subclasses partition errors by subsystem:

* :class:`SchemaError` — malformed or mismatched relational schemas.
* :class:`QueryError` — ill-formed queries or evaluation against the wrong
  schema (arity mismatches, unbound variables, unsafe negation).
* :class:`SWSDefinitionError` — an SWS or mediator that violates
  Definition 2.1 / 5.1 of the paper (missing rules, start state on a rhs,
  queries in the wrong language class).
* :class:`RunError` — a failure during a run (e.g. input sequence with
  gaps in its timestamps).
* :class:`AnalysisError` — a decision procedure invoked on a class of SWS's
  it does not support (e.g. the NP procedure on a recursive SWS).
* :class:`BudgetExceededError` — a bounded (semi-)decision procedure
  exhausted its resource budget without reaching a verdict; callers that
  prefer three-valued results should use the ``Verdict``-returning variants
  instead of the raising ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relational schema is malformed or two schemas are incompatible."""


class QueryError(ReproError):
    """A query is ill-formed or was evaluated against a mismatched schema."""


class SWSDefinitionError(ReproError):
    """An SWS/mediator definition violates Definition 2.1 or 5.1."""


class RunError(ReproError):
    """A run over a database and input sequence could not be carried out."""


class AnalysisError(ReproError):
    """A decision procedure was applied outside of its supported class."""


class BudgetExceededError(ReproError):
    """A bounded procedure ran out of budget before reaching a verdict.

    ``budget`` is the configured value of the limit that tripped and
    ``limit`` names it (``"steps"``, ``"deadline"``, ``"memory"`` or
    ``"cancelled"``); when a limit name is given it is appended to the
    message so bare tracebacks identify what ran out.
    """

    def __init__(
        self,
        message: str,
        *,
        budget: int | None = None,
        limit: str | None = None,
    ) -> None:
        if limit is not None:
            message = f"{message} [limit={limit}]"
        super().__init__(message)
        self.budget = budget
        self.limit = limit
