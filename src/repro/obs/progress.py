"""Search-progress telemetry piggybacked on the guard checkpoints.

A PL/AFA solve that runs for minutes is a black box between its span's
start and end; this module turns the guard's existing checkpoint sites
into a live telemetry source.  When enabled, every
:func:`repro.guard.checkpoint` call feeds a per-site tracker, and the
tracker periodically (default every :data:`DEFAULT_INTERVAL_S` seconds,
per site) emits one ``progress`` event into the :mod:`repro.obs` trace
stream and refreshes ``progress.*`` gauges in :mod:`repro.metrics`::

    {"event": "progress", "site": "afa.search_witness", "steps": 123456,
     "frontier": 1873, "peak_frontier": 2048, "visited": 130021,
     "depth": 7, "steps_per_s": 815000.0, "elapsed_s": 0.151,
     "headroom": {"steps": 0.12, "deadline": 0.58}, "t_wall": ...}

``steps`` is the cumulative checkpoint step count (BFS pops, SAT
decisions — whatever the loop counts), so it is monotone per site;
``frontier`` is the queue length the loop reported, ``visited`` the size
of its seen-set, ``depth`` the caller's search depth (session length,
iteration bound) where one exists.  ``headroom`` is the fraction of each
configured budget limit still unspent, read from the innermost ambient
:class:`repro.guard.Guard`.

Cost discipline matches :mod:`repro.metrics`: with progress disabled
(the default) the guard checkpoint pays **one global read** of
``_governor._PROGRESS is None`` and nothing else; no event dicts, no
clock reads.  Enable with ``configure(enabled=True)`` or the
``REPRO_PROGRESS`` environment variable (``1``/``true`` for the default
interval, a float for a custom one in seconds).

When a guard trips, the tracker emits one final ``progress`` event built
*from the* :class:`repro.guard.Trip` *itself* (same site, steps,
frontier, limit), so the last progress line of a tripped solve is always
consistent with the answer's partial-progress detail — including trips
forced by :mod:`repro.guard.inject`.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Mapping

from repro import metrics
from repro.guard import _governor
from repro.obs import _tracer

PROGRESS_ENV_VAR = "REPRO_PROGRESS"

#: Progress event format version.
PROGRESS_SCHEMA_VERSION = 1

#: Seconds between emitted events per checkpoint site.
DEFAULT_INTERVAL_S = 0.25

__all__ = [
    "DEFAULT_INTERVAL_S",
    "PROGRESS_ENV_VAR",
    "PROGRESS_SCHEMA_VERSION",
    "ProgressTracker",
    "bench_context",
    "configure",
    "is_enabled",
    "iter_progress_events",
    "reset",
    "summary",
]


class _SiteState:
    """Mutable per-(thread, site) accumulator; registered for summaries."""

    __slots__ = (
        "site",
        "steps",
        "frontier",
        "peak_frontier",
        "visited",
        "depth",
        "peak_depth",
        "t0",
        "last_emit_t",
        "last_emit_steps",
        "events",
        "tripped",
    )

    def __init__(self, site: str, now: float) -> None:
        self.site = site
        self.steps = 0
        self.frontier: int | None = None
        self.peak_frontier = 0
        self.visited: int | None = None
        self.depth: int | None = None
        self.peak_depth = 0
        self.t0 = now
        self.last_emit_t = now
        self.last_emit_steps = 0
        self.events = 0
        self.tripped: str | None = None


def _headroom(guard: "_governor.Guard | None") -> dict[str, float] | None:
    """Unspent fraction of each configured limit of the ambient guard."""
    if guard is None:
        return None
    budget = guard.budget
    out: dict[str, float] = {}
    if budget.step_budget:
        out["steps"] = max(0.0, 1.0 - guard.steps / budget.step_budget)
    if budget.deadline_s:
        out["deadline"] = max(0.0, 1.0 - guard.elapsed_s() / budget.deadline_s)
    if budget.memory_ceiling_mb:
        rss = _governor._rss_mb()
        if rss is not None:
            out["memory"] = max(0.0, 1.0 - rss / budget.memory_ceiling_mb)
    return out or None


class ProgressTracker:
    """The object installed as ``_governor._PROGRESS`` while enabled.

    Checkpoint updates touch thread-local site states (no lock on the
    hot path); a module-level registry of every state — appended under
    a lock once per (thread, site) — backs :func:`summary`.
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        self.interval_s = interval_s
        self._local = threading.local()
        self._lock = threading.Lock()
        self._states: list[_SiteState] = []

    # -- the checkpoint feed (hot while enabled) -------------------------------

    def note(
        self,
        site: str,
        n: int,
        frontier: int | None,
        visited: int | None,
        depth: int | None,
    ) -> None:
        states = getattr(self._local, "states", None)
        if states is None:
            states = self._local.states = {}
        state = states.get(site)
        now = time.monotonic()
        if state is None:
            state = states[site] = _SiteState(site, now)
            with self._lock:
                self._states.append(state)
        state.steps += n
        if frontier is not None:
            state.frontier = frontier
            if frontier > state.peak_frontier:
                state.peak_frontier = frontier
        if visited is not None:
            state.visited = visited
        if depth is not None:
            state.depth = depth
            if depth > state.peak_depth:
                state.peak_depth = depth
        if now - state.last_emit_t >= self.interval_s:
            self._emit(state, now)

    def note_trip(self, trip: Any) -> None:
        """Emit the final, trip-consistent progress event for a site."""
        event = {
            "event": "progress",
            "v": PROGRESS_SCHEMA_VERSION,
            "site": trip.site,
            "steps": trip.steps,
            "elapsed_s": round(trip.elapsed_s, 6),
            "tripped": trip.limit,
            "t_wall": round(time.time(), 6),
        }
        if trip.frontier is not None:
            event["frontier"] = trip.frontier
        if getattr(trip, "injected", False):
            event["injected"] = True
        _tracer.emit_event(event)
        states = getattr(self._local, "states", None)
        if states is None:
            states = self._local.states = {}
        state = states.get(trip.site)
        if state is None:
            # A trip can fire at the very first checkpoint of a site
            # (e.g. an injected fault with at=1) before note() ever ran.
            state = states[trip.site] = _SiteState(trip.site, time.monotonic())
            with self._lock:
                self._states.append(state)
        state.tripped = trip.limit
        state.events += 1
        # Keep the summary consistent with the trip detail too.
        state.steps = trip.steps
        if trip.frontier is not None:
            state.frontier = trip.frontier
            if trip.frontier > state.peak_frontier:
                state.peak_frontier = trip.frontier

    def _emit(self, state: _SiteState, now: float) -> None:
        elapsed = now - state.t0
        dt = now - state.last_emit_t
        rate = (state.steps - state.last_emit_steps) / dt if dt > 0 else 0.0
        state.last_emit_t = now
        state.last_emit_steps = state.steps
        state.events += 1
        if _tracer.ENABLED:
            event: dict[str, Any] = {
                "event": "progress",
                "v": PROGRESS_SCHEMA_VERSION,
                "site": state.site,
                "steps": state.steps,
                "elapsed_s": round(elapsed, 6),
                "steps_per_s": round(rate, 3),
                "t_wall": round(time.time(), 6),
            }
            if state.frontier is not None:
                event["frontier"] = state.frontier
                event["peak_frontier"] = state.peak_frontier
            if state.visited is not None:
                event["visited"] = state.visited
            if state.depth is not None:
                event["depth"] = state.depth
            headroom = _headroom(_governor.current_guard())
            if headroom is not None:
                event["headroom"] = headroom
            _tracer.emit_event(event)
        if metrics.is_enabled():
            metrics.gauge("progress.steps", site=state.site).set(state.steps)
            if state.frontier is not None:
                metrics.gauge("progress.frontier", site=state.site).set(
                    state.frontier
                )
            metrics.gauge("progress.steps_per_s", site=state.site).set(
                round(rate, 3)
            )
            # Long-running worker jobs surface mid-job: refresh the spool
            # snapshot (throttled; atomic replace) so the parent's merge
            # loop and `serve top` see live numbers before the job ends.
            metrics.maybe_write_snapshot()

    # -- introspection ---------------------------------------------------------

    def summary(self) -> dict[str, dict[str, Any]]:
        """Per-site final numbers, folded across threads."""
        out: dict[str, dict[str, Any]] = {}
        with self._lock:
            states = list(self._states)
        for state in states:
            row = out.setdefault(
                state.site,
                {
                    "steps": 0,
                    "final_frontier": None,
                    "peak_frontier": 0,
                    "peak_depth": 0,
                    "events": 0,
                },
            )
            row["steps"] += state.steps
            if state.frontier is not None:
                row["final_frontier"] = state.frontier
            row["peak_frontier"] = max(row["peak_frontier"], state.peak_frontier)
            row["peak_depth"] = max(row["peak_depth"], state.peak_depth)
            row["events"] += state.events
            if state.tripped is not None:
                row["tripped"] = state.tripped
            if state.visited is not None:
                row["visited"] = state.visited
        return out


#: The active tracker (``None`` while disabled); mirror of
#: ``_governor._PROGRESS`` — mutate only through :func:`configure`.
_TRACKER: ProgressTracker | None = None


def is_enabled() -> bool:
    """Whether checkpoint progress telemetry is being collected."""
    return _TRACKER is not None


def configure(
    enabled: bool | None = None, interval_s: float | None = None
) -> None:
    """Enable/disable progress telemetry, optionally setting the interval.

    Enabling installs a fresh :class:`ProgressTracker` as the guard
    module's ``_PROGRESS`` hook; disabling uninstalls it, restoring the
    checkpoint's one-global-read disabled path.
    """
    global _TRACKER
    if interval_s is not None and interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if enabled is None and interval_s is not None and _TRACKER is not None:
        _TRACKER.interval_s = interval_s
        return
    if enabled:
        _TRACKER = ProgressTracker(
            interval_s if interval_s is not None else DEFAULT_INTERVAL_S
        )
        _governor._PROGRESS = _TRACKER
    elif enabled is not None:
        _TRACKER = None
        _governor._PROGRESS = None


def reset() -> None:
    """Drop accumulated state (keeps enablement and interval).

    Called after a pool fork — the child inherits the parent's tracker
    but the parent owns those numbers — and by benchmarks between
    sections.
    """
    if _TRACKER is not None:
        configure(enabled=True, interval_s=_TRACKER.interval_s)


def summary() -> dict[str, dict[str, Any]]:
    """Per-site progress totals (empty when disabled)."""
    return _TRACKER.summary() if _TRACKER is not None else {}


def bench_context() -> dict[str, Any] | None:
    """The ``_meta.progress`` stamp for benchmark emitters.

    ``None`` while disabled (so plain regeneration runs leave the
    BENCH_*.json files byte-stable); otherwise the final frontier size,
    peak frontier/depth, step and event totals across all sites, plus
    the sampling profiler's sample count when one is running.
    """
    if _TRACKER is None:
        return None
    sites = summary()
    context: dict[str, Any] = {
        "steps": sum(row["steps"] for row in sites.values()),
        "events": sum(row["events"] for row in sites.values()),
        "final_frontier": max(
            (row["final_frontier"] or 0 for row in sites.values()), default=0
        ),
        "peak_frontier": max(
            (row["peak_frontier"] for row in sites.values()), default=0
        ),
        "peak_depth": max(
            (row["peak_depth"] for row in sites.values()), default=0
        ),
        "sites": sites,
    }
    from repro.obs import profile

    if profile.is_enabled():
        context["profile_samples"] = profile.sample_count()
    return context


def iter_progress_events(
    events: "Mapping[str, Any] | Any",
) -> list[dict[str, Any]]:
    """Filter an event iterable down to ``progress`` events."""
    return [e for e in events if e.get("event") == "progress"]


# Zero-code activation: REPRO_PROGRESS=1 (or an interval in seconds).
_env = os.environ.get(PROGRESS_ENV_VAR, "").strip().lower()
if _env and _env not in ("0", "false", "no", "off"):
    try:
        configure(enabled=True, interval_s=float(_env))
    except ValueError:
        configure(enabled=True)
