"""repro.obs — structured tracing and answer provenance.

The paper's results are complexity *bounds*; what makes the reproduction
inspectable is seeing the work each decision procedure does — vectors
explored, SAT decisions, rewriting candidates — not just its verdict.
This package provides the observability layer the whole decision stack is
instrumented with:

* :func:`span` — hierarchical spans recording wall-clock, arbitrary
  attributes, and ``STATS`` counter *deltas* scoped to the span via
  snapshot-diff (nested spans compose; nothing is reset).  One JSONL
  event per span is emitted to the configured sink.
* :func:`traced` — the decorator every top-level procedure runs under;
  it opens a span and attaches a :class:`Provenance` (span id, elapsed
  seconds, counter deltas) to returned
  :class:`~repro.analysis.verdict.Answer` objects.
* :func:`configure` / ``REPRO_TRACE=trace.jsonl`` — sink selection.
  With no sink configured, tracing is **off** and every instrumented
  path degrades to a single flag check (the compiled AFA/PL hot path
  keeps its speedup).
* ``python -m repro.obs report trace.jsonl`` — aggregates a trace into a
  per-procedure table: call counts, total/max time, dominant counters,
  and the slowest span with its attributes.

Quickstart::

    from repro import obs
    obs.configure(path="trace.jsonl", mode="w")

    from repro.analysis import nonempty_pl
    from repro.workloads.scaling import pl_counter_sws

    answer = nonempty_pl(pl_counter_sws(4))
    print(answer.provenance.elapsed_s, answer.provenance.counters)

See ``docs/OBSERVABILITY.md`` for the trace schema and the span-name →
paper-theorem map.
"""

from repro._stats import STATS, Stats, StatsDelta, stats_delta
from repro.obs._tracer import (
    NOOP_SPAN,
    Provenance,
    Span,
    TRACE_ENV_VAR,
    TRACE_SCHEMA_VERSION,
    configure,
    current_span,
    emit_event,
    is_enabled,
    iter_events,
    reemit,
    span,
    traced,
)

# Imported for their side effects too: REPRO_PROGRESS / REPRO_PROFILE
# environment activation happens here, mirroring REPRO_TRACE above.
# Both are import-light and cost nothing while disabled.
from repro.obs import profile, progress  # noqa: E402  (after _tracer)

__all__ = [
    "NOOP_SPAN",
    "Provenance",
    "Span",
    "STATS",
    "Stats",
    "StatsDelta",
    "TRACE_ENV_VAR",
    "TRACE_SCHEMA_VERSION",
    "configure",
    "current_span",
    "emit_event",
    "is_enabled",
    "iter_events",
    "profile",
    "progress",
    "reemit",
    "span",
    "stats_delta",
    "traced",
]
