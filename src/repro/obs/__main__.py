"""``python -m repro.obs`` — trace inspection CLI (see report.py)."""

from repro.obs.report import main

raise SystemExit(main())
