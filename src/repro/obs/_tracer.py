"""The hierarchical span tracer behind :mod:`repro.obs`.

Design constraints, in order:

1. **Zero overhead when disabled.**  Every decision procedure in the
   library calls :func:`span` or runs under :func:`traced`; with tracing
   off those paths must cost one global flag check — the compiled AFA/PL
   hot path keeps its measured speedup.  :func:`span` returns a shared
   no-op context manager, and :func:`traced` wrappers fall straight
   through to the wrapped function.

2. **Correct counter attribution.**  ``repro._stats.STATS`` is a
   process-wide singleton; a span snapshots it on enter and diffs on exit
   (via :class:`repro._stats.StatsDelta`), so nested and back-to-back
   spans each see exactly the work done within their own extent — a
   child's counters are included in its parent's, and siblings never
   clobber one another.  Nothing is ever reset.

3. **One JSONL event per span**, emitted at span *exit* (children before
   parents; the tree is reconstructed from ``parent_id``).  The sink is a
   file path (``REPRO_TRACE=trace.jsonl`` or ``configure(path=...)``) or
   any writable stream (``configure(stream=...)``).

This module is import-light on purpose: it depends only on the stdlib and
:mod:`repro._stats`, so the lowest layers (``repro.logic.pl``,
``repro.automata.afa``, ``repro.logic.sat``) can trace without import
cycles.  Provenance attachment is duck-typed — any frozen-dataclass
result with a ``provenance`` field (i.e. :class:`repro.analysis.verdict.Answer`)
gains one, without this module importing :mod:`repro.analysis`.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, IO, Iterator, Mapping

from repro._stats import STATS

TRACE_ENV_VAR = "REPRO_TRACE"

#: Trace format version, stamped into every event.
TRACE_SCHEMA_VERSION = 1

#: Hot-path flag.  Read directly (``_tracer.ENABLED``) by the traced
#: wrappers; mutate only through :func:`configure`.
ENABLED = False

_stream: IO[str] | None = None
_stream_owned = False
_path: str | None = None
_emit_lock = threading.Lock()
_span_ids = itertools.count(1)
_local = threading.local()


@dataclass(frozen=True)
class Provenance:
    """Where an :class:`~repro.analysis.verdict.Answer` came from.

    Attached to answers returned by :func:`traced` procedures while
    tracing is enabled: the span that produced the answer, its wall-clock
    extent, and the ``STATS`` counter deltas scoped to that span — so a
    benchmark or test can assert on the *work* a verdict cost, not just
    the verdict.
    """

    span_id: int
    name: str
    elapsed_s: float
    counters: Mapping[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "counters": dict(self.counters),
        }


def _stack() -> list["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class Span:
    """One timed, counter-scoped, attributed unit of work.

    Use through :func:`span`; supports ``set(key=value, ...)`` to add
    attributes mid-flight.  On exit the span emits its JSONL event even
    when the body raised (``status: "error"`` with the exception repr) —
    partial work is still visible in the trace.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "attrs",
        "status",
        "error",
        "elapsed_s",
        "counters",
        "_t_wall",
        "_t0",
        "_before",
    )

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.span_id = next(_span_ids)
        self.attrs = attrs
        self.parent_id: int | None = None
        self.depth = 0
        self.status = "ok"
        self.error: str | None = None
        self.elapsed_s = 0.0
        self.counters: dict[str, int] = {}

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        stack.append(self)
        self._t_wall = time.time()
        self._before = STATS.snapshot()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed_s = time.perf_counter() - self._t0
        after = STATS.snapshot()
        self.counters = {
            k: after[k] - v for k, v in self._before.items() if after[k] != v
        }
        if exc is not None:
            trip = getattr(exc, "trip", None)
            if getattr(trip, "limit", None) is not None:
                # A guard trip is a bounded procedure saying UNKNOWN, not a
                # failure: record the verdict and the tripped limit instead
                # of a bare error event (duck-typed to avoid importing
                # repro.guard from this import-light module).
                self.attrs.setdefault("verdict", "unknown")
                self.attrs["tripped"] = trip.limit
            else:
                self.status = "error"
                self.error = f"{type(exc).__name__}: {exc}"
        stack = _stack()
        # Unwind to this span even if an inner span leaked (defensive; a
        # leaked child would otherwise misparent every later sibling).
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        _emit(self._event())

    def provenance(self) -> Provenance:
        """The span's summary as a :class:`Provenance` (exit-time use)."""
        return Provenance(
            span_id=self.span_id,
            name=self.name,
            elapsed_s=self.elapsed_s,
            counters=dict(self.counters),
        )

    def _event(self) -> dict[str, Any]:
        event: dict[str, Any] = {
            "event": "span",
            "v": TRACE_SCHEMA_VERSION,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "t_wall": round(self._t_wall, 6),
            "elapsed_s": round(self.elapsed_s, 9),
            "status": self.status,
        }
        if self.error is not None:
            event["error"] = self.error
        if self.attrs:
            event["attrs"] = self.attrs
        if self.counters:
            event["counters"] = self.counters
        return event


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs: Any) -> Span | _NoopSpan:
    """Open a span named ``name`` with initial attributes.

    With tracing disabled this returns a shared no-op object — the whole
    call costs one flag check and an empty ``with`` — so instrumented hot
    paths stay hot.
    """
    if not ENABLED:
        return NOOP_SPAN
    return Span(name, attrs)


def current_span() -> Span | None:
    """The innermost open span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def is_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return ENABLED


def configure(
    path: str | None = None,
    stream: IO[str] | None = None,
    enabled: bool | None = None,
    mode: str = "a",
) -> None:
    """(Re)configure the trace sink.

    * ``configure(path="trace.jsonl")`` — enable, append JSONL events to
      the file (``mode="w"`` truncates first).
    * ``configure(stream=buf)`` — enable, write to any ``.write()``-able.
    * ``configure(enabled=False)`` — disable and close an owned file.
    * ``configure(enabled=True)`` — re-enable the previous sink (or the
      ``REPRO_TRACE`` path if none was ever set).

    The ``REPRO_TRACE`` environment variable is the zero-code entry
    point: importing :mod:`repro.obs` with it set is equivalent to
    ``configure(path=os.environ["REPRO_TRACE"])``.
    """
    global ENABLED, _stream, _stream_owned, _path
    if path is not None and stream is not None:
        raise ValueError("configure() takes a path or a stream, not both")
    with _emit_lock:
        if path is not None:
            _close_owned()
            _path = path
            _stream = open(path, mode, encoding="utf-8")
            _stream_owned = True
            ENABLED = True
        elif stream is not None:
            _close_owned()
            _path = None
            _stream = stream
            _stream_owned = False
            ENABLED = True
        if enabled is not None:
            if enabled and _stream is None:
                env_path = os.environ.get(TRACE_ENV_VAR)
                if env_path:
                    _path = env_path
                    _stream = open(env_path, mode, encoding="utf-8")
                    _stream_owned = True
                else:
                    raise ValueError(
                        "configure(enabled=True) needs a sink: pass path= or "
                        f"stream=, or set {TRACE_ENV_VAR}"
                    )
            ENABLED = bool(enabled)
            if not ENABLED:
                _close_owned()
                _stream = None
                _path = None


def _close_owned() -> None:
    global _stream, _stream_owned
    if _stream is not None and _stream_owned:
        try:
            _stream.close()
        except OSError:  # pragma: no cover - best-effort close
            pass
    _stream = None
    _stream_owned = False


def _emit(event: dict[str, Any]) -> None:
    stream = _stream
    if stream is None:
        return
    line = json.dumps(event, sort_keys=True, default=repr)
    with _emit_lock:
        stream.write(line + "\n")
        flush = getattr(stream, "flush", None)
        if flush is not None:
            try:
                flush()
            except OSError:  # pragma: no cover - sink went away
                pass


# -- the traced decorator -----------------------------------------------------


def _subject_attrs(args: tuple) -> dict[str, Any]:
    """Best-effort subject naming: collect ``.name`` of named arguments.

    Services, mediators, queries and RPQs all carry a ``name``; recording
    them makes a trace line self-describing ("nonempty_pl on counter4")
    without per-call-site instrumentation.
    """
    names = [
        a.name
        for a in args
        if isinstance(getattr(a, "name", None), str) and a.name
    ]
    if not names:
        return {}
    if len(names) == 1:
        return {"subject": names[0]}
    return {"subjects": names}


def _note_result(sp: Span, result: Any) -> None:
    """Record a compact result summary as span attributes."""
    noted = False
    verdict = getattr(result, "verdict", None)
    if verdict is not None and hasattr(verdict, "value"):
        sp.set(verdict=verdict.value)
        noted = True
    trip = getattr(result, "trip", None)
    if getattr(trip, "limit", None) is not None:
        sp.set(tripped=trip.limit)
        noted = True
    exists = getattr(result, "exists", None)
    if isinstance(exists, bool):
        sp.set(exists=exists)
        tried = getattr(result, "candidates_tried", None)
        if isinstance(tried, int):
            sp.set(candidates_tried=tried)
        noted = True
    if noted:
        return
    if result is None or isinstance(result, (bool, int, float, str)):
        sp.set(result=result)


def _attach_provenance(result: Any, sp: Span) -> Any:
    """Duck-typed provenance attachment for Answer-like frozen dataclasses."""
    if (
        dataclasses.is_dataclass(result)
        and not isinstance(result, type)
        and hasattr(result, "provenance")
        and getattr(result, "verdict", None) is not None
    ):
        return dataclasses.replace(result, provenance=sp.provenance())
    return result


def traced(
    name: str | None = None,
    kind: str | None = None,
    provenance: bool = True,
) -> Callable:
    """Decorator: run the function under a root-or-nested span.

    With tracing disabled the wrapper is a single flag check followed by
    the original call.  With it enabled, the span records wall-clock,
    scoped counter deltas, subject names and a result summary; when the
    function returns an :class:`~repro.analysis.verdict.Answer` (any
    frozen dataclass with ``verdict`` and ``provenance`` fields) and
    ``provenance=True``, the returned answer carries a
    :class:`Provenance` for the span.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name if name is not None else fn.__name__
        static: dict[str, Any] = {"kind": kind} if kind else {}

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not ENABLED:
                return fn(*args, **kwargs)
            attrs = dict(static)
            attrs.update(_subject_attrs(args))
            with Span(span_name, attrs) as sp:
                result = fn(*args, **kwargs)
                _note_result(sp, result)
            if provenance:
                return _attach_provenance(result, sp)
            return result

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__module__ = fn.__module__
        wrapper.__wrapped__ = fn
        wrapper.__dict__.update(fn.__dict__)
        return wrapper

    return decorate


def reemit(event: Mapping[str, Any], **extra_attrs: Any) -> None:
    """Re-emit an already-formed span event into the current sink.

    Used by the serving layer to merge traces produced in worker
    processes into the parent's trace: each worker writes its own JSONL
    file (separate processes cannot share one sink), and the parent
    replays the events here after the batch completes.  ``extra_attrs``
    are merged into the event's ``attrs`` (e.g. ``worker=<pid>``), so
    merged events remain distinguishable from locally produced ones.
    No-op while tracing is disabled.
    """
    if not ENABLED:
        return
    event = dict(event)
    if extra_attrs:
        attrs = dict(event.get("attrs") or {})
        attrs.update(extra_attrs)
        event["attrs"] = attrs
    _emit(event)


def emit_event(event: Mapping[str, Any]) -> None:
    """Emit a raw (non-span) event into the current sink.

    The structured side channel for :mod:`repro.obs.progress` and
    friends: the event rides the same JSONL stream as span events, under
    the same lock, so ``progress``/``heartbeat`` records interleave with
    spans in wall-clock order.  No-op while tracing is disabled —
    callers can skip building the event dict entirely by checking
    :data:`ENABLED` first.
    """
    if not ENABLED:
        return
    _emit(dict(event))


def iter_events(
    path: str,
    strict: bool = True,
    on_skip: Callable[[str], None] | None = None,
) -> Iterator[dict[str, Any]]:
    """Parse a JSONL trace file, skipping blank lines.

    ``strict=True`` (the default) raises :class:`ValueError` on the
    first malformed line.  ``strict=False`` skips malformed lines —
    reporting each through ``on_skip`` — which is what the CLI consumers
    want for traces truncated mid-line by killed pool workers.  A file
    that yields *no* valid events but had malformed lines still raises,
    so a garbage input is an error rather than a silently empty report.
    """
    good = 0
    bad = 0
    first_bad: str | None = None
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                message = f"{path}:{line_number}: malformed trace line: {error}"
                if strict:
                    raise ValueError(message) from error
                bad += 1
                if first_bad is None:
                    first_bad = message
                if on_skip is not None:
                    on_skip(message)
                continue
            good += 1
            yield event
    if bad and not good:
        raise ValueError(
            f"{path}: no valid trace events "
            f"({bad} malformed line(s); first: {first_bad})"
        )


# Zero-code activation: REPRO_TRACE=trace.jsonl enables tracing at import.
_env_path = os.environ.get(TRACE_ENV_VAR)
if _env_path:
    configure(path=_env_path, mode="a")
