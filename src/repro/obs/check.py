"""Threshold/SLO checking: the CI perf tripwire.

``python -m repro.obs check --baseline benchmarks/baselines.json
[--metrics SNAP.jsonl] [--trace TRACE.jsonl ...]`` evaluates a metrics
snapshot and/or trace files against a committed baseline and exits
nonzero on any violation — giving CI a regression gate fed by the same
artifacts `serve top` and `obs report` consume.

Baseline format (JSON)::

    {
      "_meta": {...},
      "checks": [
        {"name": "pl-p99",             # shown in the verdict line
         "source": "metrics",          # or "trace"
         "select": "serve.job.latency_s{procedure=nonempty_pl}",
         "stat": "p99",                # histogram/gauge/counter stat
         "max": 2.0},                  # and/or "min"
        {"name": "cache-hit-rate",
         "source": "metrics",
         "stat": "cache_hit_rate",     # derived: no select needed
         "min": 0.4},
        {"name": "no-span-errors",
         "source": "trace",
         "select": "nonempty_pl",      # span name
         "stat": "errors", "max": 0}
      ]
    }

Metrics stats: ``value`` (counter total over labeled variants, or
gauge), ``count``, ``sum``, ``mean``, ``p50``, ``p90``, ``p99``,
``min_observed``, ``max_observed`` (histograms), and the derived
``cache_hit_rate``.  Trace stats (per span name): ``count``,
``errors``, ``total_s``, ``mean_s``, ``max_s``.

Bounds are *absolute* numbers committed to the repository.  Wall-clock
bounds therefore carry generous headroom (an order of magnitude over
the benchmarked laptop numbers) — the tripwire catches the 10×
regressions that matter, not machine jitter.  A check whose input was
not provided fails unless marked ``"optional": true``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro import metrics
from repro.obs.report import SpanAggregate, aggregate
from repro.obs._tracer import iter_events


@dataclass
class CheckResult:
    """One evaluated baseline check."""

    name: str
    ok: bool
    detail: str

    def line(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return f"{status}  {self.name}: {self.detail}"


def _metrics_stat(
    snap: Mapping[str, Any], select: str | None, stat: str
) -> float | None:
    counters = snap.get("counters") or {}
    gauges = snap.get("gauges") or {}
    histograms = snap.get("histograms") or {}
    if stat == "cache_hit_rate":
        return metrics.cache_hit_rate(counters)
    if select is None:
        return None
    if select in histograms:
        readout = metrics.histogram_readout(histograms[select])
        mapped = {
            "count": readout["count"],
            "sum": readout["sum"],
            "mean": readout["mean"],
            "p50": readout["p50"],
            "p90": readout["p90"],
            "p99": readout["p99"],
            "min_observed": readout["min"],
            "max_observed": readout["max"],
        }
        return mapped.get(stat)
    if stat == "value":
        if select in gauges:
            return gauges[select]
        total = metrics.counter_total(counters, metrics.decode_key(select)[0])
        if select in counters:
            return counters[select]
        return total if total else None
    return None


def _trace_stat(
    aggregates: Mapping[str, SpanAggregate], select: str | None, stat: str
) -> float | None:
    if select is None or select not in aggregates:
        return None
    row = aggregates[select]
    mapped = {
        "count": row.count,
        "errors": row.errors,
        "total_s": row.total_s,
        "mean_s": row.total_s / row.count if row.count else None,
        "max_s": row.max_s,
    }
    return mapped.get(stat)


def evaluate(
    baseline: Mapping[str, Any],
    snap: Mapping[str, Any] | None = None,
    trace_aggregates: Mapping[str, SpanAggregate] | None = None,
) -> list[CheckResult]:
    """Run every baseline check against the provided inputs."""
    results: list[CheckResult] = []
    for check in baseline.get("checks", ()):
        name = check.get("name", "<unnamed>")
        source = check.get("source", "metrics")
        select = check.get("select")
        stat = check.get("stat", "value")
        optional = bool(check.get("optional"))
        if source == "metrics":
            provided, value = snap is not None, None
            if snap is not None:
                value = _metrics_stat(snap, select, stat)
        elif source == "trace":
            provided, value = trace_aggregates is not None, None
            if trace_aggregates is not None:
                value = _trace_stat(trace_aggregates, select, stat)
        else:
            results.append(CheckResult(name, False, f"unknown source {source!r}"))
            continue
        if not provided:
            if optional:
                results.append(
                    CheckResult(name, True, f"skipped: no {source} input (optional)")
                )
            else:
                results.append(
                    CheckResult(name, False, f"no {source} input provided")
                )
            continue
        if value is None:
            detail = f"{source} has no {stat!r} for {select!r}"
            results.append(CheckResult(name, optional, detail))
            continue
        lo = check.get("min")
        hi = check.get("max")
        ok = True
        bounds = []
        if lo is not None:
            bounds.append(f">= {lo}")
            ok = ok and value >= lo
        if hi is not None:
            bounds.append(f"<= {hi}")
            ok = ok and value <= hi
        detail = (
            f"{stat}={value:.6g} (want {' and '.join(bounds) or 'anything'})"
        )
        results.append(CheckResult(name, ok, detail))
    return results


def run_check(
    baseline_path: str,
    metrics_path: str | None = None,
    trace_paths: Sequence[str] = (),
) -> tuple[int, str]:
    """Evaluate a baseline file; returns (exit code, report text)."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    snap = metrics.last_snapshot(metrics_path) if metrics_path else None
    if metrics_path and snap is None:
        return 1, f"error: {metrics_path}: no metrics snapshot found\n"
    aggregates = None
    if trace_paths:
        def events():
            for path in trace_paths:
                yield from iter_events(path)

        aggregates = aggregate(events())
    results = evaluate(baseline, snap, aggregates)
    lines = [result.line() for result in results]
    failed = [result for result in results if not result.ok]
    lines.append("")
    lines.append(
        f"{len(results) - len(failed)}/{len(results)} checks passed"
        + (f"; {len(failed)} FAILED" if failed else "")
    )
    lines.append("")
    return (1 if failed else 0), "\n".join(lines)
