"""Threshold/SLO checking: the CI perf tripwire.

``python -m repro.obs check --baseline benchmarks/baselines.json
[--metrics SNAP.jsonl] [--trace TRACE.jsonl ...]`` evaluates a metrics
snapshot and/or trace files against a committed baseline and exits
nonzero on any violation — giving CI a regression gate fed by the same
artifacts `serve top` and `obs report` consume.

Baseline format (JSON)::

    {
      "_meta": {...},
      "checks": [
        {"name": "pl-p99",             # shown in the verdict line
         "source": "metrics",          # or "trace"
         "select": "serve.job.latency_s{procedure=nonempty_pl}",
         "stat": "p99",                # histogram/gauge/counter stat
         "max": 2.0},                  # and/or "min"
        {"name": "cache-hit-rate",
         "source": "metrics",
         "stat": "cache_hit_rate",     # derived: no select needed
         "min": 0.4},
        {"name": "no-span-errors",
         "source": "trace",
         "select": "nonempty_pl",      # span name
         "stat": "errors", "max": 0}
      ]
    }

Metrics stats: ``value`` (counter total over labeled variants, or
gauge), ``count``, ``sum``, ``mean``, ``p50``, ``p90``, ``p99``,
``min_observed``, ``max_observed`` (histograms), and the derived
``cache_hit_rate``.  Trace stats (per span name): ``count``,
``errors``, ``total_s``, ``mean_s``, ``max_s``.

Bounds are *absolute* numbers committed to the repository.  Wall-clock
bounds therefore carry generous headroom (an order of magnitude over
the benchmarked laptop numbers) — the tripwire catches the 10×
regressions that matter, not machine jitter.  A check whose input was
not provided fails unless marked ``"optional": true``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro import metrics
from repro.obs.report import SpanAggregate, aggregate
from repro.obs._tracer import iter_events


@dataclass
class CheckResult:
    """One evaluated baseline check."""

    name: str
    ok: bool
    detail: str

    def line(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return f"{status}  {self.name}: {self.detail}"


def _metrics_stat(
    snap: Mapping[str, Any], select: str | None, stat: str
) -> float | None:
    counters = snap.get("counters") or {}
    gauges = snap.get("gauges") or {}
    histograms = snap.get("histograms") or {}
    if stat == "cache_hit_rate":
        return metrics.cache_hit_rate(counters)
    if select is None:
        return None
    if select in histograms:
        readout = metrics.histogram_readout(histograms[select])
        mapped = {
            "count": readout["count"],
            "sum": readout["sum"],
            "mean": readout["mean"],
            "p50": readout["p50"],
            "p90": readout["p90"],
            "p99": readout["p99"],
            "min_observed": readout["min"],
            "max_observed": readout["max"],
        }
        return mapped.get(stat)
    if stat == "value":
        if select in gauges:
            return gauges[select]
        total = metrics.counter_total(counters, metrics.decode_key(select)[0])
        if select in counters:
            return counters[select]
        return total if total else None
    return None


def _trace_stat(
    aggregates: Mapping[str, SpanAggregate], select: str | None, stat: str
) -> float | None:
    if select is None or select not in aggregates:
        return None
    row = aggregates[select]
    mapped = {
        "count": row.count,
        "errors": row.errors,
        "total_s": row.total_s,
        "mean_s": row.total_s / row.count if row.count else None,
        "max_s": row.max_s,
    }
    return mapped.get(stat)


def evaluate(
    baseline: Mapping[str, Any],
    snap: Mapping[str, Any] | None = None,
    trace_aggregates: Mapping[str, SpanAggregate] | None = None,
) -> list[CheckResult]:
    """Run every baseline check against the provided inputs."""
    results: list[CheckResult] = []
    for check in baseline.get("checks", ()):
        name = check.get("name", "<unnamed>")
        source = check.get("source", "metrics")
        select = check.get("select")
        stat = check.get("stat", "value")
        optional = bool(check.get("optional"))
        if source == "metrics":
            provided, value = snap is not None, None
            if snap is not None:
                value = _metrics_stat(snap, select, stat)
        elif source == "trace":
            provided, value = trace_aggregates is not None, None
            if trace_aggregates is not None:
                value = _trace_stat(trace_aggregates, select, stat)
        else:
            results.append(CheckResult(name, False, f"unknown source {source!r}"))
            continue
        if not provided:
            if optional:
                results.append(
                    CheckResult(name, True, f"skipped: no {source} input (optional)")
                )
            else:
                results.append(
                    CheckResult(name, False, f"no {source} input provided")
                )
            continue
        if value is None:
            detail = f"{source} has no {stat!r} for {select!r}"
            results.append(CheckResult(name, optional, detail))
            continue
        lo = check.get("min")
        hi = check.get("max")
        ok = True
        bounds = []
        if lo is not None:
            bounds.append(f">= {lo}")
            ok = ok and value >= lo
        if hi is not None:
            bounds.append(f"<= {hi}")
            ok = ok and value <= hi
        detail = (
            f"{stat}={value:.6g} (want {' and '.join(bounds) or 'anything'})"
        )
        results.append(CheckResult(name, ok, detail))
    return results


def _load_inputs(
    baseline_path: str,
    metrics_path: str | None,
    trace_paths: Sequence[str],
    strict: bool = True,
    on_skip: Any = None,
) -> tuple[dict, Mapping[str, Any] | None, Mapping[str, SpanAggregate] | None]:
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    snap = metrics.last_snapshot(metrics_path) if metrics_path else None
    aggregates = None
    if trace_paths:
        def events():
            for path in trace_paths:
                yield from iter_events(path, strict=strict, on_skip=on_skip)

        aggregates = aggregate(events())
    return baseline, snap, aggregates


def run_check(
    baseline_path: str,
    metrics_path: str | None = None,
    trace_paths: Sequence[str] = (),
    strict: bool = True,
    on_skip: Any = None,
) -> tuple[int, str]:
    """Evaluate a baseline file; returns (exit code, report text)."""
    baseline, snap, aggregates = _load_inputs(
        baseline_path, metrics_path, trace_paths, strict=strict, on_skip=on_skip
    )
    if metrics_path and snap is None:
        return 1, f"error: {metrics_path}: no metrics snapshot found\n"
    results = evaluate(baseline, snap, aggregates)
    lines = [result.line() for result in results]
    failed = [result for result in results if not result.ok]
    lines.append("")
    lines.append(
        f"{len(results) - len(failed)}/{len(results)} checks passed"
        + (f"; {len(failed)} FAILED" if failed else "")
    )
    lines.append("")
    return (1 if failed else 0), "\n".join(lines)


#: Default multiplier between a freshly observed value and the bound
#: ``--update`` writes: max bounds get ``value * headroom``, min bounds
#: ``value / headroom`` — an order-of-magnitude tripwire by default.
DEFAULT_HEADROOM = 10.0


def _round_bound(value: float) -> float | int:
    """3 significant figures; integers stay integers."""
    rounded = float(f"{value:.3g}")
    return int(rounded) if rounded == int(rounded) else rounded


def update_baseline(
    baseline_path: str,
    metrics_path: str | None = None,
    trace_paths: Sequence[str] = (),
    headroom: float = DEFAULT_HEADROOM,
    strict: bool = True,
    on_skip: Any = None,
) -> tuple[int, str]:
    """Regenerate a baseline's bounds from fresh inputs (``check --update``).

    For every check whose input was provided and whose stat is
    observable, the bounds are rewritten around the observed value:
    ``max`` becomes ``value * headroom`` and ``min`` becomes
    ``value / headroom`` (3 significant figures; a bound of 0 around an
    observed 0 stays 0).  A per-check ``"headroom"`` key overrides the
    multiplier; checks without fresh input are left untouched and
    reported as skipped.  Returns (exit code, report text); exit is
    nonzero only when nothing could be updated.
    """
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1.0")
    baseline, snap, aggregates = _load_inputs(
        baseline_path, metrics_path, trace_paths, strict=strict, on_skip=on_skip
    )
    lines: list[str] = []
    updated = 0
    for check in baseline.get("checks", ()):
        name = check.get("name", "<unnamed>")
        source = check.get("source", "metrics")
        select = check.get("select")
        stat = check.get("stat", "value")
        if source == "metrics":
            value = _metrics_stat(snap, select, stat) if snap is not None else None
        elif source == "trace":
            value = (
                _trace_stat(aggregates, select, stat)
                if aggregates is not None
                else None
            )
        else:
            lines.append(f"SKIP  {name}: unknown source {source!r}")
            continue
        if value is None:
            lines.append(f"SKIP  {name}: no fresh {source} value for {select!r}")
            continue
        factor = float(check.get("headroom", headroom))
        changes = []
        if "max" in check:
            new_hi = _round_bound(value * factor)
            changes.append(f"max {check['max']} -> {new_hi}")
            check["max"] = new_hi
        if "min" in check:
            new_lo = _round_bound(value / factor)
            changes.append(f"min {check['min']} -> {new_lo}")
            check["min"] = new_lo
        updated += 1
        lines.append(
            f"SET   {name}: observed {stat}={value:.6g}; "
            + ("; ".join(changes) or "no bounds to update")
        )
    if updated:
        meta = baseline.setdefault("_meta", {})
        meta["updated_by"] = (
            "python -m repro.obs check --update"
            + (f" --metrics {metrics_path}" if metrics_path else "")
            + "".join(f" --trace {p}" for p in trace_paths)
        )
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
    lines.append("")
    lines.append(
        f"{updated}/{len(baseline.get('checks', ()))} checks re-baselined"
        + ("" if updated else " — nothing written")
    )
    lines.append("")
    return (0 if updated else 1), "\n".join(lines)
