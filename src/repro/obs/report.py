"""Aggregate a JSONL trace into a per-procedure report.

CLI::

    python -m repro.obs report trace.jsonl [--sort total|count|max] [--limit N]

For every span name the report shows how often it ran, total/mean/max
wall-clock, error count, the dominant counters (largest summed deltas),
and the slowest single span with its attributes — enough to see where an
exponential blowup actually landed without opening the raw trace.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs._tracer import iter_events

#: How many counters count as "dominant" in the table.
DOMINANT_COUNTERS = 3


@dataclass
class SpanAggregate:
    """Accumulated statistics for one span name."""

    name: str
    count: int = 0
    errors: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    trips: dict[str, int] = field(default_factory=dict)
    slowest: dict[str, Any] | None = None

    def add(self, event: dict[str, Any]) -> None:
        elapsed = float(event.get("elapsed_s", 0.0))
        self.count += 1
        self.total_s += elapsed
        if event.get("status") == "error":
            self.errors += 1
        tripped = (event.get("attrs") or {}).get("tripped")
        if tripped is not None:
            self.trips[str(tripped)] = self.trips.get(str(tripped), 0) + 1
        for counter, delta in (event.get("counters") or {}).items():
            self.counters[counter] = self.counters.get(counter, 0) + delta
        if elapsed >= self.max_s:
            self.max_s = elapsed
            self.slowest = event

    def dominant_counters(self, limit: int = DOMINANT_COUNTERS) -> list[tuple[str, int]]:
        """The ``limit`` counters with the largest summed deltas."""
        ranked = sorted(self.counters.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]


def aggregate(events: Iterable[dict[str, Any]]) -> dict[str, SpanAggregate]:
    """Fold span events into per-name aggregates (non-span events skipped)."""
    out: dict[str, SpanAggregate] = {}
    for event in events:
        if event.get("event") != "span":
            continue
        name = str(event.get("name", "<unnamed>"))
        out.setdefault(name, SpanAggregate(name)).add(event)
    return out


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds * 1e6:7.1f}µs"


def _format_counters(pairs: Sequence[tuple[str, int]]) -> str:
    return ", ".join(f"{name}={value}" for name, value in pairs) or "-"


def render(
    aggregates: dict[str, SpanAggregate],
    sort: str = "total",
    limit: int | None = None,
) -> str:
    """The report as printable text."""
    key = {
        "total": lambda a: -a.total_s,
        "count": lambda a: -a.count,
        "max": lambda a: -a.max_s,
        "name": lambda a: a.name,
    }[sort]
    rows = sorted(aggregates.values(), key=key)
    if limit is not None:
        rows = rows[:limit]
    if not rows:
        return "trace contains no span events\n"
    name_width = max(len(r.name) for r in rows)
    name_width = max(name_width, len("span"))
    lines = [
        f"{'span':<{name_width}}  {'count':>5}  {'err':>3}  {'total':>9}  "
        f"{'mean':>9}  {'max':>9}  dominant counters"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        mean = row.total_s / row.count if row.count else 0.0
        lines.append(
            f"{row.name:<{name_width}}  {row.count:>5}  {row.errors:>3}  "
            f"{_format_seconds(row.total_s):>9}  {_format_seconds(mean):>9}  "
            f"{_format_seconds(row.max_s):>9}  "
            f"{_format_counters(row.dominant_counters())}"
        )
    tripped_rows = [r for r in rows if r.trips]
    if tripped_rows:
        lines.append("")
        lines.append("guard trips:")
        for row in tripped_rows:
            breakdown = ", ".join(
                f"{limit}={count}" for limit, count in sorted(row.trips.items())
            )
            lines.append(f"  {row.name:<{name_width}}  {breakdown}")
    lines.append("")
    lines.append("slowest spans:")
    for row in rows:
        slowest = row.slowest or {}
        attrs = slowest.get("attrs") or {}
        attr_text = (
            " ".join(f"{k}={v}" for k, v in sorted(attrs.items())) or "-"
        )
        lines.append(
            f"  {row.name:<{name_width}}  span_id={slowest.get('span_id', '?')}  "
            f"{_format_seconds(row.max_s).strip():>9}  {attr_text}"
        )
    lines.append("")
    return "\n".join(lines)


def report(path: str, sort: str = "total", limit: int | None = None) -> str:
    """Aggregate the trace file at ``path`` and return the rendered table."""
    return render(aggregate(iter_events(path)), sort=sort, limit=limit)


def render_guard_map() -> str:
    """The registry of guarded checkpoint sites as printable text.

    One row per span usable with :mod:`repro.guard.inject`; ``raising``
    marks sites whose procedures raise :class:`repro.guard.GuardTrip`
    instead of returning an UNKNOWN answer.
    """
    # Checkpoint sites register at import time; pull in every guarded layer
    # so a fresh CLI process sees the full map.
    import repro.analysis.containment  # noqa: F401
    import repro.analysis.equivalence  # noqa: F401
    import repro.analysis.nonemptiness  # noqa: F401
    import repro.analysis.validation  # noqa: F401
    import repro.automata.regular_rewriting  # noqa: F401
    import repro.logic.rewriting  # noqa: F401
    import repro.logic.sat  # noqa: F401
    import repro.mediator.bounded  # noqa: F401
    import repro.mediator.rewriting_based  # noqa: F401
    import repro.mediator.synthesis  # noqa: F401
    from repro.guard import iter_guarded_spans

    spans = list(iter_guarded_spans())
    if not spans:
        return "no guarded spans registered\n"
    site_width = max(max(len(s.site) for s in spans), len("site"))
    lines = [f"{'site':<{site_width}}  raising  where / covers"]
    lines.append("-" * len(lines[0]))
    for span in spans:
        flag = "yes" if span.raising_only else "no"
        lines.append(f"{span.site:<{site_width}}  {flag:<7}  {span.where}")
        lines.append(f"{'':<{site_width}}  {'':<7}  {span.covers}")
    lines.append("")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro.obs JSONL traces.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report_parser = subparsers.add_parser(
        "report", help="aggregate a trace into a per-procedure table"
    )
    report_parser.add_argument("trace", help="path to a JSONL trace file")
    report_parser.add_argument(
        "--sort",
        choices=("total", "count", "max", "name"),
        default="total",
        help="row ordering (default: total time, descending)",
    )
    report_parser.add_argument(
        "--limit", type=int, default=None, help="show at most N rows"
    )
    subparsers.add_parser(
        "guard",
        help="list guarded checkpoint sites (fault-injection span names)",
    )
    args = parser.parse_args(argv)
    if args.command == "report":
        try:
            text = report(args.trace, sort=args.sort, limit=args.limit)
        except (OSError, ValueError) as error:
            parser.exit(1, f"error: {error}\n")
        print(text, end="")
        return 0
    if args.command == "guard":
        print(render_guard_map(), end="")
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
