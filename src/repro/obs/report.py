"""Aggregate JSONL traces into a per-procedure report.

CLI::

    python -m repro.obs report TRACE... [--sort total|count|max] [--limit N]

``TRACE`` arguments may be files or globs (quoted, so the shell does
not eat them) — per-worker spool files aggregate without hand-merging::

    python -m repro.obs report 'spool/worker-*.jsonl'

For every span name the report shows how often it ran, total/mean/max
wall-clock, error count, the dominant counters (largest summed deltas),
and the slowest single span with its attributes — enough to see where an
exponential blowup actually landed without opening the raw trace.
Root-span serving/artifact counter deltas additionally roll up into a
``serve:`` section (cache hits/misses, jobs executed/deduped, artifact
traffic), and guard trips get their own breakdown.

The sibling subcommands live in their own modules: ``check``
(:mod:`repro.obs.check`, the CI perf tripwire) and ``critical-path``
(:mod:`repro.obs.critical_path`, wall-clock attribution).
"""

from __future__ import annotations

import argparse
import glob as _glob
import sys as _sys
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs._tracer import iter_events

#: How many counters count as "dominant" in the table.
DOMINANT_COUNTERS = 3

#: STATS counters rolled up into the report's ``serve:`` section.
SERVE_COUNTER_PREFIXES = ("serve_cache_", "serve_jobs_", "artifact_")


@dataclass
class SpanAggregate:
    """Accumulated statistics for one span name."""

    name: str
    count: int = 0
    errors: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    trips: dict[str, int] = field(default_factory=dict)
    slowest: dict[str, Any] | None = None

    def add(self, event: dict[str, Any]) -> None:
        elapsed = float(event.get("elapsed_s", 0.0))
        self.count += 1
        self.total_s += elapsed
        if event.get("status") == "error":
            self.errors += 1
        tripped = (event.get("attrs") or {}).get("tripped")
        if tripped is not None:
            self.trips[str(tripped)] = self.trips.get(str(tripped), 0) + 1
        for counter, delta in (event.get("counters") or {}).items():
            self.counters[counter] = self.counters.get(counter, 0) + delta
        if elapsed >= self.max_s:
            self.max_s = elapsed
            self.slowest = event

    def dominant_counters(self, limit: int = DOMINANT_COUNTERS) -> list[tuple[str, int]]:
        """The ``limit`` counters with the largest summed deltas."""
        ranked = sorted(self.counters.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]


def aggregate(events: Iterable[dict[str, Any]]) -> dict[str, SpanAggregate]:
    """Fold span events into per-name aggregates (non-span events skipped)."""
    return fold_events(events)[0]


def fold_events(
    events: Iterable[dict[str, Any]],
) -> tuple[dict[str, SpanAggregate], dict[str, int]]:
    """One pass over the events: per-name aggregates + serve counter totals.

    The serve totals sum :data:`SERVE_COUNTER_PREFIXES` counters over
    *root* spans only — a child's deltas are already included in its
    parent's, so summing every span would double-count nested work.
    """
    out: dict[str, SpanAggregate] = {}
    serve_totals: dict[str, int] = {}
    for event in events:
        if event.get("event") != "span":
            continue
        name = str(event.get("name", "<unnamed>"))
        out.setdefault(name, SpanAggregate(name)).add(event)
        if event.get("parent_id") is None:
            for counter, delta in (event.get("counters") or {}).items():
                if counter.startswith(SERVE_COUNTER_PREFIXES):
                    serve_totals[counter] = serve_totals.get(counter, 0) + delta
    return out, serve_totals


def expand_traces(patterns: Sequence[str]) -> list[str]:
    """Resolve trace arguments: each is a literal path or a glob pattern."""
    paths: list[str] = []
    for pattern in patterns:
        matches = sorted(_glob.glob(pattern))
        if matches:
            paths.extend(matches)
        elif _glob.has_magic(pattern):
            raise ValueError(f"{pattern}: no trace files match")
        else:
            paths.append(pattern)  # literal path; open() reports the error
    return paths


def iter_all_events(
    paths: Sequence[str],
    strict: bool = True,
    on_skip: Any = None,
) -> Iterable[dict[str, Any]]:
    """Chain :func:`iter_events` over several trace files."""
    for path in paths:
        yield from iter_events(path, strict=strict, on_skip=on_skip)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds * 1e6:7.1f}µs"


def _format_counters(pairs: Sequence[tuple[str, int]]) -> str:
    return ", ".join(f"{name}={value}" for name, value in pairs) or "-"


def render(
    aggregates: dict[str, SpanAggregate],
    sort: str = "total",
    limit: int | None = None,
    serve_totals: dict[str, int] | None = None,
) -> str:
    """The report as printable text."""
    key = {
        "total": lambda a: -a.total_s,
        "count": lambda a: -a.count,
        "max": lambda a: -a.max_s,
        "name": lambda a: a.name,
    }[sort]
    rows = sorted(aggregates.values(), key=key)
    if limit is not None:
        rows = rows[:limit]
    if not rows:
        return "trace contains no span events\n"
    name_width = max(len(r.name) for r in rows)
    name_width = max(name_width, len("span"))
    lines = [
        f"{'span':<{name_width}}  {'count':>5}  {'err':>3}  {'total':>9}  "
        f"{'mean':>9}  {'max':>9}  dominant counters"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        mean = row.total_s / row.count if row.count else 0.0
        lines.append(
            f"{row.name:<{name_width}}  {row.count:>5}  {row.errors:>3}  "
            f"{_format_seconds(row.total_s):>9}  {_format_seconds(mean):>9}  "
            f"{_format_seconds(row.max_s):>9}  "
            f"{_format_counters(row.dominant_counters())}"
        )
    tripped_rows = [r for r in rows if r.trips]
    if tripped_rows:
        lines.append("")
        lines.append("guard trips:")
        for row in tripped_rows:
            breakdown = ", ".join(
                f"{limit}={count}" for limit, count in sorted(row.trips.items())
            )
            lines.append(f"  {row.name:<{name_width}}  {breakdown}")
    if serve_totals:
        lines.append("")
        lines.append("serve:")
        counter_width = max(len(name) for name in serve_totals)
        for name in sorted(serve_totals):
            lines.append(f"  {name:<{counter_width}}  {serve_totals[name]}")
        hits = serve_totals.get("serve_cache_hits", 0)
        misses = serve_totals.get("serve_cache_misses", 0)
        if hits + misses:
            lines.append(
                f"  {'cache hit rate':<{counter_width}}  "
                f"{hits / (hits + misses):.1%}"
            )
    lines.append("")
    lines.append("slowest spans:")
    for row in rows:
        slowest = row.slowest or {}
        attrs = slowest.get("attrs") or {}
        attr_text = (
            " ".join(f"{k}={v}" for k, v in sorted(attrs.items())) or "-"
        )
        lines.append(
            f"  {row.name:<{name_width}}  span_id={slowest.get('span_id', '?')}  "
            f"{_format_seconds(row.max_s).strip():>9}  {attr_text}"
        )
    lines.append("")
    return "\n".join(lines)


def report(
    path: str | Sequence[str],
    sort: str = "total",
    limit: int | None = None,
    strict: bool = True,
    on_skip: Any = None,
) -> str:
    """Aggregate trace file(s)/glob(s) and return the rendered table.

    ``strict=False`` degrades gracefully on truncated/partial JSONL
    lines (killed workers): malformed lines are skipped — reported
    through ``on_skip`` — instead of aborting the whole report.
    """
    patterns = [path] if isinstance(path, str) else list(path)
    paths = expand_traces(patterns)
    aggregates, serve_totals = fold_events(
        iter_all_events(paths, strict=strict, on_skip=on_skip)
    )
    return render(aggregates, sort=sort, limit=limit, serve_totals=serve_totals)


def render_guard_map() -> str:
    """The registry of guarded checkpoint sites as printable text.

    One row per span usable with :mod:`repro.guard.inject`; ``raising``
    marks sites whose procedures raise :class:`repro.guard.GuardTrip`
    instead of returning an UNKNOWN answer.
    """
    # Checkpoint sites register at import time; pull in every guarded layer
    # so a fresh CLI process sees the full map.
    import repro.analysis.containment  # noqa: F401
    import repro.analysis.equivalence  # noqa: F401
    import repro.analysis.nonemptiness  # noqa: F401
    import repro.analysis.validation  # noqa: F401
    import repro.automata.regular_rewriting  # noqa: F401
    import repro.delta.engine  # noqa: F401
    import repro.logic.rewriting  # noqa: F401
    import repro.logic.sat  # noqa: F401
    import repro.mediator.bounded  # noqa: F401
    import repro.mediator.rewriting_based  # noqa: F401
    import repro.mediator.synthesis  # noqa: F401
    from repro.guard import iter_guarded_spans

    spans = list(iter_guarded_spans())
    if not spans:
        return "no guarded spans registered\n"
    site_width = max(max(len(s.site) for s in spans), len("site"))
    lines = [f"{'site':<{site_width}}  raising  where / covers"]
    lines.append("-" * len(lines[0]))
    for span in spans:
        flag = "yes" if span.raising_only else "no"
        lines.append(f"{span.site:<{site_width}}  {flag:<7}  {span.where}")
        lines.append(f"{'':<{site_width}}  {'':<7}  {span.covers}")
    lines.append("")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro.obs JSONL traces.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report_parser = subparsers.add_parser(
        "report", help="aggregate trace(s) into a per-procedure table"
    )
    report_parser.add_argument(
        "trace", nargs="+", help="JSONL trace file(s) or glob pattern(s)"
    )
    report_parser.add_argument(
        "--sort",
        choices=("total", "count", "max", "name"),
        default="total",
        help="row ordering (default: total time, descending)",
    )
    report_parser.add_argument(
        "--limit", type=int, default=None, help="show at most N rows"
    )
    subparsers.add_parser(
        "guard",
        help="list guarded checkpoint sites (fault-injection span names)",
    )
    path_parser = subparsers.add_parser(
        "critical-path",
        help="dominant span chain with self-time attribution",
    )
    path_parser.add_argument(
        "trace", nargs="+", help="JSONL trace file(s) or glob pattern(s)"
    )
    path_parser.add_argument(
        "--limit", type=int, default=10, help="self-time ranking rows"
    )
    check_parser = subparsers.add_parser(
        "check",
        help="evaluate metrics/trace artifacts against a committed baseline",
    )
    check_parser.add_argument(
        "--baseline",
        default="benchmarks/baselines.json",
        help="baseline JSON (default: benchmarks/baselines.json)",
    )
    check_parser.add_argument(
        "--metrics", default=None, help="metrics snapshot JSONL to evaluate"
    )
    check_parser.add_argument(
        "--trace",
        nargs="*",
        default=(),
        help="trace file(s)/glob(s) to evaluate",
    )
    check_parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline's bounds around freshly observed values",
    )
    check_parser.add_argument(
        "--headroom",
        type=float,
        default=None,
        help="bound multiplier for --update (default: 10x)",
    )
    explain_parser = subparsers.add_parser(
        "explain",
        help="ranked 'why was this solve slow' diagnosis over a trace",
    )
    explain_parser.add_argument(
        "trace", nargs="+", help="JSONL trace file(s) or glob pattern(s)"
    )
    explain_parser.add_argument(
        "--limit", type=int, default=None, help="show at most N findings"
    )
    flame_parser = subparsers.add_parser(
        "flame",
        help="render collapsed-stack profiles as a self-contained HTML flamegraph",
    )
    flame_parser.add_argument(
        "profile",
        nargs="+",
        help="collapsed-stack file(s) or glob pattern(s) (merged)",
    )
    flame_parser.add_argument(
        "-o",
        "--out",
        default=None,
        help="output HTML path (default: first input with .html suffix)",
    )
    flame_parser.add_argument(
        "--title", default=None, help="flamegraph title"
    )
    args = parser.parse_args(argv)
    warn = lambda message: print(f"warning: {message}", file=_sys.stderr)  # noqa: E731
    if args.command == "report":
        try:
            text = report(
                args.trace,
                sort=args.sort,
                limit=args.limit,
                strict=False,
                on_skip=warn,
            )
        except (OSError, ValueError) as error:
            parser.exit(1, f"error: {error}\n")
        print(text, end="")
        return 0
    if args.command == "guard":
        print(render_guard_map(), end="")
        return 0
    if args.command == "critical-path":
        from repro.obs.critical_path import critical_path

        try:
            text = critical_path(
                expand_traces(args.trace),
                limit=args.limit,
                strict=False,
                on_skip=warn,
            )
        except (OSError, ValueError) as error:
            parser.exit(1, f"error: {error}\n")
        print(text, end="")
        return 0
    if args.command == "check":
        from repro.obs.check import DEFAULT_HEADROOM, run_check, update_baseline

        try:
            if args.update:
                code, text = update_baseline(
                    args.baseline,
                    metrics_path=args.metrics,
                    trace_paths=expand_traces(args.trace),
                    headroom=(
                        args.headroom
                        if args.headroom is not None
                        else DEFAULT_HEADROOM
                    ),
                    strict=False,
                    on_skip=warn,
                )
            else:
                code, text = run_check(
                    args.baseline,
                    metrics_path=args.metrics,
                    trace_paths=expand_traces(args.trace),
                    strict=False,
                    on_skip=warn,
                )
        except (OSError, ValueError) as error:
            parser.exit(1, f"error: {error}\n")
        print(text, end="")
        return code
    if args.command == "explain":
        from repro.obs.explain import explain

        try:
            text = explain(
                expand_traces(args.trace), limit=args.limit, on_skip=warn
            )
        except (OSError, ValueError) as error:
            parser.exit(1, f"error: {error}\n")
        print(text, end="")
        return 0
    if args.command == "flame":
        from repro.obs import profile as _profile

        try:
            paths = expand_traces(args.profile)
            tables = []
            for path in paths:
                with open(path, encoding="utf-8") as handle:
                    tables.append(_profile.parse_collapsed(handle.read(), path))
            samples = _profile.merge_samples(tables)
        except (OSError, ValueError) as error:
            parser.exit(1, f"error: {error}\n")
        if not samples:
            parser.exit(1, "error: profile(s) contain no samples\n")
        out = args.out
        if out is None:
            stem = paths[0]
            if stem.endswith(".collapsed"):
                stem = stem[: -len(".collapsed")]
            out = f"{stem}.html"
        title = args.title or f"repro flamegraph — {', '.join(paths)}"
        html = _profile.flamegraph_html(samples, title=title)
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(html)
        total = sum(samples.values())
        print(f"{out}: {total} samples, {len(samples)} unique stacks")
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
