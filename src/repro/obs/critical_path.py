"""Critical-path profiling over a JSONL span trace.

``python -m repro.obs critical-path trace.jsonl`` answers "where did the
wall-clock go" from any existing trace artifact: it rebuilds the span
tree from ``parent_id`` links, attributes each span its *self time*
(elapsed minus the elapsed of its direct children), then walks the
dominant chain — from the slowest root, repeatedly into the slowest
child — reporting every hop with its self-time share.

Merged worker events (re-emitted through :func:`repro.obs.reemit`) keep
their worker-local span ids, so ids can collide across processes; nodes
are therefore keyed by ``(worker_pid, span_id)`` with the parent link
resolved within the same process only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs._tracer import iter_events

#: Key type: ("<source file>:<worker pid>" scope, span id) — both scope
#: parts empty for spans the parent process emitted from a single file.
NodeKey = tuple[str, int]


@dataclass
class SpanNode:
    """One span event plus its tree links and self-time attribution."""

    key: NodeKey
    name: str
    elapsed_s: float
    attrs: dict[str, Any]
    parent: NodeKey | None
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def children_s(self) -> float:
        return sum(child.elapsed_s for child in self.children)

    @property
    def self_s(self) -> float:
        """Elapsed not accounted for by direct children (clamped >= 0)."""
        return max(0.0, self.elapsed_s - self.children_s)


def build_tree(events: Iterable[dict[str, Any]]) -> list[SpanNode]:
    """Parse span events into root nodes (children attached, any order)."""
    nodes: dict[NodeKey, SpanNode] = {}
    for event in events:
        if event.get("event") != "span":
            continue
        span_id = event.get("span_id")
        if not isinstance(span_id, int):
            continue
        attrs = dict(event.get("attrs") or {})
        # Span ids are process-local (and restart per trace file): scope
        # the key by merged-worker pid and source file alike.
        process = f"{event.get('_source', '')}:{attrs.get('worker_pid', '')}"
        parent_id = event.get("parent_id")
        nodes[(process, span_id)] = SpanNode(
            key=(process, span_id),
            name=str(event.get("name", "<unnamed>")),
            elapsed_s=float(event.get("elapsed_s", 0.0)),
            attrs=attrs,
            parent=(process, parent_id) if isinstance(parent_id, int) else None,
        )
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent) if node.parent is not None else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def dominant_chain(roots: list[SpanNode]) -> list[SpanNode]:
    """From the slowest root, descend into the slowest child at each hop."""
    if not roots:
        return []
    node = max(roots, key=lambda n: n.elapsed_s)
    chain = [node]
    while node.children:
        node = max(node.children, key=lambda n: n.elapsed_s)
        chain.append(node)
    return chain


def self_time_by_name(roots: list[SpanNode]) -> dict[str, tuple[float, int]]:
    """Aggregate ``name -> (total self seconds, span count)`` over the forest."""
    totals: dict[str, tuple[float, int]] = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        total, count = totals.get(node.name, (0.0, 0))
        totals[node.name] = (total + node.self_s, count + 1)
        stack.extend(node.children)
    return totals


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds * 1e6:7.1f}µs"


def render(roots: list[SpanNode], limit: int = 10) -> str:
    """The critical-path report as printable text."""
    if not roots:
        return "trace contains no span events\n"
    chain = dominant_chain(roots)
    total = chain[0].elapsed_s or 1e-12
    lines = [
        f"dominant chain (root {chain[0].name!r}, "
        f"{_fmt_seconds(chain[0].elapsed_s).strip()} wall-clock):",
        "",
    ]
    name_width = max(len(node.name) for node in chain)
    for depth, node in enumerate(chain):
        marker = "└─ " * bool(depth)
        share = node.elapsed_s / total
        self_share = node.self_s / total
        worker = node.key[0].rpartition(":")[2]
        worker_text = f"  worker={worker}" if worker else ""
        lines.append(
            f"{'  ' * depth}{marker}{node.name:<{name_width}}  "
            f"total {_fmt_seconds(node.elapsed_s).strip():>9} ({share:5.1%})  "
            f"self {_fmt_seconds(node.self_s).strip():>9} ({self_share:5.1%})"
            f"{worker_text}"
        )
    lines.append("")
    lines.append(f"self time by span name (top {limit}):")
    totals = self_time_by_name(roots)
    grand = sum(t for t, _ in totals.values()) or 1e-12
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][0])[:limit]
    width = max(len(name) for name, _ in ranked)
    for name, (self_s, count) in ranked:
        lines.append(
            f"  {name:<{width}}  {_fmt_seconds(self_s):>9}  "
            f"({self_s / grand:5.1%})  n={count}"
        )
    lines.append("")
    return "\n".join(lines)


def critical_path(
    paths: list[str],
    limit: int = 10,
    strict: bool = True,
    on_skip: Any = None,
) -> str:
    """Render the critical-path report for one or more trace files.

    ``strict=False`` skips malformed lines (reporting them through
    ``on_skip``) instead of raising — what the CLI wants for traces
    truncated by killed workers.
    """

    def events() -> Iterable[dict[str, Any]]:
        for index, path in enumerate(paths):
            for event in iter_events(path, strict=strict, on_skip=on_skip):
                if len(paths) > 1:
                    event = dict(event)
                    event["_source"] = index
                yield event

    return render(build_tree(events()), limit=limit)
