"""``python -m repro.obs explain`` — why was this solve slow?

Fuses everything a trace records into one ranked diagnosis:

* **Spans** (:mod:`repro.obs.report` aggregates) — which procedures ran,
  how often, errors;
* **Critical path** (:mod:`repro.obs.critical_path`) — the dominant
  root-to-leaf chain and per-name self-time, naming the dominant phase;
* **Progress curves** (``progress`` events from
  :mod:`repro.obs.progress`) — frontier growth and steps/sec trend per
  checkpoint site, the evidence that distinguishes "the frontier
  exploded" from "per-step cost collapsed";
* **Guard trips** — which limit fired and, from the final progress
  event's ``headroom``, how close the *other* limits were (a deadline
  trip with 95% of the step budget left means slow steps, not many).

The output is a ranked list of findings, most indicative first, each a
single sentence with its numbers — the report a human would write after
opening the raw trace, produced mechanically.  Parsing is lenient:
truncated lines from killed workers are warned about and skipped.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.obs.critical_path import SpanNode, build_tree, dominant_chain, self_time_by_name
from repro.obs.report import SpanAggregate, fold_events


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}µs"


def _fmt_rate(rate: float) -> str:
    if rate >= 1e6:
        return f"{rate / 1e6:.2f}M/s"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k/s"
    return f"{rate:.1f}/s"


class SiteCurve:
    """The progress-event series for one checkpoint site."""

    def __init__(self, site: str) -> None:
        self.site = site
        self.events: list[dict[str, Any]] = []

    def add(self, event: dict[str, Any]) -> None:
        self.events.append(event)

    @property
    def last(self) -> dict[str, Any]:
        return self.events[-1]

    @property
    def steps(self) -> int:
        return int(self.last.get("steps", 0))

    @property
    def tripped(self) -> str | None:
        for event in reversed(self.events):
            if event.get("tripped"):
                return str(event["tripped"])
        return None

    def frontier_trend(self) -> tuple[int, int] | None:
        """(first, last) reported frontier sizes, or ``None``."""
        sizes = [e["frontier"] for e in self.events if "frontier" in e]
        if len(sizes) < 2:
            return None
        return int(sizes[0]), int(sizes[-1])

    def rate_trend(self) -> tuple[float, float] | None:
        """(early, late) steps/sec — mean of first vs last half."""
        rates = [
            float(e["steps_per_s"])
            for e in self.events
            if e.get("steps_per_s")
        ]
        if len(rates) < 2:
            return None
        half = max(1, len(rates) // 2)
        early = sum(rates[:half]) / half
        late = sum(rates[half:]) / len(rates[half:])
        return early, late

    def headroom(self) -> Mapping[str, float] | None:
        for event in reversed(self.events):
            if isinstance(event.get("headroom"), Mapping):
                return event["headroom"]
        return None


def split_events(
    events: Iterable[dict[str, Any]],
) -> tuple[list[dict[str, Any]], dict[str, SiteCurve]]:
    """Partition a trace into span events and per-site progress curves."""
    spans: list[dict[str, Any]] = []
    curves: dict[str, SiteCurve] = {}
    for event in events:
        kind = event.get("event")
        if kind == "span":
            spans.append(event)
        elif kind == "progress":
            site = str(event.get("site", "<unknown>"))
            curves.setdefault(site, SiteCurve(site)).add(event)
    return spans, curves


def findings(
    spans: list[dict[str, Any]],
    curves: dict[str, SiteCurve],
    aggregates: dict[str, SpanAggregate],
    roots: list[SpanNode],
) -> list[str]:
    """The ranked single-sentence findings."""
    out: list[str] = []
    chain = dominant_chain(roots)
    wall = chain[0].elapsed_s if chain else 0.0

    # 1. The dominant phase: largest self-time across the forest.
    totals = self_time_by_name(roots)
    grand = sum(t for t, _ in totals.values())
    if totals and grand > 0:
        name, (self_s, count) = max(totals.items(), key=lambda kv: kv[1][0])
        out.append(
            f"dominant phase: {name!r} holds {self_s / grand:.0%} of "
            f"self-time ({_fmt_seconds(self_s)} across {count} span(s))"
        )

    # 2. Guard trips, with cross-limit headroom from the progress stream.
    tripped = [
        (agg.name, limit, count)
        for agg in aggregates.values()
        for limit, count in sorted(agg.trips.items())
    ]
    for name, limit, count in tripped:
        sentence = f"guard tripped: {name!r} hit the {limit} limit {count}×"
        for curve in curves.values():
            if curve.tripped != limit:
                continue
            headroom = curve.headroom()
            if headroom:
                others = ", ".join(
                    f"{k} {v:.0%} left"
                    for k, v in sorted(headroom.items())
                    if k != limit
                )
                if others:
                    sentence += f" (at the trip: {others})"
            sentence += (
                f" — last progress at {curve.site!r}: "
                f"{curve.steps} steps"
            )
            frontier = curve.last.get("frontier")
            if frontier is not None:
                sentence += f", frontier {frontier}"
            break
        out.append(sentence)

    # 3. Frontier growth per site: the antichain-pruning evidence.
    for curve in sorted(curves.values(), key=lambda c: -c.steps):
        trend = curve.frontier_trend()
        if trend is None:
            continue
        first, last = trend
        peak = max(
            int(e.get("peak_frontier", e.get("frontier", 0)))
            for e in curve.events
        )
        if last >= max(4, 2 * max(first, 1)):
            out.append(
                f"frontier growth: {curve.site!r} grew {first} → {last} "
                f"(peak {peak}) over {curve.steps} steps — the search is "
                f"widening, pruning would pay here"
            )
        elif peak:
            out.append(
                f"frontier stable: {curve.site!r} peaked at {peak} "
                f"(now {last}) over {curve.steps} steps"
            )

    # 4. Throughput decay: per-step cost rising as the search deepens.
    for curve in sorted(curves.values(), key=lambda c: -c.steps):
        trend = curve.rate_trend()
        if trend is None:
            continue
        early, late = trend
        if early > 0 and late < 0.5 * early:
            out.append(
                f"throughput decay: {curve.site!r} slowed "
                f"{_fmt_rate(early)} → {_fmt_rate(late)} — per-step cost "
                f"is rising (larger vectors, denser frontier)"
            )

    # 5. Span errors are always worth surfacing.
    for agg in sorted(aggregates.values(), key=lambda a: -a.errors):
        if agg.errors:
            out.append(
                f"errors: {agg.name!r} raised in {agg.errors}/{agg.count} "
                f"span(s)"
            )

    # 6. Critical-path shape: where along the chain the time pools.
    if len(chain) > 1 and wall > 0:
        hot = max(chain, key=lambda n: n.self_s)
        out.append(
            f"critical path: {' → '.join(n.name for n in chain)}; "
            f"{hot.name!r} holds {_fmt_seconds(hot.self_s)} of its own "
            f"({hot.self_s / wall:.0%} of the {_fmt_seconds(wall)} root)"
        )
    return out


def render(
    spans: list[dict[str, Any]],
    curves: dict[str, SiteCurve],
    aggregates: dict[str, SpanAggregate],
    roots: list[SpanNode],
    limit: int | None = None,
) -> str:
    """The explain report as printable text."""
    if not spans and not curves:
        return "trace contains no span or progress events\n"
    lines = findings(spans, curves, aggregates, roots)
    if limit is not None:
        lines = lines[:limit]
    if not lines:
        lines = ["nothing stands out: no dominant phase, trips, or trends"]
    numbered = [f"{i}. {line}" for i, line in enumerate(lines, 1)]
    progress_note = (
        f"{sum(len(c.events) for c in curves.values())} progress event(s) "
        f"across {len(curves)} site(s)"
        if curves
        else "no progress events (enable with REPRO_PROGRESS=1)"
    )
    header = (
        f"explain: {len(spans)} span(s), {progress_note}",
        "",
    )
    return "\n".join([*header, *numbered, ""])


def explain(
    paths: Sequence[str],
    limit: int | None = None,
    on_skip: Any = None,
) -> str:
    """Render the diagnosis for one or more trace files (lenient parse)."""
    from repro.obs._tracer import iter_events

    events: list[dict[str, Any]] = []
    for index, path in enumerate(paths):
        for event in iter_events(path, strict=False, on_skip=on_skip):
            if len(paths) > 1:
                # Span ids restart per trace file; scope them like
                # critical_path does so the tree builds correctly.
                event = dict(event)
                event["_source"] = index
            events.append(event)
    spans, curves = split_events(events)
    aggregates, _ = fold_events(spans)
    roots = build_tree(spans)
    return render(spans, curves, aggregates, roots, limit=limit)
