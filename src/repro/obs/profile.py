"""Thread-based sampling wall-clock profiler (dependency-free).

The span layer says *which procedure* was slow; this module says *which
frames*.  A daemon thread wakes ``hz`` times per second (default
:data:`DEFAULT_HZ` — prime, so it does not beat against periodic work),
grabs ``sys._current_frames()``, and folds every thread's stack into a
collapsed-stack table::

    repro.analysis.nonemptiness.nonempty_pl;repro.automata.afa.AFA.search_witness;... 412

which is the standard flamegraph input format — one line per unique
root-to-leaf stack, space, sample count.  ``python -m repro.obs flame
profile.collapsed -o flame.html`` renders a self-contained HTML
flamegraph (no external assets, no JS dependencies).

Usage::

    from repro.obs import profile
    with profile.profiling("solve.collapsed", hz=200):
        nonempty_pl(big_instance)

or process-wide via ``REPRO_PROFILE=profile.collapsed`` (rate override:
``REPRO_PROFILE_HZ=200``), mirroring ``REPRO_TRACE``/``REPRO_METRICS``;
the collapsed file is written at exit and on :func:`write_collapsed`.

Pool workers follow the per-pid spool idiom: the parent hands each
worker ``profile-<pid>.collapsed`` under a spool directory, workers
rewrite their file (atomic replace) after every job, and
:meth:`repro.serve.pool.WorkerPool.merge_profiles` folds the spools into
the parent's table **replace-wise per source** — spool files are
cumulative, so repeated merges never double-count, exactly like the
metrics spools.

Cost: disabled, nothing runs and nothing is imported at call sites.
Enabled, the sampler costs one stack walk per thread per tick — at the
default ~97 Hz that is well under 1% on the compiled AFA loops (the CI
smoke enforces the disabled-mode bound, see ``scripts/check_all.sh``).
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
import time
from typing import Any, Iterable, Mapping

PROFILE_ENV_VAR = "REPRO_PROFILE"
PROFILE_HZ_ENV_VAR = "REPRO_PROFILE_HZ"

#: Default sampling rate; prime, to avoid aliasing with periodic work.
DEFAULT_HZ = 97

#: Frames from these modules are the sampler/exporter machinery itself;
#: stacks consisting only of them are dropped.
_SELF_MODULES = ("repro.obs.profile",)

__all__ = [
    "DEFAULT_HZ",
    "PROFILE_ENV_VAR",
    "PROFILE_HZ_ENV_VAR",
    "Sampler",
    "absorb_spool",
    "configure",
    "flamegraph_html",
    "is_enabled",
    "merged_samples",
    "parse_collapsed",
    "profiling",
    "render_collapsed",
    "sample_count",
    "write_collapsed",
]


def _frame_name(frame: Any) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    qualname = getattr(code, "co_qualname", code.co_name)
    return f"{module}.{qualname}"


def _stack_of(frame: Any) -> tuple[str, ...] | None:
    """Root-first frame names for one thread's current frame."""
    names: list[str] = []
    while frame is not None:
        names.append(_frame_name(frame))
        frame = frame.f_back
    names.reverse()
    if not names:
        return None
    # A thread that is only running the profiler (or sitting in the
    # threading wait loop at the bottom of a worker) is noise.
    if all(name.startswith(_SELF_MODULES) for name in names):
        return None
    return tuple(names)


class Sampler:
    """The sampling thread plus its collapsed-stack accumulator."""

    def __init__(self, hz: float = DEFAULT_HZ) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = hz
        self.samples: dict[tuple[str, ...], int] = {}
        self.ticks = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "Sampler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profile", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_id = threading.get_ident()
        while not self._stop.wait(interval):
            frames = sys._current_frames()
            self.ticks += 1
            with self._lock:
                for thread_id, frame in frames.items():
                    if thread_id == own_id:
                        continue
                    stack = _stack_of(frame)
                    if stack is None:
                        continue
                    self.samples[stack] = self.samples.get(stack, 0) + 1

    # -- accessors -------------------------------------------------------------

    def snapshot(self) -> dict[tuple[str, ...], int]:
        with self._lock:
            return dict(self.samples)

    def sample_count(self) -> int:
        with self._lock:
            return sum(self.samples.values())


# -- collapsed-stack I/O -------------------------------------------------------


def render_collapsed(samples: Mapping[tuple[str, ...], int]) -> str:
    """Samples as collapsed-stack text (sorted for stable diffs)."""
    lines = [
        ";".join(stack) + f" {count}"
        for stack, count in sorted(samples.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str, path: str = "<collapsed>") -> dict[tuple[str, ...], int]:
    """Parse collapsed-stack text back into a samples table.

    Lenient about blank lines; a line without a trailing integer count
    is an error naming the offending line.
    """
    samples: dict[tuple[str, ...], int] = {}
    for line_number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text or not count_text.isdigit():
            raise ValueError(f"{path}:{line_number}: malformed collapsed line")
        stack = tuple(stack_text.split(";"))
        samples[stack] = samples.get(stack, 0) + int(count_text)
    return samples


def merge_samples(
    tables: Iterable[Mapping[tuple[str, ...], int]],
) -> dict[tuple[str, ...], int]:
    """Fold several samples tables into one."""
    out: dict[tuple[str, ...], int] = {}
    for table in tables:
        for stack, count in table.items():
            out[stack] = out.get(stack, 0) + count
    return out


# -- module-level state (configure / env / spool) ------------------------------

_sampler: Sampler | None = None
_path: str | None = None
#: Worker spool tables, replace-wise per source pid (cumulative files).
_sources: dict[str, dict[tuple[str, ...], int]] = {}
_atexit_registered = False


def is_enabled() -> bool:
    """Whether a process-wide sampler is running."""
    return _sampler is not None and _sampler.running


def configure(
    path: str | None = None,
    hz: float | None = None,
    enabled: bool | None = None,
) -> None:
    """(Re)configure the process-wide sampler.

    ``configure(path="p.collapsed")`` starts sampling and arranges an
    exit-time write; ``configure(enabled=False)`` stops the sampler
    (samples are kept until the next enable, so a final
    :func:`write_collapsed` still sees them).
    """
    global _sampler, _path, _atexit_registered
    if path is not None:
        _path = path
        if enabled is None:
            enabled = True
    if hz is not None and _sampler is not None and not _sampler.running:
        _sampler = None  # apply the new rate to a fresh sampler
    if enabled:
        if _path is None:
            raise ValueError(
                "configure(enabled=True) needs an output: pass path= or set "
                f"{PROFILE_ENV_VAR}"
            )
        if _sampler is None or not _sampler.running:
            rate = hz if hz is not None else _env_hz()
            _sampler = Sampler(rate).start()
        if not _atexit_registered:
            atexit.register(_atexit_write)
            _atexit_registered = True
    elif enabled is not None and _sampler is not None:
        _sampler.stop()


def _env_hz() -> float:
    raw = os.environ.get(PROFILE_HZ_ENV_VAR)
    if not raw:
        return DEFAULT_HZ
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_HZ


def sample_count() -> int:
    """Samples collected by this process's sampler (workers excluded)."""
    return _sampler.sample_count() if _sampler is not None else 0


def merged_samples() -> dict[tuple[str, ...], int]:
    """Own samples plus every absorbed worker spool."""
    own = _sampler.snapshot() if _sampler is not None else {}
    return merge_samples([own, *_sources.values()])


def absorb_spool(path: str, source: str) -> int:
    """Replace ``source``'s table with the spool file's current contents.

    Spool files are cumulative (rewritten whole after every job), so a
    replace — not an add — keeps repeated merges idempotent.  Returns
    the number of samples absorbed; unreadable or partially written
    spools are skipped (the next merge sees the complete rewrite).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            table = parse_collapsed(handle.read(), path)
    except (OSError, ValueError):
        return 0
    _sources[source] = table
    return sum(table.values())


def write_collapsed(path: str | None = None) -> str | None:
    """Write own + absorbed samples as collapsed text; returns the path."""
    target = path if path is not None else _path
    if target is None:
        return None
    text = render_collapsed(merged_samples())
    tmp = f"{target}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(tmp, target)
    return target


def _atexit_write() -> None:  # pragma: no cover - interpreter shutdown
    if _sampler is not None:
        _sampler.stop()
    try:
        write_collapsed()
    except OSError:
        pass


def reset_after_fork(spool_path: str | None) -> None:
    """Re-home the profiler in a freshly forked pool worker.

    The sampler *thread* does not survive a fork, and the inherited
    samples belong to the parent: drop both, point the output at the
    worker's per-pid spool file, and restart sampling at the parent's
    rate.  ``spool_path=None`` disables profiling in the child.
    """
    global _sampler, _path
    rate = _sampler.hz if _sampler is not None else _env_hz()
    _sampler = None
    _sources.clear()
    _path = None
    if spool_path is not None:
        configure(path=spool_path, hz=rate, enabled=True)


class profiling:
    """Context manager: sample for the block, write collapsed output."""

    def __init__(self, path: str, hz: float = DEFAULT_HZ) -> None:
        self.path = path
        self.sampler = Sampler(hz)

    def __enter__(self) -> Sampler:
        self.sampler.start()
        return self.sampler

    def __exit__(self, *exc: Any) -> None:
        self.sampler.stop()
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(render_collapsed(self.sampler.snapshot()))


# -- the flamegraph renderer ---------------------------------------------------


class _TrieNode:
    __slots__ = ("name", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.children: dict[str, _TrieNode] = {}


def _build_trie(samples: Mapping[tuple[str, ...], int]) -> _TrieNode:
    root = _TrieNode("all")
    for stack, count in samples.items():
        root.count += count
        node = root
        for name in stack:
            child = node.children.get(name)
            if child is None:
                child = node.children[name] = _TrieNode(name)
            node = child
            node.count += count
    return root


def _color(name: str) -> str:
    """A deterministic warm color per frame name (hash-seed independent)."""
    import zlib

    h = zlib.crc32(name.encode("utf-8"))
    red = 205 + (h & 0x1F)
    green = 80 + ((h >> 5) & 0x7F)
    blue = (h >> 12) & 0x37
    return f"rgb({red},{green},{blue})"


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


_FLAME_CSS = """
body { font: 12px/1.4 -apple-system, 'Segoe UI', sans-serif; margin: 16px; }
h1 { font-size: 15px; }
.frame { position: absolute; box-sizing: border-box; height: 17px;
  overflow: hidden; white-space: nowrap; text-overflow: ellipsis;
  border: 1px solid rgba(255,255,255,0.6); border-radius: 2px;
  padding: 0 3px; cursor: pointer; font-size: 11px; }
.frame:hover { border-color: #000; }
#graph { position: relative; width: 100%; }
#detail { margin-top: 8px; color: #444; min-height: 1.4em; }
"""

_FLAME_JS = """
var graph = document.getElementById('graph');
var detail = document.getElementById('detail');
var total = Number(graph.dataset.total) || 1;
graph.addEventListener('mouseover', function (e) {
  var t = e.target;
  if (!t.classList.contains('frame')) return;
  detail.textContent = t.dataset.name + ' — ' + t.dataset.count +
    ' samples (' + (100 * t.dataset.count / total).toFixed(1) + '%)';
});
graph.addEventListener('click', function (e) {
  var t = e.target;
  if (!t.classList.contains('frame')) return;
  var left = parseFloat(t.style.left), width = parseFloat(t.style.width);
  var scale = 100 / width;
  Array.prototype.forEach.call(graph.children, function (f) {
    var l = parseFloat(f.style.left), w = parseFloat(f.style.width);
    f.style.left = ((l - left) * scale) + '%';
    f.style.width = (w * scale) + '%';
  });
});
graph.addEventListener('dblclick', function () {
  Array.prototype.forEach.call(graph.children, function (f) {
    f.style.left = f.dataset.left + '%';
    f.style.width = f.dataset.width + '%';
  });
});
"""


def flamegraph_html(
    samples: Mapping[tuple[str, ...], int], title: str = "repro flamegraph"
) -> str:
    """Render samples as one self-contained HTML flamegraph.

    Pure HTML/CSS plus ~30 lines of inline JS for hover detail,
    click-to-zoom, and double-click-to-reset; no external assets, so
    the file can be committed or attached to a bug report as-is.
    """
    root = _build_trie(samples)
    total = root.count or 1
    divs: list[str] = []
    max_depth = 0

    def walk(node: _TrieNode, depth: int, left: float) -> None:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        width = 100.0 * node.count / total
        name = _escape(node.name)
        divs.append(
            f'<div class="frame" style="left:{left:.4f}%;width:{width:.4f}%;'
            f"top:{depth * 18}px;background:{_color(node.name)}\" "
            f'data-name="{name}" data-count="{node.count}" '
            f'data-left="{left:.4f}" data-width="{width:.4f}" '
            f'title="{name} ({node.count})">{name}</div>'
        )
        child_left = left
        for child in sorted(
            node.children.values(), key=lambda c: (-c.count, c.name)
        ):
            walk(child, depth + 1, child_left)
            child_left += 100.0 * child.count / total

    walk(root, 0, 0.0)
    height = (max_depth + 1) * 18 + 4
    return (
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_escape(title)}</title>"
        f"<style>{_FLAME_CSS}</style></head><body>"
        f"<h1>{_escape(title)} — {total} samples</h1>"
        f'<div id="graph" data-total="{total}" style="height:{height}px">'
        + "".join(divs)
        + f'</div><div id="detail">hover a frame; click to zoom, '
        f"double-click to reset</div>"
        f"<script>{_FLAME_JS}</script></body></html>\n"
    )


# Zero-code activation: REPRO_PROFILE=profile.collapsed samples at import.
_env_path = os.environ.get(PROFILE_ENV_VAR)
if _env_path:
    configure(path=_env_path)
