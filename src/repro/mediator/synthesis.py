"""Composition synthesis for PL services (Theorems 5.1(4,5) and 5.3(1,2)).

Two routes, mirroring the paper's proofs:

**k-prefix route** (Theorem 5.1(4,5)).  Mediator acceptance is determined
by a consumed prefix: an internal mediator node starved of input is ∅ by
rule (1), and a final mediator state ignores the remaining input — so every
mediator defines a *prefix-determined* language, and a nonrecursive PL goal
depends only on its first ``depth+1`` messages (k-prefix recognizability).
:func:`compose_pl_prefix` therefore enumerates mediators of bounded shape
and decides equivalence exactly by comparing all words up to the joint
prefix bound.

**regular-rewriting route** (Theorem 5.3(1,2)).  At the language level,
composition for MDT(∨) mediators is the rewriting of the goal's regular
language over the components' languages, with components contributing their
*prefix-free cores* (run to completion, stop at the first final state).
:func:`compose_pl_regular` runs the Calvanese–De Giacomo–Lenzerini–Vardi
construction from :mod:`repro.automata.regular_rewriting` on the SWS's
language automata and, on success, materializes the maximal rewriting as an
MDT(∨) mediator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.analysis.verdict import Verdict
from repro.automata.nfa import NFA
from repro.automata.regular_rewriting import RewritingResult, rewrite
from repro.core.classes import SWSClass, require_class
from repro.core.pl_semantics import joint_variables, to_afa
from repro.core.sws import MSG, SWS, SynthesisRule
from repro.errors import AnalysisError
from repro.guard import checkpoint, checkpoint_callable, guarded, register_span
from repro.logic import pl
from repro.obs import traced
from repro.mediator.mediator import (
    Mediator,
    MediatorTransitionRule,
    mediator_equivalent_to_sws_pl,
)


def kprefix_bound(goal: SWS, components: Mapping[str, SWS]) -> int:
    """A word length bounding the prefix-dependence of goal and mediators.

    A nonrecursive goal of depth d inspects at most d+1 messages.  A
    nonrecursive mediator of m states chains at most m component runs, each
    consuming at most (component depth + 1) messages (+1 for the final
    synthesis read).  The returned bound dominates both, so word
    enumeration up to it decides equivalence exactly (Theorem 5.1(4,5)).
    """
    require_class(goal, SWSClass.PL_PL, "kprefix_bound")
    goal_k = (goal.depth() + 1) if not goal.is_recursive() else 0
    component_k = 0
    for component in components.values():
        require_class(component, SWSClass.PL_PL, "kprefix_bound")
        if component.is_recursive():
            raise AnalysisError(
                "kprefix_bound needs nonrecursive components; "
                f"{component.name!r} is recursive"
            )
        component_k = max(component_k, component.depth() + 1)
    return max(goal_k, component_k + 1)


def sws_language_nfa(sws: SWS, variables: Iterable[str]) -> NFA:
    """The NFA of L(τ) over the assignment alphabet of ``variables``."""
    return to_afa(sws, variables).to_nfa()


def mediator_language_nfa(
    mediator: Mediator, variables: Iterable[str]
) -> NFA:
    """The session-language NFA of a PL mediator.

    Substitutes each component's *session core* — the prefix-free
    restriction of its language, i.e. the words a successful run-to-
    completion consumes — into the mediator's transition graph; final
    mediator states accept.  This is the language-level semantics the
    Section 5 proofs work with; it coincides with the run semantics
    whenever every successful component run consumes exactly its accepted
    session prefix (true for session-shaped services such as the Roman
    translations and :mod:`repro.workloads.pl_services`; the exhaustive
    :func:`repro.mediator.mediator.mediator_equivalent_to_sws_pl` remains
    the ground truth for arbitrary services).
    """
    variables = frozenset(variables)
    cores = {
        name: sws_language_nfa(component, variables).prefix_free_restriction()
        for name, component in mediator.components.items()
    }
    alphabet = next(iter(cores.values())).alphabet if cores else frozenset()
    states = set(mediator.states)
    transitions: dict[tuple, set] = {}
    finals = {
        state
        for state in mediator.states
        if mediator.transitions[state].is_final
    }
    skeleton_symbols = []
    edge_languages: dict[str, NFA] = {}
    for state in mediator.states:
        for i, (target, component) in enumerate(
            mediator.transitions[state].targets
        ):
            symbol = f"{state}->{target}#{i}"
            skeleton_symbols.append(symbol)
            edge_languages[symbol] = cores[component]
            transitions.setdefault((state, symbol), set()).add(target)
    skeleton = NFA(
        states,
        skeleton_symbols,
        {k: frozenset(v) for k, v in transitions.items()},
        {mediator.start},
        finals,
    )
    if not skeleton_symbols:
        return skeleton.with_alphabet(alphabet)
    return skeleton.substitute(edge_languages, alphabet)


def boolean_language_combination(
    branches: Sequence[NFA],
    formula: pl.Formula,
    alphabet: Iterable,
):
    """The language ``{ w | formula([w ∈ L(branch_i)]) }`` as a DFA.

    ``formula`` ranges over registers ``A1..Ak`` (branch membership).
    Realizes non-disjunctive mediator root synthesis — e.g. MDT_b(PL)
    candidates whose root conjoins branch values — at the language level.
    """
    from collections import deque

    from repro.automata.dfa import DFA

    alphabet = frozenset(alphabet)
    dfas = [branch.with_alphabet(alphabet).determinize() for branch in branches]
    initial = tuple(d.initial for d in dfas)
    states = set()
    transitions = {}
    queue = deque([initial])
    ckpt = checkpoint_callable("boolean_language_combination")
    n_popped = 0
    ckpt(0, queue)
    while queue:
        combo = queue.popleft()
        n_popped += 1
        ckpt(n_popped, queue)
        if combo in states:
            continue
        states.add(combo)
        for symbol in alphabet:
            target = tuple(d.step(s, symbol) for d, s in zip(dfas, combo))
            transitions[(combo, symbol)] = target
            if target not in states:
                queue.append(target)
    finals = {
        combo
        for combo in states
        if formula.evaluate(
            frozenset(
                f"A{i + 1}" for i, (d, s) in enumerate(zip(dfas, combo)) if s in d.finals
            )
        )
    }
    return DFA(states, alphabet, transitions, initial, finals)


@traced("mediator_language_equivalent", kind="mediator")
def mediator_language_equivalent(
    mediator: Mediator, goal: SWS, variables: Iterable[str] | None = None
) -> bool:
    """Session-core equality of mediator and goal (automata-based).

    Both sides of a PL composition are prefix-determined (rule (3)
    semantics), so mediator ≡ goal iff their prefix-free session cores
    coincide as regular languages.  Exponentially faster than word
    enumeration; see :func:`mediator_language_nfa` for the assumption it
    rests on.
    """
    if variables is None:
        variables = joint_variables(goal, *mediator.components.values())
    goal_core = sws_language_nfa(goal, variables).prefix_free_restriction()
    mediator_core = mediator_language_nfa(mediator, variables)
    return goal_core.equivalent_to(mediator_core.prefix_free_restriction())


@dataclass
class PLCompositionResult:
    """Outcome of a PL composition synthesis.

    ``mediator`` is the synthesized mediator when one exists;
    ``rewriting`` carries the language-level evidence (for the regular
    route); ``witness`` is a distinguishing word when synthesis failed.
    ``verdict`` is three-valued: YES/NO mirror ``exists`` for completed
    runs; UNKNOWN marks a synthesis cut short by a resource guard.
    """

    exists: bool
    mediator: Mediator | None = None
    rewriting: RewritingResult | None = None
    witness: list | None = None
    detail: str = ""
    verdict: Verdict | None = None

    def __post_init__(self) -> None:
        if self.verdict is None:
            self.verdict = Verdict.YES if self.exists else Verdict.NO


def _pl_trip(error) -> PLCompositionResult:
    return PLCompositionResult(
        exists=False, verdict=Verdict.UNKNOWN, detail=error.trip.describe()
    )


@traced("compose_pl_regular", kind="mediator")
@guarded(on_trip=_pl_trip)
def compose_pl_regular(
    goal: SWS, components: Mapping[str, SWS]
) -> PLCompositionResult:
    """MDT(∨) composition via regular-language rewriting (Theorem 5.3(1,2)).

    Decides whether the goal's language is an exact substitution of the
    components' prefix-free cores; on success builds the MDT(∨) mediator
    whose transition graph is the maximal rewriting automaton.  The
    language-level test is exact; the mediator's run-level equivalence
    additionally relies on the goal being prefix-determined (e.g. services
    with in-band session delimiters, as the Section 3 translations
    produce), which callers should verify with
    :func:`repro.mediator.mediator.mediator_equivalent_to_sws_pl`.
    """
    require_class(goal, SWSClass.PL_PL, "compose_pl_regular")
    variables = joint_variables(goal, *components.values())
    # SWS languages are prefix-determined (rule (3) ignores input beyond a
    # final state), so goal and mediator agree iff their *session cores* —
    # the prefix-free restrictions — agree; the rewriting targets the core.
    goal_nfa = sws_language_nfa(goal, variables).prefix_free_restriction()
    component_nfas = {
        name: sws_language_nfa(component, variables)
        for name, component in components.items()
    }
    result = rewrite(goal_nfa, component_nfas, run_to_completion=True)
    if not result.exact:
        return PLCompositionResult(
            exists=False,
            rewriting=result,
            witness=list(result.witness or ()),
            detail="goal word not covered by any substitution",
        )
    mediator = mediator_from_rewriting_nfa(result.maximal, components)
    return PLCompositionResult(
        exists=True, mediator=mediator, rewriting=result, detail="exact rewriting"
    )


def mediator_from_rewriting_nfa(
    rewriting: NFA, components: Mapping[str, SWS], name: str = "π"
) -> Mediator:
    """Materialize a rewriting automaton as an MDT(∨) mediator.

    Automaton states become mediator states; an edge labeled with component
    ``c`` becomes a transition target ``(state', eval(c))``.  Internal
    synthesis is the disjunction of the successor registers; accepting
    automaton states become *final* mediator states whose synthesis reads
    ``Msg`` — the value the last component run delivered.

    The construction assumes the rewriting language is prefix-free (no
    accepted word extends another), which holds whenever the goal's
    minimal-session language is prefix-free — e.g. for the
    delimiter-terminated services the Section 3 translations produce.  The
    outgoing edges of accepting states (dead continuations in the
    deterministic automata :func:`maximal_rewriting` builds) are dropped.
    If the start state itself accepts, the empty mediator word would be
    required; rule (1) semantics cannot express "accept on no input", so
    that case is rejected.
    """
    state_names = {
        s: f"m{i}" for i, s in enumerate(sorted(rewriting.states, key=repr))
    }
    initials = list(rewriting.initials)
    if len(initials) != 1:
        raise AnalysisError("rewriting automaton must have one initial state")
    if initials[0] in rewriting.finals:
        raise AnalysisError(
            "rewriting accepts the empty word; mediators cannot accept "
            "without invoking a component"
        )
    start = state_names[initials[0]]
    transitions: dict[str, MediatorTransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}
    for nfa_state in rewriting.states:
        mediator_state = state_names[nfa_state]
        if nfa_state in rewriting.finals:
            transitions[mediator_state] = MediatorTransitionRule()
            synthesis[mediator_state] = SynthesisRule(pl.Var(MSG))
            continue
        targets: list[tuple[str, str]] = []
        for (source, symbol), nfa_targets in rewriting.transitions.items():
            if source != nfa_state or symbol is None:
                continue
            for target in nfa_targets:
                targets.append((state_names[target], str(symbol)))
        transitions[mediator_state] = MediatorTransitionRule(sorted(targets))
        synthesis[mediator_state] = SynthesisRule(
            pl.disjoin(pl.Var(f"A{i + 1}") for i in range(len(targets)))
        )
    mediator = Mediator(
        list(transitions), start, transitions, synthesis, dict(components), name=name
    )
    return _trim_mediator(mediator)


def _trim_mediator(mediator: Mediator) -> Mediator:
    """Drop states that cannot reach a final state (dead continuations)."""
    productive: set[str] = {
        s for s in mediator.states if mediator.transitions[s].is_final
    }
    changed = True
    while changed:
        changed = False
        for state in mediator.states:
            if state in productive:
                continue
            rule = mediator.transitions[state]
            if any(target in productive for target, _c in rule.targets):
                productive.add(state)
                changed = True
    if mediator.start not in productive:
        # Keep a syntactically valid (empty-language) mediator.
        productive = {mediator.start}
    states = [s for s in mediator.states if s in productive]
    transitions = {}
    synthesis = {}
    for state in states:
        rule = mediator.transitions[state]
        kept = [
            (target, component)
            for target, component in rule.targets
            if target in productive
        ]
        transitions[state] = MediatorTransitionRule(kept)
        if rule.is_final:
            synthesis[state] = mediator.synthesis[state]
        else:
            synthesis[state] = SynthesisRule(
                pl.disjoin(pl.Var(f"A{i + 1}") for i in range(len(kept)))
            )
    return Mediator(
        states,
        mediator.start,
        transitions,
        synthesis,
        dict(mediator.components),
        name=mediator.name,
    )


def _enumerate_chain_mediators(
    components: Mapping[str, SWS], max_length: int
) -> Iterable[Mediator]:
    """All chain-shaped mediators invoking up to ``max_length`` components.

    A chain ``q0 →c1 q1 →c2 ... →cm qm`` with the final state's synthesis
    ``Msg`` and internal synthesis ``A1`` models sequential invocation —
    the shape Theorem 5.1(4,5)'s bounded-size argument reduces to for
    prefix languages.
    """
    names = sorted(components)
    for length in range(1, max_length + 1):
        for combo in itertools.product(names, repeat=length):
            states = [f"s{i}" for i in range(length + 1)]
            transitions = {}
            synthesis = {}
            for i in range(length):
                transitions[states[i]] = MediatorTransitionRule(
                    [(states[i + 1], combo[i])]
                )
                synthesis[states[i]] = SynthesisRule(pl.Var("A1"))
            transitions[states[length]] = MediatorTransitionRule()
            synthesis[states[length]] = SynthesisRule(pl.Var(MSG))
            yield Mediator(
                states,
                states[0],
                transitions,
                synthesis,
                dict(components),
                name="chain_" + "_".join(combo),
            )


def _enumerate_union_mediators(
    components: Mapping[str, SWS], max_branches: int, max_length: int
) -> Iterable[Mediator]:
    """Unions of up to ``max_branches`` chains (disjunctive mediators)."""
    chains = list(_enumerate_chain_mediators(components, max_length))
    for r in range(1, max_branches + 1):
        for combo in itertools.combinations(range(len(chains)), r):
            if r == 1:
                yield chains[combo[0]]
                continue
            states: list[str] = ["root"]
            transitions: dict[str, MediatorTransitionRule] = {}
            synthesis: dict[str, SynthesisRule] = {}
            root_targets: list[tuple[str, str]] = []
            for b, index in enumerate(combo):
                chain = chains[index]
                prefix = f"b{b}_"
                first_rule = chain.transitions[chain.start]
                for state in chain.states:
                    if state == chain.start:
                        continue
                    states.append(prefix + state)
                    rule = chain.transitions[state]
                    transitions[prefix + state] = MediatorTransitionRule(
                        [(prefix + t, c) for t, c in rule.targets]
                    )
                    synthesis[prefix + state] = chain.synthesis[state]
                for target, component in first_rule.targets:
                    root_targets.append((prefix + target, component))
            transitions["root"] = MediatorTransitionRule(root_targets)
            synthesis["root"] = SynthesisRule(
                pl.disjoin(pl.Var(f"A{i + 1}") for i in range(len(root_targets)))
            )
            yield Mediator(
                states,
                "root",
                transitions,
                synthesis,
                dict(components),
                name="union",
            )


@traced("compose_pl_prefix", kind="mediator")
@guarded(on_trip=_pl_trip)
def compose_pl_prefix(
    goal: SWS,
    components: Mapping[str, SWS],
    max_chain_length: int = 2,
    max_branches: int = 2,
) -> PLCompositionResult:
    """Composition for k-prefix recognizable goals (Theorem 5.1(4,5)).

    Enumerates mediators of bounded shape (unions of invocation chains, the
    normal form the k-prefix argument licenses) and checks exact
    equivalence on all words up to the k-prefix bound.  Requires
    nonrecursive components; the goal may be recursive provided its
    language is k-prefix recognizable — if it is not, no mediator can match
    it and the procedure correctly reports non-existence (with a witness
    only when the discrepancy shows up within the tested horizon).
    """
    require_class(goal, SWSClass.PL_PL, "compose_pl_prefix")
    variables = sorted(joint_variables(goal, *components.values()))
    for mediator in _enumerate_union_mediators(
        components, max_branches, max_chain_length
    ):
        checkpoint("compose_pl_prefix")
        if mediator_language_equivalent(mediator, goal, variables):
            return PLCompositionResult(
                exists=True,
                mediator=mediator,
                detail=f"chains ≤ {max_chain_length}, branches ≤ {max_branches}",
            )
    return PLCompositionResult(
        exists=False,
        detail=f"no mediator within shape bounds (chains ≤ {max_chain_length}, "
        f"branches ≤ {max_branches})",
    )


# mediator_language_equivalent returns a bare bool, where False is a sound
# "not equivalent" — it cannot absorb a trip, so it is left unguarded and
# trips propagate to the guarded composition boundaries above.
register_span(
    "boolean_language_combination",
    "product-DFA BFS over the branch automata",
    "Theorem 5.3(3): root-synthesis language combination for MDT_b(PL)",
)
register_span(
    "compose_pl_prefix",
    "per-candidate bounded-shape mediator enumeration loop",
    "Theorem 5.1(4,5): k-prefix composition for nonrecursive PL services",
)
