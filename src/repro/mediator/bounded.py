"""MDT_b(PL): bounded mediators (Theorem 5.3(3)).

MDT_b(PL) restricts MDT(PL) so that "each component service is invoked at
most a fixed number of times in all transition rules combined, and the
sizes of the synthesis functions are bounded".  Under these bounds the
composition problem has a small-model property: if any mediator exists,
one of polynomially-bounded size does — so enumeration plus equivalence
testing decides it (EXPSPACE in general, PSPACE-complete with nonrecursive
components).

:func:`compose_mdtb_pl` realizes exactly that: it enumerates all mediator
shapes within the invocation bound — trees of invocation chains below the
root, with root synthesis drawn from a bounded formula pool — and tests
each candidate against the goal *at the language level*: a chain's
session language is the concatenation of its components' session cores, a
branch's value on an input is membership of a prefix in that language,
and the root formula combines branch values (conjunctions included — this
is full MDT_b(PL), not just MDT(∨)).  Equivalence is then regular-language
equality with the goal, via :func:`repro.mediator.synthesis.boolean_language_combination`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro._stats import STATS
from repro.analysis.verdict import Verdict
from repro.automata.nfa import NFA
from repro.core.classes import SWSClass, require_class
from repro.core.pl_semantics import joint_variables
from repro.core.sws import MSG, SWS, SynthesisRule
from repro.guard import checkpoint, guarded, register_span
from repro.logic import pl
from repro.mediator.mediator import Mediator, MediatorTransitionRule
from repro.obs import traced
from repro.mediator.synthesis import (
    boolean_language_combination,
    sws_language_nfa,
)


@dataclass
class MDTbResult:
    """Outcome of a bounded-mediator synthesis.

    ``verdict`` is three-valued: YES/NO mirror ``exists`` for completed
    runs; UNKNOWN marks a synthesis cut short by a resource guard, in
    which case ``exists`` is False but non-existence was *not* decided.
    """

    exists: bool
    mediator: Mediator | None = None
    candidates_tried: int = 0
    detail: str = ""
    verdict: Verdict | None = None

    def __post_init__(self) -> None:
        if self.verdict is None:
            self.verdict = Verdict.YES if self.exists else Verdict.NO


def _mdtb_trip(error) -> MDTbResult:
    return MDTbResult(
        exists=False, verdict=Verdict.UNKNOWN, detail=error.trip.describe()
    )


def _synthesis_pool(k: int, max_size: int) -> list[pl.Formula]:
    """Small synthesis formulas over registers A1..Ak.

    Realizes the "bounded synthesis size" restriction: plain registers,
    pairwise conjunctions/disjunctions, and the full conjunction and
    disjunction.
    """
    registers = [pl.Var(f"A{i + 1}") for i in range(k)]
    pool: list[pl.Formula] = list(registers)
    if k >= 2:
        pool.append(pl.disjoin(registers))
        pool.append(pl.conjoin(registers))
        if max_size >= 2:
            for left, right in itertools.combinations(registers, 2):
                pool.extend([left | right, left & right])
    unique: dict[str, pl.Formula] = {str(f): f for f in pool}
    return list(unique.values())


def _chain_pool(
    names: Sequence[str], invocation_bound: int
) -> list[tuple[str, ...]]:
    max_total = invocation_bound * max(1, len(names))
    chains: list[tuple[str, ...]] = []
    for length in range(1, max_total + 1):
        for combo in itertools.product(names, repeat=length):
            counts: dict[str, int] = {}
            for component in combo:
                counts[component] = counts.get(component, 0) + 1
            if all(c <= invocation_bound for c in counts.values()):
                chains.append(combo)
    return chains


def _candidates(
    names: Sequence[str],
    invocation_bound: int,
    max_branches: int,
) -> Iterator[tuple[tuple[str, ...], ...]]:
    """Branch tuples whose total invocation counts respect the bound."""
    pool = _chain_pool(names, invocation_bound)
    for branches in range(1, max_branches + 1):
        for combo in itertools.combinations_with_replacement(pool, branches):
            counts: dict[str, int] = {}
            for chain in combo:
                for component in chain:
                    counts[component] = counts.get(component, 0) + 1
            if all(c <= invocation_bound for c in counts.values()):
                yield combo


def _build_mediator(
    chains: Sequence[tuple[str, ...]],
    root_formula: pl.Formula,
    components: Mapping[str, SWS],
) -> Mediator:
    states: list[str] = ["root"]
    transitions: dict[str, MediatorTransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}
    root_targets: list[tuple[str, str]] = []
    for b, chain in enumerate(chains):
        previous: str | None = None
        for depth, component in enumerate(chain):
            state = f"c{b}_{depth}"
            states.append(state)
            if depth == 0:
                root_targets.append((state, component))
            else:
                assert previous is not None
                transitions[previous] = MediatorTransitionRule([(state, component)])
                # A failed component leaves the register false (dead-node
                # rule), so forwarding A1 chains the successes.
                synthesis[previous] = SynthesisRule(pl.Var("A1"))
            previous = state
        assert previous is not None
        transitions[previous] = MediatorTransitionRule()
        synthesis[previous] = SynthesisRule(pl.Var(MSG))
    transitions["root"] = MediatorTransitionRule(root_targets)
    synthesis["root"] = SynthesisRule(root_formula)
    return Mediator(
        states, "root", transitions, synthesis, dict(components), name="mdtb"
    )


@traced("compose_mdtb_pl", kind="mediator")
@guarded(on_trip=_mdtb_trip)
def compose_mdtb_pl(
    goal: SWS,
    components: Mapping[str, SWS],
    invocation_bound: int = 2,
    max_synthesis_size: int = 2,
    max_branches: int = 2,
) -> MDTbResult:
    """Composition synthesis for MDT_b(PL) mediators (Theorem 5.3(3)).

    Decides, over the bounded candidate space, whether a mediator
    equivalent to the goal exists; equivalence is regular-language
    equality of session languages (see the module docstring — exact for
    session-shaped components, and applicable to recursive goals and
    components alike, matching the theorem's EXPSPACE case).
    """
    require_class(goal, SWSClass.PL_PL, "compose_mdtb_pl")
    for component in components.values():
        require_class(component, SWSClass.PL_PL, "compose_mdtb_pl")
    variables = joint_variables(goal, *components.values())
    cores = {
        name: sws_language_nfa(component, variables).prefix_free_restriction()
        for name, component in components.items()
    }
    alphabet = next(iter(cores.values())).alphabet if cores else frozenset()
    goal_dfa = sws_language_nfa(goal, variables).determinize()
    sigma_star = _sigma_star(alphabet)

    chain_language: dict[tuple[str, ...], NFA] = {}

    def language_of(chain: tuple[str, ...]) -> NFA:
        if chain not in chain_language:
            nfa = cores[chain[0]]
            for component in chain[1:]:
                nfa = nfa.concat(cores[component])
            chain_language[chain] = nfa.concat(sigma_star)
        return chain_language[chain]

    tried = 0
    names = sorted(components)
    for chains in _candidates(names, invocation_bound, max_branches):
        branch_nfas = [language_of(chain) for chain in chains]
        for root_formula in _synthesis_pool(len(chains), max_synthesis_size):
            tried += 1
            checkpoint("compose_mdtb_pl")
            STATS.mediator_candidates += 1
            combined = boolean_language_combination(
                branch_nfas, root_formula, alphabet
            )
            if combined.equivalent_to(goal_dfa):
                mediator = _build_mediator(chains, root_formula, components)
                return MDTbResult(
                    exists=True,
                    mediator=mediator,
                    candidates_tried=tried,
                    detail=f"chains {chains}, ψ_root = {root_formula}",
                )
    return MDTbResult(
        exists=False,
        candidates_tried=tried,
        detail="no bounded mediator matches the goal",
    )


def _sigma_star(alphabet: Iterable) -> NFA:
    alphabet = frozenset(alphabet)
    transitions = {(0, symbol): frozenset({0}) for symbol in alphabet}
    return NFA({0}, alphabet, transitions, {0}, {0})


register_span(
    "compose_mdtb_pl",
    "per-candidate (chains × root formula) enumeration loop",
    "Theorem 5.3(3): bounded-mediator composition for MDT_b(PL)",
)
