"""SWS mediators and composition synthesis — Section 5 / Table 2.

* :mod:`~repro.mediator.mediator` — the MDT(LAct) data type of
  Definition 5.1 and its run semantics (component services as "oracle
  queries" run to completion on the remaining input, timestamps advanced
  past the consumed prefix).
* :mod:`~repro.mediator.synthesis` — PL composition synthesis: the
  k-prefix machinery of Theorem 5.1(4,5) and the regular-language
  rewriting route of Theorem 5.3(1,2).
* :mod:`~repro.mediator.rewriting_based` — CQ/UCQ composition synthesis
  via equivalent query rewriting using views (Theorem 5.1(3)).
* :mod:`~repro.mediator.bounded` — MDT_b(PL): the bounded-invocation
  mediators of Theorem 5.3(3), synthesized by small-model enumeration.
"""

from repro.mediator.mediator import (
    Mediator,
    MediatorTransitionRule,
    mediator_equivalent_to_sws_pl,
    run_mediator,
    run_mediator_pl,
    run_mediator_relational,
)
from repro.mediator.synthesis import (
    boolean_language_combination,
    compose_pl_prefix,
    compose_pl_regular,
    kprefix_bound,
    mediator_from_rewriting_nfa,
    mediator_language_equivalent,
    mediator_language_nfa,
)
from repro.mediator.rewriting_based import compose_cq_nr, mediator_from_ucq_rewriting
from repro.mediator.bounded import compose_mdtb_pl
from repro.mediator.rpq_composition import (
    chain_view,
    compose_uc2rpq,
    evaluate_over_views,
)

__all__ = [
    "Mediator",
    "MediatorTransitionRule",
    "chain_view",
    "compose_cq_nr",
    "compose_mdtb_pl",
    "compose_pl_prefix",
    "compose_pl_regular",
    "compose_uc2rpq",
    "evaluate_over_views",
    "kprefix_bound",
    "mediator_equivalent_to_sws_pl",
    "mediator_from_rewriting_nfa",
    "mediator_from_ucq_rewriting",
    "mediator_language_equivalent",
    "mediator_language_nfa",
    "boolean_language_combination",
    "run_mediator",
    "run_mediator_pl",
    "run_mediator_relational",
]
