"""SWS mediators (Definition 5.1) and their run semantics.

A mediator π = (Q, δ, σ, q0) over a set S of component SWS's looks like an
SWS except that transition rules embed component services:

    δ(q): q → (q1, eval(τ1)), ..., (qk, eval(τk))

Running π on (D, I) differs from an SWS run in rules (2) and (3):

* rule (2): the i-th child's message register receives the *output of the
  component run* ``τi(D, I^j)`` on the remaining input ``I^j = Ij, ..., In``
  — with the component's start-state message register seeded with Msg(v) —
  and the child's timestamp advances past the input the component consumed
  (``li + 1``, where ``li`` is the largest timestamp in the component's
  execution tree);
* rule (3): a final state's synthesis query reads only Msg(v) — a mediator
  "receives and redirects messages, but does not directly access local
  databases".

Commitment of all component actions is deferred to the end of the
mediator's run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.exec_tree import ExecutionNode, RunResult
from repro.core.run import PLWord, output_schema
from repro.core.sws import MSG, SWS, SWSKind, SynthesisRule
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation
from repro.errors import RunError, SWSDefinitionError
from repro.logic import pl


@dataclass(frozen=True)
class MediatorTransitionRule:
    """``q → (q1, eval(τ1)), ..., (qk, eval(τk))``; empty = final state."""

    targets: tuple[tuple[str, str], ...]
    """Pairs (successor state, component name)."""

    def __init__(self, targets: Iterable[tuple[str, str]] = ()) -> None:
        object.__setattr__(self, "targets", tuple(targets))

    @property
    def is_final(self) -> bool:
        """Whether the rule's right-hand side is empty."""
        return not self.targets

    def __len__(self) -> int:
        return len(self.targets)


class Mediator:
    """An SWS mediator in MDT(LAct)."""

    def __init__(
        self,
        states: Iterable[str],
        start: str,
        transitions: Mapping[str, MediatorTransitionRule],
        synthesis: Mapping[str, SynthesisRule],
        components: Mapping[str, SWS],
        *,
        name: str = "π",
    ) -> None:
        self.states = tuple(dict.fromkeys(states))
        self.start = start
        self.transitions = dict(transitions)
        self.synthesis = dict(synthesis)
        self.components = dict(components)
        self.name = name
        self._validate()

    def _validate(self) -> None:
        state_set = set(self.states)
        if self.start not in state_set:
            raise SWSDefinitionError(f"start state {self.start!r} unknown")
        for state in self.states:
            if state not in self.transitions or state not in self.synthesis:
                raise SWSDefinitionError(f"state {state!r} lacks rules")
        kinds = {c.kind for c in self.components.values()}
        if len(kinds) > 1:
            raise SWSDefinitionError("components must share one query regime")
        for state, rule in self.transitions.items():
            for target, component in rule.targets:
                if target not in state_set:
                    raise SWSDefinitionError(
                        f"δ({state!r}) targets unknown state {target!r}"
                    )
                if target == self.start:
                    raise SWSDefinitionError(
                        "the start state must not appear on a rhs"
                    )
                if component not in self.components:
                    raise SWSDefinitionError(
                        f"δ({state!r}) invokes unknown component {component!r}"
                    )

    @property
    def kind(self) -> SWSKind:
        """The query regime of the mediator's components."""
        for component in self.components.values():
            return component.kind
        return SWSKind.PL

    def is_recursive(self) -> bool:
        """Whether the mediator's own dependency graph is cyclic.

        Components embedded in a nonrecursive mediator may themselves be
        recursive (Section 5.1).
        """
        edges: dict[str, set[str]] = {s: set() for s in self.states}
        for state, rule in self.transitions.items():
            for target, _component in rule.targets:
                edges[state].add(target)
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {s: WHITE for s in self.states}

        def visit(state: str) -> bool:
            color[state] = GRAY
            for target in edges[state]:
                if color[target] == GRAY:
                    return True
                if color[target] == WHITE and visit(target):
                    return True
            color[state] = BLACK
            return False

        return any(color[s] == WHITE and visit(s) for s in self.states)

    def successor_register_aliases(self, state: str) -> dict[str, int]:
        """Register names for a state's synthesis query (as for SWS's)."""
        rule = self.transitions[state]
        aliases: dict[str, int] = {}
        for i in range(len(rule)):
            aliases[f"A{i + 1}"] = i
            aliases[f"Act{i + 1}"] = i
        successors = [t for t, _c in rule.targets]
        for i, target in enumerate(successors):
            if successors.count(target) == 1:
                aliases[f"Act_{target}"] = i
        return aliases

    def component_invocation_counts(self) -> dict[str, int]:
        """How often each component appears across all transition rules.

        MDT_b(PL) (Theorem 5.3(3)) bounds these counts.
        """
        counts: dict[str, int] = {name: 0 for name in self.components}
        for rule in self.transitions.values():
            for _target, component in rule.targets:
                counts[component] += 1
        return counts

    def __repr__(self) -> str:
        return (
            f"Mediator({self.name!r}, {len(self.states)} states, "
            f"{len(self.components)} components)"
        )


def run_mediator(
    mediator: Mediator, database: Database | None, inputs
) -> RunResult:
    """Run a mediator; dispatches on the components' kind."""
    if mediator.kind is SWSKind.PL:
        return run_mediator_pl(mediator, inputs)
    if database is None:
        raise RunError("relational mediator runs need a database")
    return run_mediator_relational(mediator, database, inputs)


def run_mediator_relational(
    mediator: Mediator, database: Database, inputs: InputSequence
) -> RunResult[Relation]:
    """Run a relational mediator on (D, I) per Section 5.1."""
    some_component = next(iter(mediator.components.values()), None)
    if some_component is None or some_component.input_schema is None:
        raise RunError("relational mediators need relational components")
    payload = some_component.input_schema
    out_schema = output_schema(some_component)
    n = len(inputs)

    def expand(state: str, j: int, msg: Relation) -> ExecutionNode[Relation]:
        node: ExecutionNode[Relation] = ExecutionNode(state, j, msg)
        rule = mediator.transitions[state]
        sigma = mediator.synthesis[state].query
        if rule.is_final:
            env = {MSG: Relation(msg.schema.renamed(MSG), msg.rows)}
            node.act = Relation(out_schema, sigma.evaluate(env))
            return node
        if j > n or (not msg and state != mediator.start):
            node.act = Relation.empty(out_schema)
            return node
        for target, component_name in rule.targets:
            component = mediator.components[component_name]
            suffix = inputs.suffix(j)
            from repro.mediator._component_run import run_component_relational

            child_output, consumed = run_component_relational(
                component, database, suffix, msg
            )
            child = expand(target, j + consumed, child_output)
            node.children.append(child)
        aliases = mediator.successor_register_aliases(state)
        env = {}
        for alias, position in aliases.items():
            child_act = node.children[position].act
            assert child_act is not None
            env[alias] = Relation(child_act.schema.renamed(alias), child_act.rows)
        node.act = Relation(out_schema, sigma.evaluate(env))
        return node

    empty_msg = Relation.empty(out_schema.renamed(MSG))
    root = expand(mediator.start, 1, empty_msg)
    assert root.act is not None
    return RunResult(output=root.act, tree=root)


def run_mediator_pl(mediator: Mediator, word: PLWord) -> RunResult[bool]:
    """Run a PL mediator on a word of truth assignments."""
    word = [frozenset(w) for w in word]
    n = len(word)

    def expand(state: str, j: int, msg: bool) -> ExecutionNode[bool]:
        node: ExecutionNode[bool] = ExecutionNode(state, j, msg)
        rule = mediator.transitions[state]
        sigma = mediator.synthesis[state].query
        assert isinstance(sigma, pl.Formula)
        if rule.is_final:
            node.act = sigma.evaluate(frozenset({MSG}) if msg else frozenset())
            return node
        if j > n or (not msg and state != mediator.start):
            node.act = False
            return node
        for target, component_name in rule.targets:
            component = mediator.components[component_name]
            from repro.mediator._component_run import run_component_pl

            value, consumed = run_component_pl(component, word[j - 1 :], msg)
            child = expand(target, j + consumed, value)
            node.children.append(child)
        aliases = mediator.successor_register_aliases(state)
        env = frozenset(
            alias
            for alias, position in aliases.items()
            if node.children[position].act
        )
        node.act = sigma.evaluate(env)
        return node

    root = expand(mediator.start, 1, False)
    assert root.act is not None
    return RunResult(output=root.act, tree=root)


def mediator_equivalent_to_sws_pl(
    mediator: Mediator, goal: SWS, max_word_length: int, variables: Sequence[str]
) -> tuple[bool, list[frozenset[str]] | None]:
    """Compare a PL mediator with a goal SWS on all words up to a bound.

    Exact when the bound dominates both sides' prefix-dependence (see
    :func:`repro.mediator.synthesis.kprefix_bound`); returns
    ``(equivalent, distinguishing word)``.
    """
    import itertools

    from repro.core.run import run_pl

    alphabet = [
        frozenset(c)
        for r in range(len(variables) + 1)
        for c in itertools.combinations(sorted(variables), r)
    ]
    for length in range(0, max_word_length + 1):
        for combo in itertools.product(alphabet, repeat=length):
            word = list(combo)
            if run_mediator_pl(mediator, word).output != run_pl(goal, word).output:
                return False, word
    return True, None
