"""CQ/UCQ composition synthesis via query rewriting (Theorem 5.1(3)).

CP(SWS_nr(CQ, UCQ), MDT_nr(UCQ), SWS_nr(CQ, UCQ)) "can be reduced to the
problem for equivalent query rewriting using views for UCQ with ≠".  The
reduction implemented here:

1. the goal service becomes its UCQ≠ expansion ``Q`` at saturation length
   (Section 5.2 treats the goal as a query);
2. each component service becomes a *view*: its own expansion over the same
   database relations and per-step input relations;
3. an equivalent rewriting ``R`` of ``Q`` over the views — found by the
   canonical-rewriting procedure of :mod:`repro.logic.rewriting` — is
   materialized as a depth-one mediator: the root invokes every view's
   component as a child (the child's final synthesis forwards the
   component's output register), and the root synthesis is ``R`` with view
   predicates renamed to the children's action registers;
4. the synthesized mediator is re-verified against the goal at every
   session length up to saturation, including the empty session (where a
   mediator — whose root is an internal state starved of input — is
   necessarily silent).

The mediator shape is the paper's Example 5.1 shape: π1 over τa, τhc, τht
is exactly such a depth-one mediator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.verdict import Verdict
from repro.core.classes import SWSClass, require_class
from repro.core.sws import MSG, SWS, SynthesisRule
from repro.core.unfold import expand, saturation_length
from repro.errors import AnalysisError
from repro.guard import checkpoint, guarded, register_span
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.rewriting import View, equivalent_rewriting
from repro.logic.terms import Variable
from repro.logic.ucq import UnionQuery, compose_union
from repro.mediator.mediator import Mediator, MediatorTransitionRule
from repro.obs import traced


def component_view(name: str, component: SWS, session_length: int) -> View:
    """A component service as a view: its expansion at ``session_length``.

    The view predicate is ``name``; a mediator invoking the component at
    its root sees exactly this query's answer as the child register.
    """
    require_class(component, SWSClass.CQ_UCQ_NR, "component_view")
    expansion = expand(component, session_length)
    return View(
        UnionQuery(expansion.disjuncts, arity=expansion.arity, name=name)
    )


@dataclass
class CQCompositionResult:
    """Outcome of a CQ/UCQ composition synthesis.

    ``verdict`` is three-valued: YES/NO mirror ``exists`` for completed
    runs; UNKNOWN marks a synthesis cut short by a resource guard.
    """

    exists: bool
    mediator: Mediator | None = None
    rewriting: UnionQuery | None = None
    detail: str = ""
    verdict: Verdict | None = None

    def __post_init__(self) -> None:
        if self.verdict is None:
            self.verdict = Verdict.YES if self.exists else Verdict.NO


def _cq_trip(error) -> CQCompositionResult:
    return CQCompositionResult(
        exists=False, verdict=Verdict.UNKNOWN, detail=error.trip.describe()
    )


def mediator_from_ucq_rewriting(
    rewriting: UnionQuery,
    components: Mapping[str, SWS],
    name: str = "π",
) -> Mediator:
    """Materialize a UCQ rewriting over views as a depth-one mediator.

    One child per component whose view the rewriting mentions; the child's
    final synthesis forwards its message register (the component's output),
    and the root synthesis is the rewriting with view predicates renamed to
    the children's ``Act_<child>`` registers.
    """
    used = sorted(
        {atom.relation for d in rewriting.disjuncts for atom in d.atoms}
    )
    unknown = [u for u in used if u not in components]
    if unknown:
        raise AnalysisError(f"rewriting mentions unknown components {unknown}")
    arity = rewriting.arity
    child_of = {component: f"s_{component}" for component in used}
    targets = [(child_of[component], component) for component in used]
    renaming = {component: f"Act_{child_of[component]}" for component in used}
    renamed_disjuncts = [
        ConjunctiveQuery(
            d.head,
            [Atom(renaming[a.relation], a.terms) for a in d.atoms],
            d.comparisons,
            d.name,
        )
        for d in rewriting.disjuncts
    ]
    root_synthesis = UnionQuery(renamed_disjuncts, arity=arity, name="psi_root")
    head = tuple(Variable(f"x{i}") for i in range(arity))
    forward = UnionQuery.of(
        ConjunctiveQuery(head, [Atom(MSG, head)], (), "forward")
    )
    states = ["q_root"] + [child_of[c] for c in used]
    transitions = {"q_root": MediatorTransitionRule(targets)}
    synthesis = {"q_root": SynthesisRule(root_synthesis)}
    for component in used:
        transitions[child_of[component]] = MediatorTransitionRule()
        synthesis[child_of[component]] = SynthesisRule(forward)
    return Mediator(
        states,
        "q_root",
        transitions,
        synthesis,
        {c: components[c] for c in used},
        name=name,
    )


@traced("verify_cq_mediator", kind="mediator")
def verify_cq_mediator(
    goal: SWS,
    rewriting: UnionQuery,
    components: Mapping[str, SWS],
    horizon: int | None = None,
) -> bool:
    """Query-level equivalence of a depth-one mediator with the goal.

    For every session length n up to the horizon, the mediator's output
    query — the rewriting composed with the components' expansions at n —
    must be equivalent to the goal's expansion at n; at n = 0 the mediator
    is silent (its root is starved), so the goal's expansion must be
    unsatisfiable.
    """
    if horizon is None:
        horizon = saturation_length(goal)
    if expand(goal, 0).is_satisfiable():
        return False
    for n in range(1, horizon + 1):
        # Returns a bare bool where False is a sound "not equivalent", so
        # this function cannot absorb a trip itself; the checkpoint's trip
        # propagates to the guarded compose_cq_nr boundary.
        checkpoint("compose_cq_nr", depth=n)
        goal_q = expand(goal, n)
        definitions = {}
        for name, component in components.items():
            component_q = expand(component, n)
            definitions[name] = UnionQuery(
                component_q.disjuncts, arity=component_q.arity, name=name
            )
        mediator_q = compose_union(rewriting, definitions)
        if not (
            mediator_q.contained_in(goal_q) and goal_q.contained_in(mediator_q)
        ):
            return False
    return True


@traced("compose_cq_nr", kind="mediator")
@guarded(on_trip=_cq_trip)
def compose_cq_nr(
    goal: SWS, components: Mapping[str, SWS]
) -> CQCompositionResult:
    """Composition synthesis for all-nonrecursive CQ/UCQ services.

    Implements the Theorem 5.1(3) reduction (see module docstring).  A
    returned mediator is verified at the query level for every session
    length; ``exists=False`` means no *depth-one* mediator exists over the
    canonical candidate space — complete for comparison-free services
    (classical rewriting completeness), candidate-based under ≠.
    """
    require_class(goal, SWSClass.CQ_UCQ_NR, "compose_cq_nr")
    for component in components.values():
        require_class(component, SWSClass.CQ_UCQ_NR, "compose_cq_nr")
        if component.db_schema != goal.db_schema:
            raise AnalysisError("components must share the goal's database schema")
    horizon = max(
        [saturation_length(goal)]
        + [saturation_length(c) for c in components.values()]
    )
    goal_q = expand(goal, horizon)
    views = []
    for name, component in components.items():
        checkpoint("compose_cq_nr", frontier=len(components))
        views.append(component_view(name, component, horizon))
    rewriting = equivalent_rewriting(goal_q, views)
    if rewriting is None:
        return CQCompositionResult(
            exists=False, detail="no equivalent rewriting over the views"
        )
    if not verify_cq_mediator(goal, rewriting, components, horizon):
        return CQCompositionResult(
            exists=False,
            rewriting=rewriting,
            detail="rewriting found but fails session-length verification",
        )
    mediator = mediator_from_ucq_rewriting(rewriting, components)
    return CQCompositionResult(
        exists=True,
        mediator=mediator,
        rewriting=rewriting,
        detail=f"verified up to session length {horizon}",
    )


register_span(
    "compose_cq_nr",
    "per-view expansion loop and per-session-length verification loop",
    "Theorem 5.1(3): CQ/UCQ composition via equivalent query rewriting",
)
