"""Component-service invocation: the eval(τ) operator of Definition 5.1.

A mediator invokes a component on the *remaining* input ``I^j``, seeds the
component's start-state message register with its own Msg(v), lets the
component run to completion, and advances past the input the component
consumed (the maximum timestamp of the component's execution tree).

Register-schema note: mediator registers hold Rout-shaped relations (a
child register receives a component's *output*), while a component's
message register is Rin-shaped.  The paper assumes the schemas are unified
by outer union; here seeding a component with a nonempty register requires
matching arities, and an empty register seeds an empty one regardless —
enough for root-level invocations (Example 5.1) and for unified-schema
services.
"""

from __future__ import annotations

from repro._stats import STATS
from repro.core.run import PLWord, run_pl, run_relational
from repro.core.sws import MSG, SWS
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation
from repro.errors import RunError


def run_component_relational(
    component: SWS,
    database: Database,
    suffix: InputSequence,
    seed: Relation,
) -> tuple[Relation, int]:
    """Run a relational component; returns (output, consumed messages).

    ``consumed`` is the component tree's maximum timestamp, so the
    mediator resumes at absolute position ``j + consumed`` — the paper's
    ``l_i + 1`` in relative terms.
    """
    payload = component.input_schema
    assert payload is not None
    if seed and seed.schema.arity != payload.arity:
        raise RunError(
            f"cannot seed component {component.name!r}: register arity "
            f"{seed.schema.arity} vs input payload arity {payload.arity}"
        )
    STATS.component_runs += 1
    root_msg = Relation(payload.renamed(MSG), seed.rows if seed else ())
    result = run_relational(component, database, suffix, root_msg=root_msg)
    return result.output, result.tree.max_timestamp()


def run_component_pl(
    component: SWS, suffix: PLWord, seed: bool
) -> tuple[bool, int]:
    """Run a PL component; returns (output value, consumed messages)."""
    STATS.component_runs += 1
    result = run_pl(component, list(suffix), root_msg=seed)
    return result.output, result.tree.max_timestamp()
