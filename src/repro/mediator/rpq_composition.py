"""The UC2RPQ composition case (Corollary 5.2).

The paper's decidable case for *recursive, data-driven* goal services:
goals in SWS(UC2RPQ), components in SWS_nr(CQ^r) — each component
expressing a conjunctive query — and mediators in MDT(UC2RPQ).  The proof
makes composition "ptime-equivalent to the problem of equivalent query
rewriting for UC2RPQ queries using CQ views" and derives the 2EXPTIME bound
from UC2RPQ containment.

This module implements the rewriting pipeline for the canonical instance
of that problem — *chain* CQ views over a graph database (each view is a
word over edge labels and inverses):

* :func:`chain_view` — a CQ view tracing one label word;
* :func:`compose_uc2rpq` — per goal RPQ, the regular rewriting of its path
  language over the view words (the maximal rewriting of
  :mod:`repro.automata.regular_rewriting`, without the run-to-completion
  restriction: queries are not sessions); an exact rewriting yields the
  mediator query — an RPQ *over the view predicates*;
* :func:`evaluate_over_views` — evaluates a mediator RPQ on the graph whose
  edges are the views' extensions, which is how the synthesized mediator
  answers requests; tests verify it agrees with the goal on random graphs.

The maximally-contained half of the corollary's argument (Duschka &
Genesereth) is exercised through :func:`repro.logic.rewriting.certain_answers`
over the same views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.verdict import Verdict
from repro.automata.nfa import NFA
from repro.automata.regular_rewriting import RewritingResult, rewrite
from repro.automata.rpq import GraphDatabase, Label, RPQ, inverse, is_inverse
from repro.errors import AnalysisError
from repro.guard import guarded
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.terms import Variable
from repro.obs import traced


def chain_view(name: str, word: Sequence[Label]) -> ConjunctiveQuery:
    """The CQ view tracing the label word: ``V(x0, xk) :- e1(x0,x1), ...``.

    Inverse labels flip the edge atom's argument order, matching the
    graph-database encoding of Section 5.2.
    """
    if not word:
        raise AnalysisError("chain views need at least one edge label")
    variables = [Variable(f"x{i}") for i in range(len(word) + 1)]
    atoms = []
    for i, label in enumerate(word):
        if is_inverse(label):
            atoms.append(Atom(inverse(label), (variables[i + 1], variables[i])))
        else:
            atoms.append(Atom(label, (variables[i], variables[i + 1])))
    return ConjunctiveQuery((variables[0], variables[-1]), atoms, (), name)


@dataclass
class RPQCompositionResult:
    """Outcome of a UC2RPQ composition synthesis.

    ``verdict`` is three-valued: YES/NO mirror ``exists`` for completed
    runs; UNKNOWN marks a synthesis cut short by a resource guard.
    """

    exists: bool
    mediator_rpq: RPQ | None = None
    rewriting: RewritingResult | None = None
    detail: str = ""
    verdict: Verdict | None = None

    def __post_init__(self) -> None:
        if self.verdict is None:
            self.verdict = Verdict.YES if self.exists else Verdict.NO


def _rpq_trip(error) -> RPQCompositionResult:
    return RPQCompositionResult(
        exists=False, verdict=Verdict.UNKNOWN, detail=error.trip.describe()
    )


@traced("compose_uc2rpq", kind="mediator")
@guarded(on_trip=_rpq_trip)
def compose_uc2rpq(
    goal: RPQ, views: Mapping[str, Sequence[Label]]
) -> RPQCompositionResult:
    """Equivalent rewriting of a goal RPQ over chain views (Corollary 5.2).

    ``views`` maps view names to label words.  The goal's path language is
    rewritten over the single-word view languages; an exact rewriting is
    returned as an RPQ over the view names — the mediator's query, whose
    evaluation over the views' extensions answers exactly the goal
    (soundness verified by :func:`evaluate_over_views` in the tests).
    """
    alphabet = set(goal.labels())
    for word in views.values():
        alphabet |= set(word)
    goal_nfa = goal.to_nfa(alphabet)
    component_nfas = {
        name: NFA.for_word(list(word), alphabet) for name, word in views.items()
    }
    result = rewrite(goal_nfa, component_nfas, run_to_completion=False)
    if not result.exact:
        return RPQCompositionResult(
            exists=False,
            rewriting=result,
            detail="goal path language not expressible over the views",
        )
    mediator = RPQ(_nfa_to_regex(result.maximal), name=f"{goal.name}_over_views")
    return RPQCompositionResult(
        exists=True, mediator_rpq=mediator, rewriting=result, detail="exact"
    )


def view_graph(
    graph: GraphDatabase, views: Mapping[str, Sequence[Label]]
) -> GraphDatabase:
    """The graph whose ``name``-edges are the views' extensions."""
    edges = {}
    for name, word in views.items():
        extension = chain_view(name, word).evaluate(graph.as_relations())
        edges[name] = set(extension)
    return GraphDatabase(edges)


def evaluate_over_views(
    mediator: RPQ, graph: GraphDatabase, views: Mapping[str, Sequence[Label]]
) -> frozenset:
    """Answer the mediator query using only the views' extensions."""
    return mediator.evaluate(view_graph(graph, views))


def _nfa_to_regex(nfa: NFA):
    """State-elimination conversion NFA → regex (small automata only)."""
    from repro.automata.regex import EmptySet, Epsilon, Regex, Star, Sym, Union_, Concat

    # Collect states; add unique initial/final wrappers.
    states = list(nfa.states)
    INIT, FINAL = ("__init__",), ("__final__",)
    edges: dict[tuple, Regex] = {}

    def add_edge(source, target, regex: Regex) -> None:
        key = (source, target)
        if key in edges:
            edges[key] = Union_((edges[key], regex))
        else:
            edges[key] = regex

    for (source, symbol), targets in nfa.transitions.items():
        for target in targets:
            add_edge(source, target, Epsilon() if symbol is None else Sym(symbol))
    for initial in nfa.initials:
        add_edge(INIT, initial, Epsilon())
    for final in nfa.finals:
        add_edge(final, FINAL, Epsilon())

    for state in states:
        loop = edges.pop((state, state), None)
        loop_regex: Regex = Star(loop) if loop is not None else Epsilon()
        incoming = [
            (src, regex)
            for (src, tgt), regex in list(edges.items())
            if tgt == state and src != state
        ]
        outgoing = [
            (tgt, regex)
            for (src, tgt), regex in list(edges.items())
            if src == state and tgt != state
        ]
        for (src, _r) in incoming:
            edges.pop((src, state))
        for (tgt, _r) in outgoing:
            edges.pop((state, tgt))
        for src, r_in in incoming:
            for tgt, r_out in outgoing:
                add_edge(src, tgt, Concat((r_in, loop_regex, r_out)))
    return edges.get((INIT, FINAL), EmptySet())
