"""Parameterized instance families for the Table 1 / Table 2 benchmarks.

Each family targets one complexity bound: the cost of the matching decision
procedure should grow with the family parameter in the shape the bound
predicts (linear families stay cheap; families encoding hard structure grow
exponentially).  EXPERIMENTS.md records the measured shapes.
"""

from __future__ import annotations

import random

from repro.automata.afa import AFA
from repro.core.sws import MSG, SWS, SWSKind, SynthesisRule, TransitionRule
from repro.logic import pl
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.terms import var
from repro.logic.ucq import UnionQuery
from repro.workloads.random_sws import DEFAULT_CQ_SCHEMA, DEFAULT_PAYLOAD


def _xor(left: pl.Formula, right: pl.Formula) -> pl.Formula:
    return (left & pl.Not(right)) | (pl.Not(left) & right)


def afa_counter(bits: int) -> AFA:
    """An AFA whose shortest accepted word is ``a^(2^bits)``.

    The classical succinct counter: state ``b_i`` holds bit ``i`` of the
    remaining word length (LSB first), via the increment recurrence
    ``b_i(a·w) = b_i(w) XOR (b_0(w) ∧ ... ∧ b_{i-1}(w))`` with
    ``b_i(ε) = 0``.  The initial condition reads one symbol and requires
    all bits of the remaining length to be 1, so the automaton accepts
    ``a^m`` exactly for ``m ≡ 0 (mod 2^bits)``, ``m ≥ 1`` — any emptiness
    search must traverse 2^bits valuation vectors before the first witness.
    """
    states = [f"b{i}" for i in range(bits)] + ["init"]
    a = "a"
    transitions: dict[tuple[str, str], pl.Formula] = {}
    for i in range(bits):
        flip = pl.conjoin([pl.Var(f"b{j}") for j in range(i)])
        transitions[(f"b{i}", a)] = _xor(pl.Var(f"b{i}"), flip).simplify()
    transitions[("init", a)] = pl.conjoin([pl.Var(f"b{i}") for i in range(bits)])
    return AFA(states, {a}, transitions, pl.Var("init"), finals=set())


def pl_counter_sws(bits: int) -> SWS:
    """A recursive PL service whose shortest accepted word has length 2^bits.

    The SWS form of :func:`afa_counter`: state ``b_i`` recurses into itself
    and the lower bits, and its synthesis formula implements the increment
    recurrence; the root conjoins all bits.  There are no final states and
    no input variables — the alphabet is the single empty assignment, and
    the service accepts exactly the input lengths ≡ 0 (mod 2^bits).  This
    family drives the PSPACE shape of Table 1 row SWS(PL, PL).
    """
    states = ["root"] + [f"b{i}" for i in range(bits)]
    transitions: dict[str, TransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}
    for i in range(bits):
        # Children: (b_i, then b_0 .. b_{i-1}), all unconditionally alive.
        targets = [(f"b{i}", pl.TRUE)] + [(f"b{j}", pl.TRUE) for j in range(i)]
        transitions[f"b{i}"] = TransitionRule(targets)
        stay = pl.Var("A1")
        flip = pl.conjoin([pl.Var(f"A{j + 2}") for j in range(i)])
        synthesis[f"b{i}"] = SynthesisRule(_xor(stay, flip).simplify())
    transitions["root"] = TransitionRule(
        [(f"b{i}", pl.TRUE) for i in range(bits)]
    )
    synthesis["root"] = SynthesisRule(
        pl.conjoin([pl.Var(f"A{i + 1}") for i in range(bits)])
    )
    return SWS(
        states,
        "root",
        transitions,
        synthesis,
        kind=SWSKind.PL,
        name=f"counter_{bits}",
    )


def cq_diamond_sws(depth: int) -> SWS:
    """A nonrecursive CQ/UCQ service whose expansion has ~2^depth disjuncts.

    A chain of ``depth`` internal states, each with two successors leading
    to the same next state via different transition queries (one routes the
    register through ``R``, the other through ``S``); the internal
    synthesis unions the two branches.  The DAG has O(depth) states but the
    tree unfolding — and hence the UCQ≠ expansion — doubles per level:
    the PSPACE-hardness shape of Table 1 row SWS_nr(CQ, UCQ).
    """
    states = [f"d{i}" for i in range(depth + 1)]
    payload_arity = DEFAULT_PAYLOAD.arity
    x, y = var("x"), var("y")
    via_r = ConjunctiveQuery((x, y), [Atom(MSG, (x, y)), Atom("R", (x, y))], (), "viaR")
    via_s = ConjunctiveQuery((x, y), [Atom(MSG, (x, y)), Atom("S", (x, y))], (), "viaS")
    first = ConjunctiveQuery((x, y), [Atom("In", (x, y))], (), "first")
    transitions: dict[str, TransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}
    for i in range(depth):
        nxt = states[i + 1]
        if i == 0:
            transitions[states[i]] = TransitionRule([(nxt, first), (nxt, first)])
        else:
            transitions[states[i]] = TransitionRule([(nxt, via_r), (nxt, via_s)])
        union = UnionQuery.of(
            ConjunctiveQuery((x, y), [Atom("A1", (x, y))], (), "left"),
            ConjunctiveQuery((x, y), [Atom("A2", (x, y))], (), "right"),
        )
        synthesis[states[i]] = SynthesisRule(union)
    transitions[states[depth]] = TransitionRule()
    synthesis[states[depth]] = SynthesisRule(
        UnionQuery.of(ConjunctiveQuery((x, y), [Atom(MSG, (x, y))], (), "emit"))
    )
    return SWS(
        states,
        states[0],
        transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=DEFAULT_CQ_SCHEMA,
        input_schema=DEFAULT_PAYLOAD,
        output_arity=payload_arity,
        name=f"diamond_{depth}",
    )


def cq_chain_sws(length: int) -> SWS:
    """A recursive CQ/UCQ service tracing R-paths of unbounded length.

    One recursive state forwards the register through ``R`` each step and a
    final state emits it; on an ``n``-message session the service emits the
    input keys connected by R-paths of each length up to ``n``.  The
    non-emptiness unfolding of Table 1 row SWS(CQ, UCQ) grows with the
    session-length bound on this family.
    """
    del length  # single shape; the bench varies the session-length bound
    x, y, z = var("x"), var("y"), var("z")
    first = ConjunctiveQuery((x, y), [Atom("In", (x, y))], (), "first")
    step = ConjunctiveQuery(
        (y, z), [Atom(MSG, (x, y)), Atom("R", (y, z))], (), "step"
    )
    emit = UnionQuery.of(
        ConjunctiveQuery((x, y), [Atom(MSG, (x, y))], (), "emit")
    )
    union = UnionQuery.of(
        ConjunctiveQuery((x, y), [Atom("A1", (x, y))], (), "deeper"),
        ConjunctiveQuery((x, y), [Atom("A2", (x, y))], (), "here"),
    )
    transitions = {
        "q0": TransitionRule([("loop", first)]),
        "loop": TransitionRule([("loop", step), ("out", step)]),
        "out": TransitionRule(),
    }
    synthesis = {
        "q0": SynthesisRule(
            UnionQuery.of(ConjunctiveQuery((x, y), [Atom("A1", (x, y))], (), "up"))
        ),
        "loop": SynthesisRule(union),
        "out": SynthesisRule(emit),
    }
    return SWS(
        ("q0", "loop", "out"),
        "q0",
        transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=DEFAULT_CQ_SCHEMA,
        input_schema=DEFAULT_PAYLOAD,
        output_arity=DEFAULT_PAYLOAD.arity,
        name="chain",
    )


def cq_recursive_diamond_sws() -> SWS:
    """A recursive service whose unfolding doubles per session step.

    The loop state has *two* recursive successors (through R and S), so
    the tree at session length n has ~2^n leaves; with the emitting state
    made unsatisfiable (x ≠ x), non-emptiness analysis can never answer
    YES and must pay for the full exponential unfolding at every horizon —
    the worst-case shape of the EXPTIME bound.
    """
    x, y, z = var("x"), var("y"), var("z")
    first = ConjunctiveQuery((x, y), [Atom("In", (x, y))], (), "first")
    step_r = ConjunctiveQuery(
        (y, z), [Atom(MSG, (x, y)), Atom("R", (y, z))], (), "stepR"
    )
    step_s = ConjunctiveQuery(
        (y, z), [Atom(MSG, (x, y)), Atom("S", (y, z))], (), "stepS"
    )
    from repro.logic.cq import neq

    never = UnionQuery.of(
        ConjunctiveQuery(
            (x, y), [Atom(MSG, (x, y))], [neq(x, x)], "never"
        )
    )
    union3 = UnionQuery.of(
        ConjunctiveQuery((x, y), [Atom("A1", (x, y))], (), "left"),
        ConjunctiveQuery((x, y), [Atom("A2", (x, y))], (), "right"),
        ConjunctiveQuery((x, y), [Atom("A3", (x, y))], (), "emit"),
    )
    transitions = {
        "q0": TransitionRule([("loop", first)]),
        "loop": TransitionRule(
            [("loop", step_r), ("loop", step_s), ("out", step_r)]
        ),
        "out": TransitionRule(),
    }
    synthesis = {
        "q0": SynthesisRule(
            UnionQuery.of(ConjunctiveQuery((x, y), [Atom("A1", (x, y))], (), "up"))
        ),
        "loop": SynthesisRule(union3),
        "out": SynthesisRule(never),
    }
    return SWS(
        ("q0", "loop", "out"),
        "q0",
        transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=DEFAULT_CQ_SCHEMA,
        input_schema=DEFAULT_PAYLOAD,
        output_arity=DEFAULT_PAYLOAD.arity,
        name="recursive_diamond",
    )


def random_3cnf(
    seed: int, n_variables: int, n_clauses: int
) -> list[tuple[tuple[str, bool], ...]]:
    """A random 3-CNF instance: clauses of (variable, polarity) literals."""
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(n_variables)]
    clauses = []
    for _ in range(n_clauses):
        chosen = rng.sample(variables, min(3, n_variables))
        clauses.append(tuple((v, rng.random() < 0.5) for v in chosen))
    return clauses


def serve_traffic(
    n_jobs: int = 32,
    distinct: int = 6,
    seed: int = 0,
    min_bits: int = 8,
) -> list[tuple[str, tuple]]:
    """A batch of decision-procedure jobs shaped like service traffic.

    Production question streams are heavily repetitive — the same few
    services get re-checked over and over (deploy pipelines, retries,
    polling monitors) with a long tail of one-off asks.  This family
    draws ``n_jobs`` jobs over ``distinct`` counter services
    (``pl_counter_sws(min_bits) .. pl_counter_sws(min_bits+distinct-1)``)
    with Zipf-shaped popularity: job *k* asks about instance rank *r*
    with probability ∝ 1/(r+1).  The repetition is what the serving
    layer's dedup + answer cache exploit.

    Returns ``(procedure_name, args)`` pairs suitable for
    ``repro.serve`` job specs (this module deliberately does not import
    the serving layer).
    """
    if n_jobs < 1 or distinct < 1:
        raise ValueError("n_jobs and distinct must be positive")
    rng = random.Random(seed)
    instances = [pl_counter_sws(min_bits + i) for i in range(distinct)]
    weights = [1.0 / (rank + 1) for rank in range(distinct)]
    jobs = []
    for _ in range(n_jobs):
        sws = rng.choices(instances, weights=weights, k=1)[0]
        jobs.append(("nonempty_pl", (sws,)))
    return jobs


def serve_traffic_burst(
    n_jobs: int = 10_000,
    distinct: int = 12,
    seed: int = 0,
    min_bits: int = 4,
    waves: int = 8,
    burst_every: int = 3,
    burst_factor: int = 4,
) -> list[list[tuple[str, tuple]]]:
    """Zipf traffic with periodic bursts, split into submission waves.

    The chaos/soak harness wants traffic that looks like an incident,
    not a steady state: mostly-steady Zipf-shaped repetition
    (:func:`serve_traffic` semantics) punctuated by bursts where one
    wave carries ``burst_factor`` times its fair share of jobs — the
    queue spikes that make admission control and worker recovery earn
    their keep.  Every ``burst_every``-th wave (1-based) is a burst;
    wave sizes are scaled so the total stays ``n_jobs``.

    Returns a list of ``waves`` job lists (some possibly empty for tiny
    ``n_jobs``), each of ``(procedure_name, args)`` pairs.
    """
    if n_jobs < 1 or distinct < 1 or waves < 1:
        raise ValueError("n_jobs, distinct, and waves must be positive")
    if burst_every < 1 or burst_factor < 1:
        raise ValueError("burst_every and burst_factor must be positive")
    rng = random.Random(seed)
    instances = [pl_counter_sws(min_bits + i) for i in range(distinct)]
    weights = [1.0 / (rank + 1) for rank in range(distinct)]
    shares = [
        burst_factor if wave % burst_every == 0 else 1
        for wave in range(1, waves + 1)
    ]
    total_share = sum(shares)
    sizes = [n_jobs * share // total_share for share in shares]
    sizes[-1] += n_jobs - sum(sizes)  # rounding remainder
    batches = []
    for size in sizes:
        batches.append(
            [
                ("nonempty_pl", (rng.choices(instances, weights=weights, k=1)[0],))
                for _ in range(size)
            ]
        )
    return batches
