"""Workloads: the paper's running example and generator families.

* :mod:`~repro.workloads.travel` — the Disney-World travel-package service
  of Figure 1 and Examples 1.1 / 2.1 / 2.2 / 5.1, in FSA form, SWS form
  (τ1), recursive SWS form (τ2) and composed form (mediator π1).
* :mod:`~repro.workloads.pl_services` — letter-encoded session services
  (exact words, unions, recursive stars) — the vocabulary of the PL
  composition experiments.
* :mod:`~repro.workloads.random_sws` — seeded random SWS generators for
  every class of Table 1, used by property tests and benchmarks.
* :mod:`~repro.workloads.scaling` — parameterized instance families whose
  decision-procedure cost exhibits the growth the complexity bounds
  predict (the "shape" reproduction of Tables 1 and 2).
"""

from repro.workloads import pl_services, random_sws, scaling, travel

__all__ = ["pl_services", "random_sws", "scaling", "travel"]
