"""Edit-script traces: sequences of instance versions for repro.delta.

An *edit script* is a list of SWS versions, each obtained from its
predecessor by a small designer-style edit.  Crucially, every edit
constructs the successor by **sharing the untouched rule objects** —
exactly what an editor front-end holding an in-memory model would do —
so the sub-fingerprint Merkle memo recognizes unchanged states without
re-canonicalizing them.

Families (all deterministic in their parameters — the traces are also
benchmark inputs):

* :func:`menu_editing_trace` — the realistic case: a "menu" union
  service (Table 1's PL shape) where each step retargets one letter
  guard deep in one branch.  Single-row edits; the service stays
  non-empty throughout (other branches are untouched), so witness
  replay applies.
* :func:`flip_trace` — a single word chain whose guard is made
  unsatisfiable mid-script and restored later: YES → NO → YES flips
  exercising stale-frontier soundness.
* :func:`rename_trace` — versions differing only in ``name``:
  fingerprint-invariant edits that must invalidate nothing.
* :func:`growing_trace` — a chain whose edits introduce a letter the
  alphabet did not previously contain: alphabet-growing edits that must
  force (and survive) the full-rebuild path.
* :func:`edited_menu` — the step-indexed single-version view of
  :func:`menu_editing_trace`, shaped for the serve CLI's ``@round``
  factory substitution.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.sws import MSG, SWS, SynthesisRule, TransitionRule
from repro.logic import pl
from repro.workloads.pl_services import (
    HASH,
    exactly,
    union_word_service,
    word_service,
)

__all__ = [
    "edited_menu",
    "flip_trace",
    "growing_trace",
    "menu_editing_trace",
    "menu_words",
    "rename_trace",
    "replace_rule",
]


def replace_rule(
    sws: SWS,
    state: str,
    rule: TransitionRule | None = None,
    synthesis: SynthesisRule | None = None,
    name: str | None = None,
) -> SWS:
    """A copy of ``sws`` with one state's rules (and/or the name) replaced.

    All other rule objects are shared with ``sws`` — the single-row edit
    primitive every trace is built from.
    """
    transitions = dict(sws.transitions)
    synthesis_map = dict(sws.synthesis)
    if rule is not None:
        transitions[state] = rule
    if synthesis is not None:
        synthesis_map[state] = synthesis
    return SWS(
        sws.states,
        sws.start,
        transitions,
        synthesis_map,
        kind=sws.kind,
        db_schema=sws.db_schema,
        input_schema=sws.input_schema,
        output_arity=sws.output_arity,
        name=name if name is not None else sws.name,
    )


def menu_words(
    branches: int = 8, length: int = 4, alphabet: str = "abcd", seed: int = 0
) -> list[list[str]]:
    """Deterministic delimiter-terminated words for a menu service."""
    rng = random.Random(seed)
    letters = sorted(set(alphabet))
    return [
        [rng.choice(letters) for _ in range(length)] + [HASH]
        for _ in range(branches)
    ]


def menu_editing_trace(
    branches: int = 8,
    length: int = 4,
    alphabet: str = "abcd",
    edits: int = 6,
    seed: int = 0,
) -> list[SWS]:
    """Single-row guard edits on a menu service; ``edits + 1`` versions.

    Each step picks one branch-interior state and retargets its letter
    guard to the next letter of the alphabet — the "designer tweaks one
    transition row" scenario.  The start state's disjunction is never
    touched, so at least one original branch always remains intact and
    the service stays non-empty.
    """
    rng = random.Random(seed + 1)
    letters = sorted(set(alphabet))
    current = union_word_service(
        menu_words(branches, length, alphabet, seed), alphabet, name="menu"
    )
    # Interior branch states (exclude the shared root and final states).
    editable = [
        state
        for state in current.states
        if state != current.start and not current.transitions[state].is_final
    ]
    trace = [current]
    for step in range(edits):
        state = rng.choice(editable)
        target, old_guard = current.transitions[state].targets[0]
        # Retarget the guard to a different letter (cycling the alphabet
        # keeps the edit deterministic and always a real change).  The
        # Msg conjunct mirrors the interior-link shape of word_service.
        letter = letters[(step + rng.randrange(len(letters))) % len(letters)]
        new_guard = (pl.Var(MSG) & exactly(letter, alphabet)).simplify()
        if new_guard == old_guard:
            letter = letters[(letters.index(letter) + 1) % len(letters)]
            new_guard = (pl.Var(MSG) & exactly(letter, alphabet)).simplify()
        rest = list(current.transitions[state].targets[1:])
        current = replace_rule(
            current,
            state,
            rule=TransitionRule([(target, new_guard)] + rest),
            name=f"menu_v{step + 1}",
        )
        trace.append(current)
    return trace


def edited_menu(
    step: int = 0,
    branches: int = 8,
    length: int = 4,
    alphabet: str = "abcd",
    edits: int = 16,
    seed: int = 0,
) -> SWS:
    """Version ``step`` of the menu editing trace (clamped to the end).

    Registered as a workload factory so serve job specs can request
    ``{"factory": "repro.workloads.editing:edited_menu", "kwargs":
    {"step": "@round"}}`` — each ``serve run --repeat`` round then
    submits the next edited version.
    """
    trace = menu_editing_trace(branches, length, alphabet, edits, seed)
    return trace[min(max(int(step), 0), len(trace) - 1)]


def flip_trace(
    word: Sequence[str] = ("a", "b", "c"), alphabet: str = "abc"
) -> list[SWS]:
    """YES → NO → YES: a chain whose guard dies and comes back.

    Version 1 replaces one interior guard with ``false`` (the service
    accepts nothing — NO); version 2 restores it (YES again).  The NO
    step is the stale-frontier soundness test: any engine that reuses
    the YES frontier as *evidence* would answer YES wrongly.
    """
    base = word_service(list(word) + [HASH], alphabet, name="flip")
    state = "w1"
    target, guard = base.transitions[state].targets[0]
    dead = replace_rule(
        base,
        state,
        rule=TransitionRule([(target, pl.FALSE)]),
        name="flip_dead",
    )
    back = replace_rule(
        dead,
        state,
        rule=TransitionRule([(target, guard)]),
        name="flip_back",
    )
    return [base, dead, back]


def rename_trace(
    branches: int = 4, alphabet: str = "ab", steps: int = 3
) -> list[SWS]:
    """Rename-only edits: every version is structurally identical."""
    base = union_word_service(
        menu_words(branches, 3, alphabet, seed=7), alphabet, name="rn0"
    )
    trace = [base]
    for step in range(steps):
        base = replace_rule(base, base.start, name=f"rn{step + 1}")
        trace.append(base)
    return trace


def growing_trace(alphabet: str = "ab") -> list[SWS]:
    """An edit that grows the input alphabet (new letter in a guard).

    The edited guard mentions a letter outside the original alphabet, so
    the assignment alphabet doubles — the AFA layout changes and only a
    full rebuild is sound.
    """
    base = word_service(["a", "b", HASH], alphabet, name="grow")
    state = "w1"
    target, _guard = base.transitions[state].targets[0]
    grown_alphabet = sorted(set(alphabet) | {"z"})
    grown = replace_rule(
        base,
        state,
        rule=TransitionRule([(target, exactly("z", grown_alphabet))]),
        name="grow_z",
    )
    return [base, grown]
