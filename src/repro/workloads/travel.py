"""The travel-package scenario (Figure 1, Examples 1.1 / 2.1 / 2.2).

A customer books a Disney World package and commits only when (1) an
airfare, (2) a hotel room and (3) either park tickets or a discounted
rental car are all available.  The paper contrasts:

* the FSA specification (Figure 1(a)): airfare, hotel and the local
  arrangement are checked *sequentially*;
* the SWS specification (Figure 1(b) / Example 2.1): one input message
  fans out to four states in parallel, and the root synthesis query ψ0
  deterministically prefers tickets over a rental car.

Data model (equality-only, as CQ/FO queries require):

* database ``R``: ``Ra(key, flight)``, ``Rh(key, room)``, ``Rt(key,
  ticket)``, ``Rc(key, car)`` — the catalog of offers per request key;
* input payload ``Rin``: ``(tag, key)`` — ``tag ∈ {a, h, t, c}`` selects
  the aspect, ``key`` identifies the customer's requirement (the paper's
  "user requirements" x̄, collapsed to one attribute);
* output ``Rout``: ``(flight, room, ticket, car)`` with the placeholder
  value ``'-'`` in don't-care positions (the paper's underscores).

τ1 and τ2 are in SWS(FO, FO) — the root synthesis ψ0 uses negation to
prefer tickets — exactly as the paper notes for Example 2.1.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.logic import fo
from repro.logic.cq import Atom, ConjunctiveQuery, eq
from repro.logic.terms import Constant, Variable, const, var

#: Placeholder for don't-care output positions (the paper's "_").
BLANK = "-"

#: Aspect tags of input tuples (Example 2.1).
TAGS = ("a", "h", "t", "c")

INPUT_PAYLOAD = RelationSchema("Rin", ("tag", "key"))

DB_SCHEMA = DatabaseSchema(
    [
        RelationSchema("Ra", ("key", "flight")),
        RelationSchema("Rh", ("key", "room")),
        RelationSchema("Rt", ("key", "ticket")),
        RelationSchema("Rc", ("key", "car")),
    ]
)

OUTPUT_ARITY = 4  # (flight, room, ticket, car)


def _select_tag(tag: str) -> ConjunctiveQuery:
    """φ_tag: copy input tuples carrying the given tag into the register."""
    t, k = var("t"), var("k")
    return ConjunctiveQuery(
        (t, k), [Atom("In", (t, k))], [eq(t, const(tag))], f"phi_{tag}"
    )


def _offer_synthesis(catalog: str, position: int, name: str) -> ConjunctiveQuery:
    """ψ at a final state: offers matching the registered requirement.

    Produces (flight, room, ticket, car) rows with the offer at
    ``position`` and ``'-'`` elsewhere, by joining ``Msg`` with the catalog
    relation on the request key.
    """
    t, k, offer = var("t"), var("k"), var("o")
    head = [const(BLANK)] * OUTPUT_ARITY
    head[position] = offer
    return ConjunctiveQuery(
        tuple(head),
        [Atom("Msg", (t, k)), Atom(catalog, (k, offer))],
        (),
        name,
    )


def _root_synthesis() -> fo.FOQuery:
    """ψ0 of Example 2.1: conjunctive commit, tickets preferred over cars.

    Output rows pair every available flight and room with either a ticket
    (when any exists) or otherwise a rental car; the don't-care positions
    carry ``'-'``.
    """
    f, r, tk, c, u = var("f"), var("r"), var("tk"), var("c"), var("u")
    blank = Constant(BLANK)
    flights = fo.atom("Act_qa", f, blank, blank, blank)
    rooms = fo.atom("Act_qh", blank, r, blank, blank)
    tickets = fo.atom("Act_qt", blank, blank, tk, blank)
    any_ticket = fo.Exists((u,), fo.atom("Act_qt", blank, blank, u, blank))
    cars = fo.atom("Act_qc", blank, blank, blank, c)
    prefer_tickets = fo.AndF((tickets, fo.Equals(c, blank)))
    fall_back_to_cars = fo.AndF((fo.NotF(any_ticket), cars, fo.Equals(tk, blank)))
    body = fo.AndF((flights, rooms, fo.OrF((prefer_tickets, fall_back_to_cars))))
    return fo.FOQuery((f, r, tk, c), body, "psi0")


def travel_service(name: str = "tau1") -> SWS:
    """τ1 of Example 2.1: the nonrecursive travel-package SWS."""
    states = ("q0", "qa", "qh", "qt", "qc")
    transitions = {
        "q0": TransitionRule(
            [
                ("qa", _select_tag("a")),
                ("qh", _select_tag("h")),
                ("qt", _select_tag("t")),
                ("qc", _select_tag("c")),
            ]
        ),
        "qa": TransitionRule(),
        "qh": TransitionRule(),
        "qt": TransitionRule(),
        "qc": TransitionRule(),
    }
    synthesis = {
        "q0": SynthesisRule(_root_synthesis()),
        "qa": SynthesisRule(_offer_synthesis("Ra", 0, "psi_a")),
        "qh": SynthesisRule(_offer_synthesis("Rh", 1, "psi_h")),
        "qt": SynthesisRule(_offer_synthesis("Rt", 2, "psi_t")),
        "qc": SynthesisRule(_offer_synthesis("Rc", 3, "psi_c")),
    }
    return SWS(
        states,
        "q0",
        transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=DB_SCHEMA,
        input_schema=INPUT_PAYLOAD,
        output_arity=OUTPUT_ARITY,
        name=name,
    )


def _latest_wins_synthesis() -> fo.FOQuery:
    """ψ'a of Example 2.1: prefer the recursive register, else the fresh one.

    ``Act_qa`` carries results for later inquiries; when it is empty the
    current inquiry's result ``Act_qf`` is used — so the latest nonempty
    inquiry wins.
    """
    f, r, tk, c = var("f"), var("r"), var("tk"), var("c")
    w = tuple(var(n) for n in ("w1", "w2", "w3", "w4"))
    recursive = fo.atom("Act_qa", f, r, tk, c)
    any_recursive = fo.Exists(w, fo.atom("Act_qa", *w))
    fresh = fo.atom("Act_qf", f, r, tk, c)
    body = fo.OrF((recursive, fo.AndF((fo.NotF(any_recursive), fresh))))
    return fo.FOQuery((f, r, tk, c), body, "psi_a_prime")


def recursive_airfare_service(name: str = "tau2") -> SWS:
    """τ2 of Example 2.1: repeated airfare inquiries, latest inquiry wins.

    The airfare state recurses with the paper's rule
    ``qa → (qa, φa), (qf, φa)``.  Below the root, the chain of (qa, qf)
    node pairs processes the airfare inquiries of ``I2, ..., In``
    (Example 2.2's nodes (vj, fj) for j ∈ [2, n]); ψ'a keeps the deepest —
    i.e. latest — nonempty answer.  Hotel/ticket/car answer ``I1`` as in
    τ1.  Note the chain stops at the first message without an airfare
    request (the empty-register cutoff of rule (1)).
    """
    states = ("q0", "qa", "qf", "qh", "qt", "qc")
    transitions = {
        "q0": TransitionRule(
            [
                ("qa", _select_tag("a")),
                ("qh", _select_tag("h")),
                ("qt", _select_tag("t")),
                ("qc", _select_tag("c")),
            ]
        ),
        "qa": TransitionRule([("qa", _select_tag("a")), ("qf", _select_tag("a"))]),
        "qf": TransitionRule(),
        "qh": TransitionRule(),
        "qt": TransitionRule(),
        "qc": TransitionRule(),
    }
    synthesis = {
        "q0": SynthesisRule(_root_synthesis()),
        "qa": SynthesisRule(_latest_wins_synthesis()),
        "qf": SynthesisRule(_offer_synthesis("Ra", 0, "psi_f")),
        "qh": SynthesisRule(_offer_synthesis("Rh", 1, "psi_h")),
        "qt": SynthesisRule(_offer_synthesis("Rt", 2, "psi_t")),
        "qc": SynthesisRule(_offer_synthesis("Rc", 3, "psi_c")),
    }
    return SWS(
        states,
        "q0",
        transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=DB_SCHEMA,
        input_schema=INPUT_PAYLOAD,
        output_arity=OUTPUT_ARITY,
        name=name,
    )


def _pair_synthesis(left_state: str, left_pos: int, right_state: str, right_pos: int) -> fo.FOQuery:
    """Combine two single-aspect registers into one output row.

    E.g. hotel (position 1) + car (position 3) rows merge into
    ``('-', room, '-', car)`` — the shape τhc and τht of Example 5.1 emit.
    """
    blank = Constant(BLANK)
    head = [var(f"y{i}") for i in range(OUTPUT_ARITY)]
    left_terms: list = [blank] * OUTPUT_ARITY
    right_terms: list = [blank] * OUTPUT_ARITY
    left_terms[left_pos] = head[left_pos]
    right_terms[right_pos] = head[right_pos]
    constraints = [
        fo.Equals(head[i], blank)
        for i in range(OUTPUT_ARITY)
        if i not in (left_pos, right_pos)
    ]
    body = fo.AndF(
        [
            fo.atom(f"Act_{left_state}", *left_terms),
            fo.atom(f"Act_{right_state}", *right_terms),
            *constraints,
        ]
    )
    return fo.FOQuery(tuple(head), body, "psi_pair")


def airfare_component(name: str = "tau_a") -> SWS:
    """τa of Example 5.1: flight reservations only."""
    states = ("q0", "qa")
    transitions = {
        "q0": TransitionRule([("qa", _select_tag("a"))]),
        "qa": TransitionRule(),
    }
    synthesis = {
        "q0": SynthesisRule(
            fo.FOQuery(
                tuple(var(f"y{i}") for i in range(OUTPUT_ARITY)),
                fo.atom("Act_qa", *tuple(var(f"y{i}") for i in range(OUTPUT_ARITY))),
                "forward",
            )
        ),
        "qa": SynthesisRule(_offer_synthesis("Ra", 0, "psi_a")),
    }
    return SWS(
        states,
        "q0",
        transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=DB_SCHEMA,
        input_schema=INPUT_PAYLOAD,
        output_arity=OUTPUT_ARITY,
        name=name,
    )


def _two_aspect_component(
    name: str,
    first_tag: str,
    first_catalog: str,
    first_pos: int,
    second_tag: str,
    second_catalog: str,
    second_pos: int,
) -> SWS:
    first_state, second_state = f"q{first_tag}", f"q{second_tag}"
    states = ("q0", first_state, second_state)
    transitions = {
        "q0": TransitionRule(
            [
                (first_state, _select_tag(first_tag)),
                (second_state, _select_tag(second_tag)),
            ]
        ),
        first_state: TransitionRule(),
        second_state: TransitionRule(),
    }
    synthesis = {
        "q0": SynthesisRule(
            _pair_synthesis(first_state, first_pos, second_state, second_pos)
        ),
        first_state: SynthesisRule(
            _offer_synthesis(first_catalog, first_pos, f"psi_{first_tag}")
        ),
        second_state: SynthesisRule(
            _offer_synthesis(second_catalog, second_pos, f"psi_{second_tag}")
        ),
    }
    return SWS(
        states,
        "q0",
        transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=DB_SCHEMA,
        input_schema=INPUT_PAYLOAD,
        output_arity=OUTPUT_ARITY,
        name=name,
    )


def hotel_car_component(name: str = "tau_hc") -> SWS:
    """τhc of Example 5.1: hotel rooms and rental cars together."""
    return _two_aspect_component(name, "h", "Rh", 1, "c", "Rc", 3)


def hotel_ticket_component(name: str = "tau_ht") -> SWS:
    """τht of Example 5.1: hotel rooms and Disney tickets together."""
    return _two_aspect_component(name, "h", "Rh", 1, "t", "Rt", 2)


def travel_mediator():
    """π1 of Example 5.1: the mediator over τa, τhc and τht.

    The root invokes the three components in parallel and synthesizes
    their outputs with ψ1, preferring the hotel+tickets package; each
    child state forwards its component's output register.
    """
    from repro.core.sws import MSG
    from repro.mediator.mediator import Mediator, MediatorTransitionRule

    components = {
        "tau_a": airfare_component(),
        "tau_hc": hotel_car_component(),
        "tau_ht": hotel_ticket_component(),
    }
    f, r, tk, c = var("f"), var("r"), var("tk"), var("c")
    u = tuple(var(n) for n in ("u1", "u2", "u3", "u4"))
    blank = Constant(BLANK)
    flights = fo.atom("Act_s_a", f, blank, blank, blank)
    ht = fo.atom("Act_s_ht", blank, r, tk, blank)
    any_ht = fo.Exists(u, fo.atom("Act_s_ht", *u))
    hc = fo.atom("Act_s_hc", blank, r, blank, c)
    psi1 = fo.FOQuery(
        (f, r, tk, c),
        fo.AndF(
            (
                flights,
                fo.OrF(
                    (
                        fo.AndF((ht, fo.Equals(c, blank))),
                        fo.AndF((fo.NotF(any_ht), hc, fo.Equals(tk, blank))),
                    )
                ),
            )
        ),
        "psi1",
    )
    head = tuple(var(f"x{i}") for i in range(OUTPUT_ARITY))
    forward = fo.FOQuery(head, fo.atom(MSG, *head), "forward")
    transitions = {
        "q1": MediatorTransitionRule(
            [("s_a", "tau_a"), ("s_hc", "tau_hc"), ("s_ht", "tau_ht")]
        ),
        "s_a": MediatorTransitionRule(),
        "s_hc": MediatorTransitionRule(),
        "s_ht": MediatorTransitionRule(),
    }
    synthesis = {
        "q1": SynthesisRule(psi1),
        "s_a": SynthesisRule(forward),
        "s_hc": SynthesisRule(forward),
        "s_ht": SynthesisRule(forward),
    }
    return Mediator(
        ("q1", "s_a", "s_hc", "s_ht"),
        "q1",
        transitions,
        synthesis,
        components,
        name="pi1",
    )


def travel_fsa() -> DFA:
    """Figure 1(a): the sequential FSA specification.

    The alphabet abstracts the sub-services as letters: ``a`` (airfare
    found), ``h`` (hotel found), ``t`` (tickets found), ``c`` (car found).
    The FSA accepts exactly the sequential orderings airfare → hotel →
    (tickets | car): three *rounds* of interaction where the SWS needs one.
    """
    states = ("start", "afterA", "afterH", "done")
    transitions = {
        ("start", "a"): "afterA",
        ("afterA", "h"): "afterH",
        ("afterH", "t"): "done",
        ("afterH", "c"): "done",
    }
    return DFA(states, ("a", "h", "t", "c"), transitions, "start", {"done"})


def sample_database(
    with_tickets: bool = True, with_cars: bool = True
) -> Database:
    """A small offer catalog for the running example."""
    contents = {
        "Ra": [("k1", "EDI-MCO-0800"), ("k1", "EDI-MCO-1230")],
        "Rh": [("k1", "PolynesianResort")],
        "Rt": [("k1", "4DayParkHopper")] if with_tickets else [],
        "Rc": [("k1", "CompactCar")] if with_cars else [],
    }
    return Database(DB_SCHEMA, contents)


def booking_request(key: str = "k1") -> InputSequence:
    """One input message requesting all four aspects for ``key``."""
    message = [(tag, key) for tag in TAGS]
    return InputSequence(INPUT_PAYLOAD, [message])


def repeated_airfare_inquiries(keys: list[str]) -> InputSequence:
    """An input sequence of repeated airfare inquiries (for τ2).

    The first message also carries the hotel/ticket/car requests for the
    first key; later messages are airfare-only refinements.
    """
    if not keys:
        return InputSequence(INPUT_PAYLOAD, [])
    first = [(tag, keys[0]) for tag in TAGS]
    rest = [[("a", key)] for key in keys[1:]]
    return InputSequence(INPUT_PAYLOAD, [first] + rest)
