"""Hand-buildable PL services with letter-encoded languages.

Composition synthesis over SWS(PL, PL) manipulates services as language
acceptors over an alphabet of letters encoded one propositional variable
each, with a dedicated session delimiter ``#`` (the encoding both the Roman
translation and the AFA reduction use).  This module builds:

* :func:`word_service` — a chain service accepting exactly one
  delimiter-terminated symbol sequence (and, per rule (3) semantics,
  ignoring whatever follows it — services are prefix-determined);
* :func:`union_word_service` — a union of such chains below one start
  state, the typical "menu of session shapes" goal of the composition
  benchmarks;
* :func:`encode_letters` — words → input assignments.

Sessions run "letters then #": a component service consumes exactly its
word, so sequential invocation by a mediator concatenates sessions —
the alignment Theorem 5.3's run-to-completion semantics relies on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.sws import MSG, SWS, SWSKind, SynthesisRule, TransitionRule
from repro.errors import SWSDefinitionError
from repro.logic import pl

#: The delimiter symbol terminating a session.
HASH = "#"

#: Propositional variable encoding the delimiter.
HASH_VARIABLE = "hash"


def letter_var(letter: str) -> str:
    """The propositional variable encoding a letter."""
    if letter == HASH:
        return HASH_VARIABLE
    return f"ltr_{letter}"


def exactly(letter: str, alphabet: Iterable[str]) -> pl.Formula:
    """The current message encodes exactly ``letter``.

    ``alphabet`` lists the non-delimiter letters in play; the delimiter is
    always part of the encoding.
    """
    symbols = sorted(set(alphabet)) + [HASH]
    parts: list[pl.Formula] = []
    for other in symbols:
        variable = pl.Var(letter_var(other))
        parts.append(variable if other == letter else pl.Not(variable))
    return pl.conjoin(parts)


def encode_letters(word: Sequence[str]) -> list[frozenset[str]]:
    """Encode a symbol sequence (letters and/or ``#``) as input messages."""
    return [frozenset({letter_var(symbol)}) for symbol in word]


def word_service(
    word: Sequence[str],
    alphabet: Iterable[str],
    name: str | None = None,
) -> SWS:
    """A service accepting exactly the session ``word`` (ending in ``#``).

    The service consumes precisely ``len(word)`` messages: a chain of
    states checks the symbols one per step, and the final state's synthesis
    reads the delimiter in place (so the execution tree's maximum timestamp
    equals the session length — sequential composition aligns).
    """
    word = list(word)
    if not word or word[-1] != HASH:
        raise SWSDefinitionError("session words must end with the delimiter '#'")
    # Interior delimiters are allowed: a goal describing a *sequence of
    # component sessions* (e.g. "a#b#") carries one per session.
    alphabet = sorted(set(alphabet))
    body = word[:-1]
    states = ["w0"] + [f"w{i}" for i in range(1, len(body))] + ["w_end"]
    transitions: dict[str, TransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}
    if not body:
        # The bare-delimiter session "#": a single final start state whose
        # synthesis checks the first message in place (max timestamp 1, so
        # exactly one message is consumed).
        return SWS(
            ("w0",),
            "w0",
            {"w0": TransitionRule()},
            {"w0": SynthesisRule(exactly(HASH, alphabet))},
            kind=SWSKind.PL,
            name=name or "session_#",
        )
    for i, state in enumerate(states[:-1]):
        is_last_link = i == len(body) - 1
        guard = exactly(body[i], alphabet)
        condition = guard if i == 0 else (pl.Var(MSG) & guard)
        target = "w_end" if is_last_link else states[i + 1]
        transitions[state] = TransitionRule([(target, condition)])
        synthesis[state] = SynthesisRule(pl.Var("A1"))
    transitions["w_end"] = TransitionRule()
    synthesis["w_end"] = SynthesisRule(
        (pl.Var(MSG) & exactly(HASH, alphabet)).simplify()
    )
    return SWS(
        states,
        "w0",
        transitions,
        synthesis,
        kind=SWSKind.PL,
        name=name or f"session_{''.join(body)}",
    )


def star_word_service(
    letter: str,
    alphabet: Iterable[str],
    name: str | None = None,
) -> SWS:
    """A *recursive* session service accepting ``letter^k #`` for k ≥ 1.

    The loop state re-enters itself while the letter repeats; the exit
    state's synthesis reads the delimiter in place.  The session core is
    the infinite prefix-free language ``{a#, aa#, aaa#, ...}`` — a
    recursive component in the sense of Table 2's SWS(PL, PL) component
    columns.

    Consumption note: unlike the nonrecursive :func:`word_service`, an
    accepted run's execution tree probes one message past the delimiter
    (the loop branch must die before the tree stops), so the paper's
    ``l_i + 1`` timestamp rule makes a mediator resume one message late.
    Language-level composition (Theorem 5.3's own setting) is unaffected;
    run-level alignment holds for nonrecursive components only — see
    ``mediator.synthesis.mediator_language_nfa``.
    """
    alphabet = sorted(set(alphabet))
    guard = exactly(letter, alphabet)
    end = exactly(HASH, alphabet)
    keep_going = (pl.Var(MSG) & guard).simplify()
    transitions = {
        "s0": TransitionRule([("loop", guard), ("s_end", guard)]),
        "loop": TransitionRule(
            [("loop", keep_going), ("s_end", keep_going)]
        ),
        "s_end": TransitionRule(),
    }
    synthesis = {
        "s0": SynthesisRule(pl.Var("A1") | pl.Var("A2")),
        "loop": SynthesisRule(pl.Var("A1") | pl.Var("A2")),
        "s_end": SynthesisRule((pl.Var(MSG) & end).simplify()),
    }
    return SWS(
        ("s0", "loop", "s_end"),
        "s0",
        transitions,
        synthesis,
        kind=SWSKind.PL,
        name=name or f"star_{letter}",
    )


def union_word_service(
    words: Sequence[Sequence[str]],
    alphabet: Iterable[str],
    name: str = "menu",
) -> SWS:
    """A service accepting any one of several sessions (disjunctive root)."""
    alphabet = sorted(set(alphabet))
    states: list[str] = ["u0"]
    transitions: dict[str, TransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}
    root_targets: list[tuple[str, pl.Formula]] = []
    for b, word in enumerate(words):
        branch = word_service(word, alphabet, name=f"{name}_b{b}")
        prefix = f"b{b}_"
        first_rule = branch.transitions[branch.start]
        for state in branch.states:
            if state == branch.start:
                continue
            states.append(prefix + state)
            rule = branch.transitions[state]
            transitions[prefix + state] = TransitionRule(
                [(prefix + t, q) for t, q in rule.targets]
            )
            synthesis[prefix + state] = branch.synthesis[state]
        for target, query in first_rule.targets:
            root_targets.append((prefix + target, query))
    transitions["u0"] = TransitionRule(root_targets)
    synthesis["u0"] = SynthesisRule(
        pl.disjoin(pl.Var(f"A{i + 1}") for i in range(len(root_targets)))
    )
    return SWS(states, "u0", transitions, synthesis, kind=SWSKind.PL, name=name)
