"""Seeded random SWS generators, one per class of Table 1.

Property-based tests and benchmarks draw services from these generators.
All generators are deterministic in their seed.  Structural guarantees:

* the start state never appears on a right-hand side (Definition 2.1);
* nonrecursive generators produce forward-edge DAGs over an ordered state
  list; recursive generators additionally add back edges among non-start
  states;
* every relational query is safe (head variables bound by body atoms).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.sws import MSG, SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.logic import pl
from repro.logic.cq import Atom, Comparison, ConjunctiveQuery, neq
from repro.logic.terms import Variable, var
from repro.logic.ucq import UnionQuery


def random_formula(
    rng: random.Random, variables: Sequence[str], depth: int = 2
) -> pl.Formula:
    """A random propositional formula over ``variables``."""
    if depth == 0 or not variables or rng.random() < 0.3:
        if not variables:
            return pl.TRUE if rng.random() < 0.5 else pl.FALSE
        leaf: pl.Formula = pl.Var(rng.choice(list(variables)))
        if rng.random() < 0.3:
            leaf = pl.Not(leaf)
        return leaf
    connective = rng.choice(("and", "or", "not"))
    if connective == "not":
        return pl.Not(random_formula(rng, variables, depth - 1))
    parts = [
        random_formula(rng, variables, depth - 1)
        for _ in range(rng.randint(2, 3))
    ]
    return pl.And(parts) if connective == "and" else pl.Or(parts)


def random_pl_sws(
    seed: int,
    n_states: int = 4,
    n_variables: int = 2,
    recursive: bool = False,
    name: str | None = None,
) -> SWS:
    """A random PL service with ``n_states`` states over ``x0..x{v-1}``."""
    rng = random.Random(seed)
    if n_states < 2:
        raise ValueError("need at least a start state and one final state")
    states = [f"q{i}" for i in range(n_states)]
    variables = [f"x{i}" for i in range(n_variables)]
    msg_vars = variables + [MSG]
    transitions: dict[str, TransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}
    # The last state is always final so every service has a leaf.
    for i, state in enumerate(states):
        successors: list[str] = []
        if i < n_states - 1:
            forward = states[i + 1 :]
            n_succ = rng.randint(1, min(3, len(forward)))
            successors = rng.sample(forward, n_succ)
            if recursive and i > 0 and rng.random() < 0.6:
                successors.append(states[rng.randint(1, i)])
        if successors and rng.random() < 0.85 or i == 0:
            targets = [
                (target, random_formula(rng, msg_vars)) for target in successors
            ]
            transitions[state] = TransitionRule(targets)
            k = len(targets)
            registers = [f"A{j + 1}" for j in range(k)]
            synthesis[state] = SynthesisRule(random_formula(rng, registers))
        else:
            transitions[state] = TransitionRule()
            synthesis[state] = SynthesisRule(random_formula(rng, msg_vars))
    # States chosen final above need final-style synthesis; fix state 0 if
    # it ended up with no successors (can't happen: i == 0 forces targets
    # unless no forward states, excluded by n_states >= 2).
    return SWS(
        states,
        states[0],
        transitions,
        synthesis,
        kind=SWSKind.PL,
        name=name or f"pl_{seed}",
    )


DEFAULT_CQ_SCHEMA = DatabaseSchema(
    [
        RelationSchema("R", ("a", "b")),
        RelationSchema("S", ("a", "b")),
    ]
)

DEFAULT_PAYLOAD = RelationSchema("Rin", ("p", "q"))


def _random_transition_cq(rng: random.Random, payload_arity: int, label: str) -> ConjunctiveQuery:
    """A safe transition CQ from {R, S, In, Msg} to the payload schema."""
    pool = ["R", "S", "In", MSG]
    n_atoms = rng.randint(1, 2)
    atoms: list[Atom] = []
    variables: list[Variable] = []
    for i in range(n_atoms):
        rel = rng.choice(pool)
        x, y = var(f"{label}v{2 * i}"), var(f"{label}v{2 * i + 1}")
        # Random joins: reuse an earlier variable sometimes.
        if variables and rng.random() < 0.5:
            x = rng.choice(variables)
        atoms.append(Atom(rel, (x, y)))
        variables.extend([x, y])
    head = tuple(rng.choice(variables) for _ in range(payload_arity))
    comparisons: list[Comparison] = []
    if rng.random() < 0.3 and len(set(variables)) >= 2:
        left, right = rng.sample(sorted(set(variables), key=lambda v: v.name), 2)
        comparisons.append(neq(left, right))
    return ConjunctiveQuery(head, atoms, comparisons, label)


def _random_final_synthesis(
    rng: random.Random, output_arity: int, label: str
) -> UnionQuery:
    """A safe final-state synthesis UCQ over {R, S, In, Msg}."""
    disjuncts = []
    for d in range(rng.randint(1, 2)):
        query = _random_transition_cq(rng, output_arity, f"{label}d{d}")
        disjuncts.append(query)
    return UnionQuery(disjuncts, arity=output_arity, name=label)


def _random_internal_synthesis(
    rng: random.Random, k: int, output_arity: int, label: str
) -> UnionQuery:
    """A synthesis UCQ over the successor registers A1..Ak."""
    disjuncts = []
    for d in range(rng.randint(1, 2)):
        n_atoms = rng.randint(1, min(2, k))
        registers = rng.sample(range(k), n_atoms)
        atoms = []
        variables: list[Variable] = []
        for i, reg in enumerate(registers):
            terms = tuple(var(f"{label}d{d}v{i}_{j}") for j in range(output_arity))
            atoms.append(Atom(f"A{reg + 1}", terms))
            variables.extend(terms)
        head = tuple(rng.choice(variables) for _ in range(output_arity))
        disjuncts.append(ConjunctiveQuery(head, atoms, (), f"{label}d{d}"))
    return UnionQuery(disjuncts, arity=output_arity, name=label)


def _random_fo_synthesis(
    rng: random.Random, output_arity: int, label: str
):
    """A final-state FO synthesis with a sprinkle of negation.

    Takes a random CQ body and, with some probability, guards it with the
    *absence* of an ``S``-fact — the minimal non-monotone feature that
    pushes a service from SWS(CQ, UCQ) into SWS(FO, FO).
    """
    from repro.logic import fo

    base = _random_transition_cq(rng, output_arity, label)
    query = fo.cq_to_fo(base)
    if rng.random() < 0.7:
        u, v = Variable(f"{label}nu"), Variable(f"{label}nv")
        guard = fo.NotF(fo.Exists((u, v), fo.atom("S", u, v)))
        query = fo.FOQuery(
            query.head, fo.AndF([query.formula, guard]), label
        )
    return query


def random_fo_sws(
    seed: int,
    n_states: int = 3,
    recursive: bool = False,
    output_arity: int = 2,
    name: str | None = None,
) -> SWS:
    """A random SWS(FO, FO) service: CQ transitions, FO synthesis.

    Mirrors :func:`random_cq_sws` but with negation in the final synthesis
    rules, so the result classifies into the FO row of Table 1.
    """
    rng = random.Random(seed)
    base = random_cq_sws(
        seed, n_states=n_states, recursive=recursive, output_arity=output_arity
    )
    synthesis = dict(base.synthesis)
    flipped = False
    for state in base.states:
        if base.transitions[state].is_final and (not flipped or rng.random() < 0.5):
            synthesis[state] = SynthesisRule(
                _random_fo_synthesis(rng, output_arity, f"{state}fo")
            )
            flipped = True
    return SWS(
        base.states,
        base.start,
        base.transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=base.db_schema,
        input_schema=base.input_schema,
        output_arity=output_arity,
        name=name or f"fo_{seed}",
    )


def random_cq_sws(
    seed: int,
    n_states: int = 4,
    recursive: bool = False,
    output_arity: int = 2,
    name: str | None = None,
) -> SWS:
    """A random SWS(CQ, UCQ) service over the default two-relation schema."""
    rng = random.Random(seed)
    if n_states < 2:
        raise ValueError("need at least a start state and one final state")
    states = [f"q{i}" for i in range(n_states)]
    payload_arity = DEFAULT_PAYLOAD.arity
    transitions: dict[str, TransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}
    for i, state in enumerate(states):
        make_final = i == n_states - 1 or (i > 0 and rng.random() < 0.3)
        if make_final:
            transitions[state] = TransitionRule()
            synthesis[state] = SynthesisRule(
                _random_final_synthesis(rng, output_arity, f"{state}s")
            )
            continue
        forward = states[i + 1 :]
        n_succ = rng.randint(1, min(2, len(forward)))
        successors = rng.sample(forward, n_succ)
        if recursive and i > 0 and rng.random() < 0.6:
            successors.append(states[rng.randint(1, i)])
        targets = [
            (target, _random_transition_cq(rng, payload_arity, f"{state}t{j}"))
            for j, target in enumerate(successors)
        ]
        transitions[state] = TransitionRule(targets)
        synthesis[state] = SynthesisRule(
            _random_internal_synthesis(rng, len(targets), output_arity, f"{state}s")
        )
    return SWS(
        states,
        states[0],
        transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=DEFAULT_CQ_SCHEMA,
        input_schema=DEFAULT_PAYLOAD,
        output_arity=output_arity,
        name=name or f"cq_{seed}",
    )
