"""Process-wide work counters for the decision procedures.

This is a dependency-free leaf module so that the lowest layers (the PL
formula engine, the AFA engine, the SAT solver, the UCQ expander) can
count work without import cycles.  The public face is
:mod:`repro.analysis.stats`, which re-exports everything here; benchmarks
and analyses read counters through that module.

The counters report *work done* rather than wall-clock: vectors explored
and pre-steps taken by the AFA searches, DPLL calls and decisions, UCQ
expansion disjuncts, interning/compilation cache behaviour, and mediator
candidate counts.  ``STATS`` is a singleton; ``STATS.reset()`` zeroes it
(cache-size gauges included) and returns it for chaining.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Stats:
    """Mutable counter block; attributes are plain ints."""

    # AFA vector searches.
    vectors_explored: int = 0
    pre_steps: int = 0
    afa_compilations: int = 0
    alphabet_symbols: int = 0
    symbol_classes: int = 0

    # PL formula engine.
    intern_hits: int = 0
    intern_misses: int = 0
    simplify_memo_hits: int = 0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0

    # SAT solver.
    sat_calls: int = 0
    dpll_decisions: int = 0

    # UCQ expansion / relational engines.
    expansion_disjuncts: int = 0
    runs_executed: int = 0

    # Mediator procedures.
    component_runs: int = 0
    mediator_candidates: int = 0

    def reset(self) -> "Stats":
        """Zero every counter; returns self for chaining."""
        for field in fields(self):
            setattr(self, field.name, 0)
        return self

    def snapshot(self) -> dict[str, int]:
        """The counters as a plain dict (for JSON export)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    def intern_hit_rate(self) -> float:
        """Fraction of formula constructions served from the intern table."""
        total = self.intern_hits + self.intern_misses
        return self.intern_hits / total if total else 0.0

    def compile_hit_rate(self) -> float:
        """Fraction of compile_mask calls served from the compile cache."""
        total = self.compile_cache_hits + self.compile_cache_misses
        return self.compile_cache_hits / total if total else 0.0

    def symbol_dedup_ratio(self) -> float:
        """Alphabet compression achieved by transition-row dedup (≤ 1.0)."""
        if not self.alphabet_symbols:
            return 1.0
        return self.symbol_classes / self.alphabet_symbols


STATS = Stats()
