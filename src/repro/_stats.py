"""Process-wide work counters for the decision procedures.

This is a dependency-free leaf module so that the lowest layers (the PL
formula engine, the AFA engine, the SAT solver, the UCQ expander) can
count work without import cycles.  The public face is
:mod:`repro.analysis.stats`, which re-exports everything here; benchmarks
and analyses read counters through that module.

The counters report *work done* rather than wall-clock: vectors explored
and pre-steps taken by the AFA searches, DPLL calls and decisions, UCQ
expansion disjuncts, interning/compilation cache behaviour, and mediator
candidate counts.  ``STATS`` is a singleton; ``STATS.reset()`` zeroes it
(cache-size gauges included) and returns it for chaining.

``STATS.reset()`` is a *global* operation: nested or back-to-back
measurements that each reset the singleton clobber one another.  Scoped
measurement goes through :func:`stats_delta` instead — a snapshot-diff
context manager that never mutates the counters, so deltas compose under
nesting (an outer delta includes its inner deltas, and siblings do not
interfere).  :mod:`repro.obs` builds its per-span counter attribution on
the same snapshot-diff primitive.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Stats:
    """Mutable counter block; attributes are plain ints."""

    # AFA vector searches.
    vectors_explored: int = 0
    pre_steps: int = 0
    afa_compilations: int = 0
    afa_engine_patches: int = 0
    alphabet_symbols: int = 0
    symbol_classes: int = 0

    # PL formula engine.
    intern_hits: int = 0
    intern_misses: int = 0
    simplify_memo_hits: int = 0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0

    # SAT solver.
    sat_calls: int = 0
    dpll_decisions: int = 0

    # UCQ expansion / relational engines.
    expansion_disjuncts: int = 0
    runs_executed: int = 0

    # Mediator procedures.
    component_runs: int = 0
    mediator_candidates: int = 0

    # Serving layer (repro.serve).
    serve_cache_hits: int = 0
    serve_cache_misses: int = 0
    serve_jobs_executed: int = 0
    serve_jobs_deduped: int = 0

    # Persistent artifact store (repro.artifacts / repro.serve.store).
    artifact_hits: int = 0
    artifact_misses: int = 0
    artifact_stores: int = 0

    def reset(self) -> "Stats":
        """Zero every counter; returns self for chaining."""
        for field in fields(self):
            setattr(self, field.name, 0)
        return self

    def snapshot(self) -> dict[str, int]:
        """The counters as a plain dict (for JSON export)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    def intern_hit_rate(self) -> float:
        """Fraction of formula constructions served from the intern table."""
        total = self.intern_hits + self.intern_misses
        return self.intern_hits / total if total else 0.0

    def compile_hit_rate(self) -> float:
        """Fraction of compile_mask calls served from the compile cache."""
        total = self.compile_cache_hits + self.compile_cache_misses
        return self.compile_cache_hits / total if total else 0.0

    def symbol_dedup_ratio(self) -> float:
        """Alphabet compression achieved by transition-row dedup (≤ 1.0)."""
        if not self.alphabet_symbols:
            return 1.0
        return self.symbol_classes / self.alphabet_symbols


STATS = Stats()


class StatsDelta:
    """Counter deltas across a ``with`` block, without touching ``STATS``.

    Usage::

        with stats_delta() as work:
            nonempty_pl(service)
        print(work["vectors_explored"], work.nonzero())

    The delta is the element-wise difference between the counters at exit
    and at enter; reading it *inside* the block diffs against the live
    counters instead, so progress can be inspected mid-measurement.
    Because nothing is reset, deltas nest and run back-to-back without
    clobbering each other or the global singleton.
    """

    def __init__(self, stats: Stats | None = None) -> None:
        self._stats = stats if stats is not None else STATS
        self._before: dict[str, int] | None = None
        self._after: dict[str, int] | None = None

    def __enter__(self) -> "StatsDelta":
        self._before = self._stats.snapshot()
        self._after = None
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Record the delta even when the block raises: partial work done
        # before an exception is still work done.
        self._after = self._stats.snapshot()

    def as_dict(self) -> dict[str, int]:
        """The full delta (every counter, zeros included)."""
        if self._before is None:
            raise RuntimeError("stats_delta() read before entering the block")
        after = self._after if self._after is not None else self._stats.snapshot()
        return {name: after[name] - self._before[name] for name in after}

    def nonzero(self) -> dict[str, int]:
        """Only the counters that moved during the block."""
        return {name: value for name, value in self.as_dict().items() if value}

    def __getitem__(self, name: str) -> int:
        return self.as_dict()[name]

    def get(self, name: str, default: int = 0) -> int:
        return self.as_dict().get(name, default)

    def items(self):
        return self.as_dict().items()

    def __repr__(self) -> str:
        if self._before is None:
            return "StatsDelta(unentered)"
        return f"StatsDelta({self.nonzero()!r})"


def stats_delta(stats: Stats | None = None) -> StatsDelta:
    """A scoped snapshot-diff over ``STATS`` (or an explicit ``Stats``)."""
    return StatsDelta(stats)
