"""Aggregation and cost models in action synthesis (Section 6 future work).

The paper closes with: "a practical topic for future work is to extend
SWS's by incorporating aggregation and a cost model into action synthesis
to find, e.g., a travel package with minimum total cost when airfare,
hotel and other components are all taken together.  While aggregation on
composed services is certainly needed in practice, we are not aware of any
formal study of this issue."

This module supplies that extension in the shape the SWS model suggests:

* a :class:`CostModel` prices the *values* appearing in output rows (one
  price table per output position, with don't-care positions free), so a
  row's cost is the total cost of the package it denotes;
* an :class:`AggregateQuery` wraps an ordinary synthesis query and applies
  an aggregate selector to its answer — :func:`min_cost_synthesis` builds
  the arg-min selector the travel example wants.

An ``AggregateQuery`` exposes the same ``arity`` / ``evaluate`` interface
as the CQ/UCQ/FO queries, so it drops into any synthesis rule; the run
engine needs no changes.  Note the model-theoretic price: aggregation
breaks the positivity/monotonicity the Section 4 expansion machinery
leans on, so the decision procedures deliberately reject services with
aggregate rules (they classify as FO-like through
:func:`repro.core.classes.classify` dispatching on query types).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.data.relation import Relation, Row
from repro.errors import QueryError


@dataclass(frozen=True)
class CostModel:
    """Prices for the values appearing at each output position.

    ``prices[i]`` maps a value at output position ``i`` to its cost;
    values absent from the table cost ``default`` (don't-care markers
    should be priced 0 via ``free_values``).
    """

    prices: tuple[Mapping[Any, float], ...]
    default: float = 0.0
    free_values: frozenset[Any] = field(default_factory=frozenset)

    def row_cost(self, row: Row) -> float:
        """Total cost of one output row."""
        if len(row) != len(self.prices):
            raise QueryError(
                f"row arity {len(row)} does not match the cost model "
                f"({len(self.prices)} positions)"
            )
        total = 0.0
        for position, value in enumerate(row):
            if value in self.free_values:
                continue
            total += self.prices[position].get(value, self.default)
        return total

    def cheapest(self, rows) -> frozenset[Row]:
        """The rows of minimum total cost (all ties)."""
        rows = list(rows)
        if not rows:
            return frozenset()
        best = min(self.row_cost(row) for row in rows)
        return frozenset(row for row in rows if self.row_cost(row) == best)


#: An aggregate selector takes the inner query's answers and returns the
#: selected subset (or any derived same-arity rows).
Selector = Callable[[frozenset], frozenset]


class AggregateQuery:
    """A synthesis query post-processed by an aggregate selector.

    Wraps any query object exposing ``arity`` and
    ``evaluate(env) -> frozenset[Row]``; drops into SWS/mediator synthesis
    rules unchanged.
    """

    def __init__(self, inner, selector: Selector, name: str = "agg") -> None:
        self.inner = inner
        self.selector = selector
        self.name = name

    @property
    def arity(self) -> int:
        """The inner query's head arity."""
        return self.inner.arity

    def relations(self) -> frozenset[str]:
        """Relations the inner query mentions."""
        return self.inner.relations()

    def evaluate(self, env: Mapping[str, Relation]) -> frozenset[Row]:
        """Inner answers filtered through the selector."""
        return frozenset(self.selector(self.inner.evaluate(env)))

    def __repr__(self) -> str:
        return f"AggregateQuery({self.name!r} over {self.inner!r})"


def min_cost_synthesis(inner, cost_model: CostModel, name: str = "argmin"):
    """The arg-min aggregate: keep only the cheapest packages.

    The paper's motivating aggregate — "a travel package with minimum
    total cost when airfare, hotel and other components are all taken
    together".
    """
    return AggregateQuery(inner, cost_model.cheapest, name)


def sum_per_group(
    rows: frozenset, group_positions: tuple[int, ...], value_of: Callable[[Row], float]
) -> dict[tuple, float]:
    """Grouped aggregation helper: sum ``value_of`` per group key.

    Not used by any synthesis rule directly; exported for cost-model
    reporting in examples and benchmarks.
    """
    totals: dict[tuple, float] = {}
    for row in rows:
        key = tuple(row[p] for p in group_positions)
        totals[key] = totals.get(key, 0.0) + value_of(row)
    return totals
