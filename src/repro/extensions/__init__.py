"""Extensions the paper proposes as future work (Section 6).

* :mod:`~repro.extensions.aggregation` — "a practical topic for future
  work is to extend SWS's by incorporating aggregation and a cost model
  into action synthesis to find, e.g., a travel package with minimum total
  cost": cost models over output rows and aggregate-selecting synthesis.
* :mod:`~repro.extensions.sessions` — the delimiter-based multi-session
  processing sketched at the end of Section 2's overview: "one can treat a
  long (possibly infinite) input sequence as a list of consecutive
  sessions, by adding a delimiter # ... such that actions are committed
  whenever # is encountered".
"""

from repro.extensions.aggregation import (
    AggregateQuery,
    CostModel,
    min_cost_synthesis,
)
from repro.extensions.sessions import SessionOutcome, run_sessions

__all__ = [
    "AggregateQuery",
    "CostModel",
    "SessionOutcome",
    "min_cost_synthesis",
    "run_sessions",
]
