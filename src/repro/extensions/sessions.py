"""Delimiter-separated multi-session processing (Section 2 overview).

The paper's notion of session is flexible — one input sequence, one
commit — but the overview notes that "one can also treat a long (possibly
infinite) input sequence as a list of consecutive sessions, by adding a
delimiter # to indicate the end of a session, such that actions are
committed whenever # is encountered".

:func:`run_sessions` implements exactly that driver loop on top of the
single-session run engine: split the input at delimiter messages, run the
service once per segment, commit each session's actions against the
evolving database, and return the per-session outcomes.  This is the one
place in the library where the local database changes between runs — in
accordance with the paper's assumption that it is fixed *within* each
session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.run import run_relational
from repro.core.sws import SWS
from repro.data.actions import ActionLog, Interpretation, commit_actions
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation, Row

#: Decides whether an input message is a session delimiter.
DelimiterPredicate = Callable[[Relation], bool]


@dataclass
class SessionOutcome:
    """One committed session: its output, action log and post-database."""

    index: int
    output: Relation
    log: ActionLog
    database_after: Database


def split_sessions(
    inputs: InputSequence, is_delimiter: DelimiterPredicate
) -> list[InputSequence]:
    """Split an input sequence at delimiter messages.

    Delimiter messages are consumed by the split (they carry no payload for
    the service); a trailing segment without a delimiter still forms a
    session, and empty segments (consecutive delimiters) are kept — an
    empty session is a legal, silent run.
    """
    segments: list[list] = [[]]
    for j in range(1, len(inputs) + 1):
        message = inputs.message(j)
        if is_delimiter(message):
            segments.append([])
        else:
            segments[-1].append(list(message.rows))
    if segments and not segments[-1] and len(segments) > 1:
        segments.pop()
    return [InputSequence(inputs.schema, segment) for segment in segments]


def tag_delimiter(tag_position: int, tag_value) -> DelimiterPredicate:
    """A delimiter predicate: any row carries the given tag value."""

    def predicate(message: Relation) -> bool:
        return any(row[tag_position] == tag_value for row in message)

    return predicate


def run_sessions(
    sws: SWS,
    database: Database,
    inputs: InputSequence,
    is_delimiter: DelimiterPredicate,
    interpretation: Interpretation,
) -> list[SessionOutcome]:
    """Run consecutive sessions, committing actions at each delimiter.

    Returns one :class:`SessionOutcome` per session, in order; each
    session runs against the database produced by the previous session's
    commit.
    """
    outcomes: list[SessionOutcome] = []
    current = database
    for index, segment in enumerate(split_sessions(inputs, is_delimiter)):
        result = run_relational(sws, current, segment)
        current, log = commit_actions(current, result.output, interpretation)
        outcomes.append(
            SessionOutcome(
                index=index,
                output=result.output,
                log=log,
                database_after=current,
            )
        )
    return outcomes
