"""The validation problem (Section 4).

    Given τ and an instance O of the external schema, do there exist D and
    I such that τ(D, I) = O (exactly)?

Validation is used for e.g. fraud detection: can this observed transaction
be the result of a run of the service?

* ``SWS(PL, PL)`` — :func:`validate_pl`: O is a single truth value; both
  cases reduce to a vector search (Theorem 4.1(3) notes validation and
  non-emptiness coincide for O = true; O = false searches for a rejected
  word over the same vector space).
* ``SWS_nr(CQ, UCQ)`` — :func:`validate_cq_nr`: the NEXPTIME small-model
  procedure, guided by the expansion: for every session length up to
  saturation and every assignment of output tuples to expansion disjuncts,
  freeze the chosen disjunct bodies with the head mapped to the tuple, and
  re-run the candidate instance.  The search enumerates identifications of
  the frozen nulls with output constants up to a budget; exceeding it
  yields UNKNOWN (the problem is NEXPTIME-complete, so the exponential
  candidate space is inherent).
* ``SWS(CQ, UCQ)`` and FO classes — undecidable; bounded variants.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Sequence

from repro.analysis.verdict import Answer, Verdict
from repro.core.classes import SWSClass, classify, require_class
from repro.guard import checkpoint, ensure_guard, guarded, register_span
from repro.obs import traced
from repro.core.pl_semantics import to_afa
from repro.core.run import run_relational
from repro.core.sws import SWS, SWSKind
from repro.core.unfold import expand, saturation_length
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Row
from repro.errors import AnalysisError
from repro.logic.cq import ConjunctiveQuery, LabeledNull
from repro.logic.terms import Constant


@traced("validate_pl_nr_sat", kind="analysis")
@guarded()
def validate_pl_nr_sat(sws: SWS, output: bool) -> Answer:
    """Exact validation for SWS_nr(PL, PL) via SAT (the NP procedure).

    ``O = true`` asks for an accepted input — the non-emptiness encoding;
    ``O = false`` asks for a rejected one — the negated value formula.
    Session lengths 0..depth+1 suffice: a nonrecursive service's value on
    longer inputs equals its value at length depth+1 (no node reads
    further), so a witness of either polarity exists at some bounded
    length iff it exists at all.
    """
    from repro.analysis.nonemptiness import pl_nr_value_formula
    from repro.core.run import run_pl
    from repro.logic import pl
    from repro.logic.sat import model as sat_model

    require_class(sws, SWSClass.PL_PL_NR, "validate_pl_nr_sat")
    variables = sorted(sws.input_variables())
    for n in range(0, sws.depth() + 2):
        checkpoint("validate_pl_nr_sat", depth=n)
        formula = pl_nr_value_formula(sws, n)
        target = formula if output else pl.Not(formula)
        assignment = sat_model(target)
        if assignment is None:
            continue
        word = [
            frozenset(v for v in variables if f"in{j}_{v}" in assignment)
            for j in range(1, n + 1)
        ]
        if run_pl(sws, word).output != output:
            raise AnalysisError("SAT witness failed re-execution (encoding bug)")
        return Answer.yes(witness=word, detail=f"SAT at session length {n}")
    return Answer.no(
        detail=f"no session up to depth+1 outputs {str(output).lower()}"
    )


@traced("validate_pl", kind="analysis")
@guarded()
def validate_pl(sws: SWS, output: bool) -> Answer:
    """Exact validation for SWS(PL, PL).

    Searches the valuation-vector space for a word with the requested
    output value; BFS yields a shortest witness.
    """
    require_class(sws, SWSClass.PL_PL, "validate_pl")
    afa = to_afa(sws)
    if output:
        witness = afa.accepting_witness()
        if witness is None:
            return Answer.no(detail="service accepts nothing")
        return Answer.yes(witness=list(witness))
    # Search for a rejected word: same reachability, inverted acceptance.
    witness = afa.rejecting_witness()
    if witness is None:
        return Answer.no(detail="service accepts every word")
    return Answer.yes(witness=list(witness))


def _freeze_disjunct_for_tuple(
    disjunct: ConjunctiveQuery, row: Row, null_offset: int
) -> dict[str, set[Row]] | None:
    """Freeze a disjunct's body with its head unified against ``row``.

    Head variables take the row's values; other variables become fresh
    labeled nulls (offset to stay disjoint across choices).  Returns the
    facts, or ``None`` when the head cannot match the row (constant clash
    or inequality violation).
    """
    normalized = disjunct.normalized()
    if normalized is None:
        return None
    freeze: dict[Any, Any] = {}
    for term, value in zip(normalized.head, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
            continue
        bound = freeze.get(term)
        if bound is None:
            freeze[term] = value
        elif bound != value:
            return None
    for i, variable in enumerate(sorted(normalized.variables())):
        freeze.setdefault(variable, LabeledNull(null_offset + i))
    if not normalized._inequalities_hold(freeze):
        return None
    facts, _head = normalized._freeze(freeze)
    return facts


def _candidate_instances(
    sws: SWS,
    disjuncts: Sequence[ConjunctiveQuery],
    output_rows: Sequence[Row],
    session_length: int,
    merge_budget: int,
) -> Iterable[tuple[Database, InputSequence]]:
    """Candidate (D, I) instances covering every output tuple.

    One disjunct choice per output row; nulls are either left fresh (the
    most general candidate) or merged with output constants, up to
    ``merge_budget`` merge patterns per choice.
    """
    from repro.analysis.nonemptiness import witness_from_disjunct  # noqa: F401

    choices = itertools.product(range(len(disjuncts)), repeat=len(output_rows))
    for choice in choices:
        facts: dict[str, set[Row]] = {}
        failed = False
        offset = 0
        for row, index in zip(output_rows, choice):
            frozen = _freeze_disjunct_for_tuple(disjuncts[index], row, offset)
            offset += 1000
            if frozen is None:
                failed = True
                break
            for relation, rows in frozen.items():
                facts.setdefault(relation, set()).update(rows)
        if failed:
            continue
        yield _facts_to_instance(sws, facts, session_length)
        # Merged variants: map every null to each output constant in turn
        # (a limited identification enumeration; the full NEXPTIME search
        # would consider all partitions).
        constants = sorted(
            {v for row in output_rows for v in row}, key=repr
        )
        nulls = sorted(
            {
                v
                for rows in facts.values()
                for row in rows
                for v in row
                if isinstance(v, LabeledNull)
            },
            key=lambda n: n.index,
        )
        produced = 0
        for null in nulls:
            for constant in constants:
                if produced >= merge_budget:
                    break
                merged: dict[str, set[Row]] = {
                    rel: {
                        tuple(constant if v == null else v for v in row)
                        for row in rows
                    }
                    for rel, rows in facts.items()
                }
                produced += 1
                yield _facts_to_instance(sws, merged, session_length)


def _facts_to_instance(
    sws: SWS, facts: dict[str, set[Row]], session_length: int
) -> tuple[Database, InputSequence]:
    def concrete(value: Any) -> Any:
        if isinstance(value, LabeledNull):
            return f"@null{value.index}"
        return value

    db_contents: dict[str, list[tuple]] = {}
    messages: dict[int, list[tuple]] = {}
    for relation, rows in facts.items():
        rows_c = [tuple(concrete(v) for v in row) for row in rows]
        if relation.startswith("In_"):
            j = int(relation.split("_", 1)[1])
            messages.setdefault(j, []).extend(rows_c)
        else:
            db_contents.setdefault(relation, []).extend(rows_c)
    database = Database(sws.db_schema, db_contents)
    assert sws.input_schema is not None
    inputs = InputSequence(
        sws.input_schema,
        [messages.get(j, []) for j in range(1, session_length + 1)],
    )
    return database, inputs


@traced("validate_cq_nr", kind="analysis")
@guarded()
def validate_cq_nr(
    sws: SWS,
    output_rows: Iterable[Row],
    merge_budget: int = 64,
) -> Answer:
    """Validation for SWS_nr(CQ, UCQ): the guided small-model search.

    Exact NO for the empty output requires only running the empty instance
    family; for nonempty outputs the procedure is sound (verified YES by
    re-execution) and reports UNKNOWN when the candidate space is exhausted
    without a hit — completeness would need the full exponential
    identification enumeration the NEXPTIME bound licenses.
    """
    require_class(sws, SWSClass.CQ_UCQ_NR, "validate_cq_nr")
    rows = sorted({tuple(r) for r in output_rows}, key=repr)
    if sws.output_arity is not None:
        for row in rows:
            if len(row) != sws.output_arity:
                raise AnalysisError(
                    f"output row {row} has arity {len(row)}, "
                    f"expected {sws.output_arity}"
                )
    assert sws.input_schema is not None
    if not rows:
        # Exact: the run on the all-empty instance is the canonical
        # candidate — every query is positive, so if any instance yields an
        # empty output the empty instance does.
        empty = Database.empty(sws.db_schema)
        no_input = InputSequence(sws.input_schema, [])
        if not run_relational(sws, empty, no_input).output:
            return Answer.yes(witness=(empty, no_input))
        return Answer.no(detail="even the empty instance produces output")
    target = frozenset(rows)
    for n in range(0, saturation_length(sws) + 1):
        expansion = expand(sws, n)
        disjuncts = [d for d in expansion.disjuncts if d.is_satisfiable()]
        if not disjuncts:
            continue
        for database, inputs in _candidate_instances(
            sws, disjuncts, rows, n, merge_budget
        ):
            checkpoint("validate_cq_nr", frontier=len(disjuncts), depth=n)
            if run_relational(sws, database, inputs).output.rows == target:
                return Answer.yes(witness=(database, inputs), detail=f"n={n}")
    return Answer.unknown(detail="candidate space exhausted")


def validate(sws: SWS, output, **kwargs) -> Answer:
    """Class-dispatching validation analysis.

    ``output`` is a boolean for PL services and an iterable of output rows
    for relational ones.  ``guard=`` (a :class:`repro.guard.Guard`,
    :class:`~repro.guard.Budget` or legacy ``int`` step budget) is
    forwarded to every branch.
    """
    guard = kwargs.pop("guard", None)
    cls = classify(sws)
    if cls in (SWSClass.PL_PL, SWSClass.PL_PL_NR):
        return validate_pl(sws, bool(output), guard=guard)
    if cls is SWSClass.CQ_UCQ_NR:
        return validate_cq_nr(sws, output, guard=guard, **kwargs)
    # Recursive CQ and FO validation are undecidable (Theorem 4.1(1)-(2));
    # fall back to a bounded search through candidate session lengths.
    return _validate_bounded(sws, output, guard=guard, **kwargs)


@traced("validate_fo_bounded", kind="analysis")
@guarded()
def _validate_bounded(
    sws: SWS,
    output_rows: Iterable[Row],
    max_session_length: int = 3,
    max_domain: int = 2,
    max_rows: int = 1,
    budget=20000,
) -> Answer:
    """Bounded validation for undecidable classes: sound YES / UNKNOWN.

    ``budget`` caps the search: a legacy ``int`` counts runs, a
    :class:`repro.guard.Budget`/:class:`~repro.guard.Guard` adds deadline
    and memory ceilings.
    """
    from repro.analysis.nonemptiness import _small_databases

    if sws.kind is not SWSKind.RELATIONAL:
        raise AnalysisError("_validate_bounded expects a relational SWS")
    assert sws.input_schema is not None
    target = frozenset(tuple(r) for r in output_rows)
    domain_values: list[Any] = list(range(max_domain))
    domain_values.extend(
        sorted(
            {v for row in target for v in row} | set(sws.query_constants()),
            key=repr,
        )
    )
    arity = sws.input_schema.arity
    message_pool = list(itertools.product(domain_values, repeat=arity))
    runs = 0
    with ensure_guard(budget).activate():
        for database in _small_databases(sws, domain_values, max_rows):
            for n in range(0, max_session_length + 1):
                for combo in itertools.product(
                    [()] + [(m,) for m in message_pool], repeat=n
                ):
                    inputs = InputSequence(
                        sws.input_schema, [list(c) for c in combo]
                    )
                    runs += 1
                    checkpoint("validate_fo_bounded", depth=n)
                    if run_relational(sws, database, inputs).output.rows == target:
                        return Answer.yes(witness=(database, inputs))
    return Answer.unknown(detail=f"exhausted bounds after {runs} runs")


register_span(
    "validate_pl_nr_sat",
    "per-session-length SAT loop (both output polarities)",
    "Theorem 4.1(3): NP validation for SWS_nr(PL, PL)",
)
register_span(
    "validate_cq_nr",
    "guided candidate-instance loop",
    "Theorem 4.1(2): NEXPTIME validation for SWS_nr(CQ, UCQ)",
)
register_span(
    "validate_fo_bounded",
    "bounded (D, I) instance enumeration (one step per run)",
    "Theorem 4.1(1): undecidable validation cells, sound YES/UNKNOWN",
)
