"""Decision procedures for SWS's — Table 1 of the paper.

For each class and each problem (non-emptiness, validation, equivalence)
this package implements the procedure realizing the paper's upper bound,
or — for the undecidable cells — a sound bounded semi-procedure returning
three-valued :class:`~repro.analysis.verdict.Verdict` results:

=======================  ==================  ====================  ====================
class                    non-emptiness       validation            equivalence
=======================  ==================  ====================  ====================
SWS(PL, PL)              AFA vector search   AFA vector search     AFA pair search
SWS_nr(PL, PL)           SAT (DPLL)          SAT (DPLL)            AFA pair search
SWS(CQ, UCQ)             bounded unfolding   bounded search        bounded search
SWS_nr(CQ, UCQ)          UCQ≠ expansion      small-model search    Klug containment
SWS(FO, FO) (+nr)        bounded search      bounded search        bounded search
=======================  ==================  ====================  ====================
"""

from repro.analysis.stats import STATS, Stats
from repro.analysis.verdict import Verdict, Answer
from repro.analysis.nonemptiness import (
    nonempty,
    nonempty_cq,
    nonempty_cq_nr,
    nonempty_fo_bounded,
    nonempty_pl,
    nonempty_pl_nr_sat,
)
from repro.analysis.validation import (
    validate,
    validate_cq_nr,
    validate_pl,
    validate_pl_nr_sat,
)
from repro.analysis.containment import (
    contained,
    contained_cq,
    contained_cq_nr,
    contained_pl,
)
from repro.analysis.equivalence import (
    equivalent,
    equivalent_cq,
    equivalent_cq_nr,
    equivalent_fo_bounded,
    equivalent_pl,
)

__all__ = [
    "Answer",
    "STATS",
    "Stats",
    "Verdict",
    "contained",
    "contained_cq",
    "contained_cq_nr",
    "contained_pl",
    "equivalent",
    "equivalent_cq",
    "equivalent_cq_nr",
    "equivalent_fo_bounded",
    "equivalent_pl",
    "nonempty",
    "nonempty_cq",
    "nonempty_cq_nr",
    "nonempty_fo_bounded",
    "nonempty_pl",
    "nonempty_pl_nr_sat",
    "validate",
    "validate_cq_nr",
    "validate_pl",
    "validate_pl_nr_sat",
]
