"""k-prefix recognizable languages (Theorem 5.1(4,5)).

The paper's decidable general-PL composition cases rest on the notion of
*k-prefix recognizable* languages: "languages for which membership is
determined by the first k symbols of the input sequence, for some k ∈ N".
Every SWS_nr(PL, PL) service defines one (its depth bounds the inspected
prefix), and every MDT_nr(PL) mediator over nonrecursive components can
only define such languages — so goals outside the class are immediately
non-composable, and goals inside it bound the mediators worth trying.

This module decides the notion on automata:

* :func:`is_prefix_recognizable` / :func:`prefix_bound` — whether a
  regular language is k-prefix recognizable, and the least such k;
* :func:`sws_prefix_bound` — the same for a PL service's language, via
  its AFA/NFA translation.

The criterion: determinize; call a state *constant* when the language from
it is ∅ or Σ*; the language is k-prefix recognizable iff every state
reachable by a path of length ≥ k is constant.  The least k is
1 + (the longest path from the initial state to a non-constant state),
which is finite iff no non-constant state lies on a reachable cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.core.classes import SWSClass, require_class
from repro.obs import traced
from repro.core.pl_semantics import sws_language_nfa_variables
from repro.core.sws import SWS


def _constant_states(dfa: DFA) -> frozenset:
    """States from which the residual language is ∅ or Σ*."""
    # Residual ∅: no final state reachable.
    # Residual Σ*: no non-final state reachable.
    reach: dict = {}
    for state in dfa.states:
        seen = set()
        queue = deque([state])
        hits_final = hits_nonfinal = False
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            if current in dfa.finals:
                hits_final = True
            else:
                hits_nonfinal = True
            for symbol in dfa.alphabet:
                queue.append(dfa.step(current, symbol))
        reach[state] = not (hits_final and hits_nonfinal)
    return frozenset(s for s, constant in reach.items() if constant)


@traced("prefix_bound", kind="analysis")
def prefix_bound(nfa: NFA) -> int | None:
    """The least k such that L(nfa) is k-prefix recognizable, else ``None``.

    ``k = 0`` means membership is constant (∅ or Σ*).
    """
    dfa = nfa.determinize()
    constants = _constant_states(dfa)
    # Longest path from the initial state through non-constant states; a
    # cycle among reachable non-constant states means no finite bound.
    depth: dict = {dfa.initial: 0}
    if dfa.initial in constants:
        return 0
    longest = 0
    in_progress: set = set()

    def visit(state, d: int) -> int | None:
        nonlocal longest
        if state in constants:
            return 0
        if state in in_progress:
            return None  # cycle through a non-constant state
        in_progress.add(state)
        best = 0
        for symbol in dfa.alphabet:
            target = dfa.step(state, symbol)
            sub = visit(target, d + 1)
            if sub is None:
                return None
            best = max(best, sub + 1)
        in_progress.discard(state)
        longest = max(longest, best)
        return best

    result = visit(dfa.initial, 0)
    if result is None:
        return None
    return result


def is_prefix_recognizable(nfa: NFA, k: int | None = None) -> bool:
    """Whether L(nfa) is k-prefix recognizable (for the given k, or any)."""
    bound = prefix_bound(nfa)
    if bound is None:
        return False
    return True if k is None else bound <= k


@traced("sws_prefix_bound", kind="analysis")
def sws_prefix_bound(sws: SWS, variables: Iterable[str] | None = None) -> int | None:
    """The prefix bound of a PL service's language.

    For a nonrecursive service this is at most ``depth + 1``; a recursive
    service may or may not be prefix recognizable — the counter families
    are the standard non-examples, delimiter-terminated services the
    standard examples.
    """
    require_class(sws, SWSClass.PL_PL, "sws_prefix_bound")
    nfa = sws_language_nfa_variables(sws, variables)
    return prefix_bound(nfa)
