"""The non-emptiness problem (Section 4).

    Given τ, do there exist a database D and an input sequence I such that
    τ(D, I) is nonempty?

Procedures per class, matching Theorem 4.1:

* ``SWS(PL, PL)`` — :func:`nonempty_pl`: translate to an AFA over
  (state, register) pairs and search the valuation-vector space (the PSPACE
  algorithm; the search is breadth-first, so witnesses are shortest).
* ``SWS_nr(PL, PL)`` — :func:`nonempty_pl_nr_sat`: unfold the bounded-depth
  run into a propositional formula over per-step input variables and ask
  DPLL (the NP upper bound made literal).
* ``SWS_nr(CQ, UCQ)`` — :func:`nonempty_cq_nr`: expand into UCQ≠ at the
  saturation length and test disjunct satisfiability; a satisfiable
  disjunct's canonical instance decodes into a concrete witness (D, I).
* ``SWS(CQ, UCQ)`` — :func:`nonempty_cq`: iterate the expansion over
  session lengths (sound and complete in the limit; EXPTIME-complete with
  the exponential length bound, so the budget is explicit).
* ``SWS(FO, FO)`` — :func:`nonempty_fo_bounded`: undecidable; bounded
  instance search, sound YES / UNKNOWN.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence

from repro.analysis.verdict import Answer, Verdict
from repro.core.classes import SWSClass, classify, is_in_class, require_class
from repro.guard import checkpoint, ensure_guard, guarded, register_span
from repro.obs import traced
from repro.core.pl_semantics import to_afa
from repro.core.run import run, run_pl, run_relational
from repro.core.sws import MSG, SWS, SWSKind
from repro.core.unfold import expand, input_relation_name, saturation_length
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.errors import AnalysisError
from repro.logic import pl
from repro.logic.cq import ConjunctiveQuery, LabeledNull
from repro.logic.sat import model as sat_model
from repro.logic.terms import Variable


# -- PL ------------------------------------------------------------------------


@traced("nonempty_pl", kind="analysis")
@guarded()
def nonempty_pl(sws: SWS) -> Answer:
    """Exact non-emptiness for SWS(PL, PL) via the AFA vector search."""
    require_class(sws, SWSClass.PL_PL, "nonempty_pl")
    witness = to_afa(sws).accepting_witness()
    if witness is None:
        return Answer.no(detail="vector space exhausted")
    return Answer.yes(witness=list(witness), detail="AFA vector search")


def _input_substitution(
    variables: Sequence[str], j: int, in_range: bool
) -> dict[str, pl.Formula]:
    if in_range:
        return {v: pl.Var(f"in{j}_{v}") for v in variables}
    return {v: pl.FALSE for v in variables}


def pl_nr_value_formula(sws: SWS, session_length: int) -> pl.Formula:
    """τ's output on a symbolic input of length ``n`` as a PL formula.

    Variables ``in{j}_{v}`` encode "input variable v is true in Ij".  The
    formula is satisfiable iff some length-``n`` input makes τ output true.
    """
    require_class(sws, SWSClass.PL_PL_NR, "pl_nr_value_formula")
    variables = sorted(sws.input_variables())
    n = session_length

    def value(state: str, j: int, msg: pl.Formula) -> pl.Formula:
        rule = sws.transitions[state]
        sigma = sws.synthesis[state].query
        assert isinstance(sigma, pl.Formula)
        if rule.is_final:
            substitution = _input_substitution(variables, j, j <= n)
            substitution[MSG] = msg
            return sigma.substitute(substitution).simplify()
        if j > n:
            return pl.FALSE
        substitution = _input_substitution(variables, j, True)
        substitution[MSG] = msg
        child_values: list[pl.Formula] = []
        for target, phi in rule.targets:
            assert isinstance(phi, pl.Formula)
            child_msg = phi.substitute(substitution).simplify()
            child_values.append(value(target, j + 1, child_msg))
        register_sub = {
            name: child_values[position]
            for name, position in sws.successor_register_aliases(state).items()
        }
        gathered = sigma.substitute(register_sub).simplify()
        if state == sws.start:
            return gathered
        return (msg & gathered).simplify()

    return value(sws.start, 1, pl.FALSE)


@traced("nonempty_pl_nr_sat", kind="analysis")
@guarded()
def nonempty_pl_nr_sat(sws: SWS) -> Answer:
    """Exact non-emptiness for SWS_nr(PL, PL) via SAT (the NP procedure).

    Tries session lengths 0..depth+1 — beyond the dependency depth no input
    message is ever consumed, so longer sessions add nothing.
    """
    require_class(sws, SWSClass.PL_PL_NR, "nonempty_pl_nr_sat")
    variables = sorted(sws.input_variables())
    for n in range(0, sws.depth() + 2):
        checkpoint("nonempty_pl_nr_sat", depth=n)
        formula = pl_nr_value_formula(sws, n)
        assignment = sat_model(formula)
        if assignment is None:
            continue
        word = [
            frozenset(v for v in variables if f"in{j}_{v}" in assignment)
            for j in range(1, n + 1)
        ]
        # Defensive cross-check: the decoded word must actually be accepted.
        if not run_pl(sws, word).output:
            raise AnalysisError("SAT witness failed re-execution (encoding bug)")
        return Answer.yes(witness=word, detail=f"SAT at session length {n}")
    return Answer.no(detail="all session lengths up to depth+1 UNSAT")


# -- CQ/UCQ --------------------------------------------------------------------


def witness_from_disjunct(
    sws: SWS, disjunct: ConjunctiveQuery, session_length: int
) -> tuple[Database, InputSequence]:
    """Decode a satisfiable expansion disjunct into a concrete (D, I).

    The disjunct's canonical instance supplies the facts; labeled nulls
    become fresh string values distinct from every constant.
    """
    canonical = disjunct.canonical_instance()
    if canonical is None:
        raise AnalysisError("cannot decode witness from unsatisfiable disjunct")
    facts, _head = canonical

    def concrete(value: Any) -> Any:
        if isinstance(value, LabeledNull):
            return f"@null{value.index}"
        return value

    db_contents: dict[str, list[tuple]] = {}
    messages: dict[int, list[tuple]] = {}
    for relation, rows in facts.items():
        rows_c = [tuple(concrete(v) for v in row) for row in rows]
        if relation.startswith("In_"):
            j = int(relation.split("_", 1)[1])
            messages.setdefault(j, []).extend(rows_c)
        else:
            db_contents.setdefault(relation, []).extend(rows_c)
    database = Database(sws.db_schema, db_contents)
    assert sws.input_schema is not None
    inputs = InputSequence(
        sws.input_schema,
        [messages.get(j, []) for j in range(1, session_length + 1)],
    )
    return database, inputs


@traced("nonempty_cq_nr", kind="analysis")
@guarded()
def nonempty_cq_nr(sws: SWS) -> Answer:
    """Exact non-emptiness for SWS_nr(CQ, UCQ) via the UCQ≠ expansion.

    By positivity the output is monotone in the session length, so only the
    saturation length must be checked; a satisfiable disjunct yields a
    verified witness.
    """
    require_class(sws, SWSClass.CQ_UCQ_NR, "nonempty_cq_nr")
    n = saturation_length(sws)
    expansion = expand(sws, n)
    for disjunct in expansion.disjuncts:
        checkpoint("nonempty_cq_nr", frontier=len(expansion.disjuncts), depth=n)
        if not disjunct.is_satisfiable():
            continue
        database, inputs = witness_from_disjunct(sws, disjunct, n)
        result = run_relational(sws, database, inputs)
        if not result.output:
            raise AnalysisError("expansion witness failed re-execution")
        return Answer.yes(witness=(database, inputs), detail=f"disjunct at n={n}")
    return Answer.no(detail=f"expansion at saturation length {n} unsatisfiable")


@traced("nonempty_cq", kind="analysis")
@guarded()
def nonempty_cq(sws: SWS, max_session_length: int = 6) -> Answer:
    """Non-emptiness for SWS(CQ, UCQ) by iterated unfolding.

    Sound and complete up to ``max_session_length``; the true completeness
    threshold is exponential in the service size (the EXPTIME bound of
    Theorem 4.1(2)), so exceeding the budget yields UNKNOWN.  Nonrecursive
    services short-circuit to the exact procedure.
    """
    require_class(sws, SWSClass.CQ_UCQ, "nonempty_cq")
    if not sws.is_recursive():
        return nonempty_cq_nr(sws)
    for n in range(0, max_session_length + 1):
        checkpoint("nonempty_cq", depth=n)
        expansion = expand(sws, n)
        for disjunct in expansion.disjuncts:
            checkpoint(
                "nonempty_cq", frontier=len(expansion.disjuncts), depth=n
            )
            if not disjunct.is_satisfiable():
                continue
            database, inputs = witness_from_disjunct(sws, disjunct, n)
            result = run_relational(sws, database, inputs)
            if not result.output:
                raise AnalysisError("expansion witness failed re-execution")
            return Answer.yes(witness=(database, inputs), detail=f"n={n}")
    return Answer.unknown(
        detail=f"no witness up to session length {max_session_length}"
    )


# -- FO ------------------------------------------------------------------------


def _small_databases(sws: SWS, domain: Sequence[Any], max_rows: int):
    """Deterministic small-database enumeration for bounded FO search.

    Yields the empty database, the full database (all tuples over the
    domain, capped), and every database whose relations hold at most
    ``max_rows`` tuples drawn in a fixed order — feasible only for tiny
    domains, which is what undecidability leaves us.  Each database is
    yielded exactly once: the subset product below regenerates the empty
    database (all-empty choice) and, when every relation fits in
    ``max_rows``, the full one, and re-running those would silently burn
    the caller's budget on duplicates.
    """
    schema = sws.db_schema
    names = list(schema)
    yield Database.empty(schema)
    empty_key = tuple(frozenset() for _ in names)
    full = {
        name: list(itertools.product(domain, repeat=schema[name].arity))
        for name in schema
    }
    full_key = tuple(frozenset(full[name]) for name in names)
    if full_key != empty_key:
        yield Database(schema, full)
    already_yielded = {empty_key, full_key}
    per_relation: list[list[tuple]] = []
    for name in names:
        tuples = list(itertools.product(domain, repeat=schema[name].arity))
        subsets: list[tuple] = []
        for r in range(0, min(max_rows, len(tuples)) + 1):
            subsets.extend(itertools.combinations(tuples, r))
        per_relation.append(subsets)
    for combo in itertools.product(*per_relation):
        key = tuple(frozenset(c) for c in combo)
        if key in already_yielded:
            continue
        yield Database(schema, dict(zip(names, [list(c) for c in combo])))


@traced("nonempty_fo_bounded", kind="analysis")
@guarded()
def nonempty_fo_bounded(
    sws: SWS,
    max_domain: int = 2,
    max_rows: int = 1,
    max_session_length: int = 2,
    budget=20000,
    hints: Sequence[tuple[Database, InputSequence]] = (),
) -> Answer:
    """Bounded non-emptiness search for SWS(FO, FO) — sound YES / UNKNOWN.

    Exhaustively runs the service over all databases and input sequences
    within the given size bounds (undecidability rules out completeness;
    Theorem 4.1(1)).  ``budget`` caps the search — a legacy ``int`` counts
    runs (one guard step each), and a :class:`repro.guard.Budget` or
    :class:`~repro.guard.Guard` adds deadline/memory ceilings.  ``hints``
    are candidate instances tried first: verifying a supplied certificate
    is decidable even though finding one is not, so a caller who knows a
    plausible witness gets an exact YES cheaply.
    """
    if sws.kind is not SWSKind.RELATIONAL:
        raise AnalysisError("nonempty_fo_bounded expects a relational SWS")
    assert sws.input_schema is not None
    for database, inputs in hints:
        if run_relational(sws, database, inputs).output:
            return Answer.yes(witness=(database, inputs), detail="hint verified")
    domain = list(range(max_domain)) + sorted(sws.query_constants(), key=repr)
    arity = sws.input_schema.arity
    message_pool = list(itertools.product(domain, repeat=arity))
    runs = 0
    with ensure_guard(budget).activate():
        for database in _small_databases(sws, domain, max_rows):
            for n in range(0, max_session_length + 1):
                for combo in itertools.product(
                    [()] + [(m,) for m in message_pool], repeat=n
                ):
                    inputs = InputSequence(
                        sws.input_schema, [list(c) for c in combo]
                    )
                    runs += 1
                    checkpoint("nonempty_fo_bounded", depth=n)
                    result = run_relational(sws, database, inputs)
                    if result.output:
                        return Answer.yes(
                            witness=(database, inputs),
                            detail=f"found after {runs} runs",
                        )
    return Answer.unknown(detail=f"exhausted bounds after {runs} runs")


# -- dispatch -------------------------------------------------------------------


def nonempty(sws: SWS, **kwargs) -> Answer:
    """Class-dispatching non-emptiness analysis.

    ``guard=`` (a :class:`repro.guard.Guard`, :class:`~repro.guard.Budget`
    or legacy ``int`` step budget) is forwarded to every branch.
    """
    guard = kwargs.pop("guard", None)
    cls = classify(sws)
    if cls in (SWSClass.PL_PL, SWSClass.PL_PL_NR):
        return nonempty_pl(sws, guard=guard)
    if cls is SWSClass.CQ_UCQ_NR:
        return nonempty_cq_nr(sws, guard=guard)
    if cls is SWSClass.CQ_UCQ:
        return nonempty_cq(sws, guard=guard, **kwargs)
    return nonempty_fo_bounded(sws, guard=guard, **kwargs)


register_span(
    "nonempty_pl_nr_sat",
    "per-session-length SAT loop",
    "Theorem 4.1(3): NP non-emptiness for SWS_nr(PL, PL)",
)
register_span(
    "nonempty_cq_nr",
    "expansion-disjunct satisfiability loop",
    "Theorem 4.1(2): NEXPTIME non-emptiness for SWS_nr(CQ, UCQ)",
)
register_span(
    "nonempty_cq",
    "iterated-unfolding session-length loop",
    "Theorem 4.1(2): EXPTIME non-emptiness for SWS(CQ, UCQ)",
)
register_span(
    "nonempty_fo_bounded",
    "bounded (D, I) instance enumeration (one step per run)",
    "Theorem 4.1(1): undecidable FO cell, sound YES/UNKNOWN search",
)
