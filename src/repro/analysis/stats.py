"""Work counters for benchmarks and analyses (public face).

The implementation lives in :mod:`repro._stats` — a dependency-free leaf
module, so the formula/automata/SAT layers can import it without cycling
back through :mod:`repro.analysis`.  Use it as::

    from repro.analysis.stats import STATS, stats_delta

    with stats_delta() as work:
        nonempty_pl(service)
    print(work["vectors_explored"], work["pre_steps"], work.nonzero())

Every counter measures *work done* (vectors explored, SAT calls, expansion
disjuncts, cache hits), so benchmark reports can show what an optimization
actually removed rather than just wall-clock deltas.

Prefer :func:`stats_delta` over ``STATS.reset()``: the singleton is
process-wide, so a bare reset clobbers any enclosing measurement (another
benchmark section, an open :mod:`repro.obs` span).  The snapshot-diff
context manager composes under nesting and concurrency between procedures.
"""

from repro._stats import STATS, Stats, StatsDelta, stats_delta

__all__ = ["STATS", "Stats", "StatsDelta", "stats_delta"]
