"""Work counters for benchmarks and analyses (public face).

The implementation lives in :mod:`repro._stats` — a dependency-free leaf
module, so the formula/automata/SAT layers can import it without cycling
back through :mod:`repro.analysis`.  Use it as::

    from repro.analysis.stats import STATS

    STATS.reset()
    nonempty_pl(service)
    print(STATS.vectors_explored, STATS.pre_steps, STATS.compile_hit_rate())

Every counter measures *work done* (vectors explored, SAT calls, expansion
disjuncts, cache hits), so benchmark reports can show what an optimization
actually removed rather than just wall-clock deltas.
"""

from repro._stats import STATS, Stats

__all__ = ["STATS", "Stats"]
