"""Service containment: τ1(D, I) ⊆ τ2(D, I) for all D and I.

Containment is the one-sided version of the equivalence problem of
Section 4 (equivalence = mutual containment), and it is what the
query-rewriting view of composition (Section 5.2) manipulates directly:
a maximally-contained mediator is one whose runs are contained in the
goal's.  The procedures mirror the equivalence ones cell by cell:

* SWS(PL, PL) — product vector search for a word τ1 accepts and τ2
  rejects (PSPACE, exact);
* SWS_nr(CQ, UCQ) — expansion containment at every session length up to
  joint saturation (coNEXPTIME, exact);
* SWS(CQ, UCQ) — the same under a session-length budget (sound NO /
  UNKNOWN; the problem inherits undecidability from equivalence);
* FO classes — bounded instance search (sound NO / UNKNOWN).
"""

from __future__ import annotations

from collections import deque

from repro.analysis.verdict import Answer
from repro.core.classes import SWSClass, classify, require_class
from repro.guard import checkpoint, checkpoint_callable, guarded, register_span
from repro.obs import traced
from repro.core.pl_semantics import joint_variables, to_afa
from repro.core.sws import SWS
from repro.core.unfold import expand, saturation_length
from repro.errors import AnalysisError


@traced("contained_pl", kind="analysis")
@guarded()
def contained_pl(tau1: SWS, tau2: SWS) -> Answer:
    """Exact containment for SWS(PL, PL): L(τ1) ⊆ L(τ2).

    A NO answer carries a shortest word accepted by τ1 and rejected by τ2.
    """
    require_class(tau1, SWSClass.PL_PL, "contained_pl")
    require_class(tau2, SWSClass.PL_PL, "contained_pl")
    variables = joint_variables(tau1, tau2)
    left = to_afa(tau1, variables)
    right = to_afa(tau2, variables)
    start = (left.empty_word_vector(), right.empty_word_vector())
    seen: dict = {start: ()}
    queue = deque([start])
    order = sorted(left.alphabet, key=repr)
    ckpt = checkpoint_callable("contained_pl")
    n_popped = 0
    ckpt(0, queue)
    while queue:
        pair = queue.popleft()
        n_popped += 1
        ckpt(n_popped, queue)
        mine, theirs = pair
        word = seen[pair]
        if left.initial_condition.evaluate(mine) and not (
            right.initial_condition.evaluate(theirs)
        ):
            return Answer.no(witness=list(word), detail="separating word")
        for symbol in order:
            nxt = (left.pre_step(mine, symbol), right.pre_step(theirs, symbol))
            if nxt not in seen:
                seen[nxt] = (symbol,) + word
                queue.append(nxt)
    return Answer.yes(detail="product vector space exhausted")


@traced("contained_cq_nr", kind="analysis")
@guarded()
def contained_cq_nr(tau1: SWS, tau2: SWS) -> Answer:
    """Exact containment for SWS_nr(CQ, UCQ) via expansion containment."""
    require_class(tau1, SWSClass.CQ_UCQ_NR, "contained_cq_nr")
    require_class(tau2, SWSClass.CQ_UCQ_NR, "contained_cq_nr")
    horizon = max(saturation_length(tau1), saturation_length(tau2))
    for n in range(0, horizon + 1):
        checkpoint("contained_cq_nr", depth=n)
        if not expand(tau1, n).contained_in(expand(tau2, n)):
            return Answer.no(detail=f"τ1 ⊄ τ2 at session length {n}")
    return Answer.yes(detail=f"expansions contained up to saturation ({horizon})")


@traced("contained_cq", kind="analysis")
@guarded()
def contained_cq(tau1: SWS, tau2: SWS, max_session_length: int = 5) -> Answer:
    """Bounded containment for SWS(CQ, UCQ): NO is exact, else UNKNOWN."""
    require_class(tau1, SWSClass.CQ_UCQ, "contained_cq")
    require_class(tau2, SWSClass.CQ_UCQ, "contained_cq")
    if not tau1.is_recursive() and not tau2.is_recursive():
        return contained_cq_nr(tau1, tau2)
    for n in range(0, max_session_length + 1):
        checkpoint("contained_cq", depth=n)
        if not expand(tau1, n).contained_in(expand(tau2, n)):
            return Answer.no(detail=f"τ1 ⊄ τ2 at session length {n}")
    return Answer.unknown(
        detail=f"contained up to session length {max_session_length}"
    )


def contained(tau1: SWS, tau2: SWS, **kwargs) -> Answer:
    """Class-dispatching containment analysis.

    ``guard=`` (a :class:`repro.guard.Guard`, :class:`~repro.guard.Budget`
    or legacy ``int`` step budget) is forwarded to every branch.
    """
    guard = kwargs.pop("guard", None)
    if tau1.kind is not tau2.kind:
        raise AnalysisError("containment requires services of the same kind")
    classes = {classify(tau1), classify(tau2)}
    if classes <= {SWSClass.PL_PL, SWSClass.PL_PL_NR}:
        return contained_pl(tau1, tau2, guard=guard)
    if classes <= {SWSClass.CQ_UCQ, SWSClass.CQ_UCQ_NR}:
        return contained_cq(tau1, tau2, guard=guard, **kwargs)
    # FO classes: containment inherits undecidability; reuse the bounded
    # disagreement search, weakened to one-sided checking.
    from repro.analysis.equivalence import equivalent_fo_bounded

    answer = equivalent_fo_bounded(tau1, tau2, guard=guard, **kwargs)
    if answer.is_no:
        database, inputs = answer.witness
        from repro.core.run import run_relational

        out1 = run_relational(tau1, database, inputs).output.rows
        out2 = run_relational(tau2, database, inputs).output.rows
        if not out1 <= out2:
            return Answer.no(witness=(database, inputs))
        return Answer.unknown(detail="difference found but not a ⊆-violation")
    return answer


register_span(
    "contained_pl",
    "product pair-BFS over both AFA vector spaces",
    "Section 4: PSPACE containment for SWS(PL, PL)",
)
register_span(
    "contained_cq_nr",
    "per-session-length expansion-containment loop",
    "Theorem 4.1(2): coNEXPTIME containment for SWS_nr(CQ, UCQ)",
)
register_span(
    "contained_cq",
    "bounded expansion-containment loop",
    "Theorem 4.1(2): undecidable SWS(CQ, UCQ) containment, bounded",
)
