"""The equivalence problem (Section 4).

    Given τ1 and τ2 over the same schemas, is τ1(D, I) = τ2(D, I) for all
    D and I?

With a cost model, equivalence lets a cheaper service replace a dearer one.

* ``SWS(PL, PL)`` — :func:`equivalent_pl`: translate both services to AFAs
  over their *joint* input alphabet and search the product vector space for
  a disagreeing word (PSPACE; coNP on nonrecursive services, where vectors
  stabilize within depth+1 steps).
* ``SWS_nr(CQ, UCQ)`` — :func:`equivalent_cq_nr`: expand both services at
  every session length up to saturation and decide UCQ≠ equivalence by
  Klug-style containment both ways (the coNEXPTIME procedure of
  Theorem 4.1(2), built on the containment algorithm for nonrecursive
  queries with inequality).
* ``SWS(CQ, UCQ)`` — undecidable; :func:`equivalent_cq` compares expansions
  for session lengths up to a budget: NO with a witness length, or UNKNOWN.
* FO classes — undecidable; :func:`equivalent_fo_bounded` searches small
  instances for a distinguishing run.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.analysis.verdict import Answer
from repro.core.classes import SWSClass, classify, require_class
from repro.guard import checkpoint, ensure_guard, guarded, register_span
from repro.obs import traced
from repro.core.pl_semantics import joint_variables, to_afa
from repro.core.run import run_relational
from repro.core.sws import SWS, SWSKind
from repro.core.unfold import expand, saturation_length
from repro.data.input_sequence import InputSequence
from repro.errors import AnalysisError


def _check_comparable(tau1: SWS, tau2: SWS) -> None:
    if tau1.kind is not tau2.kind:
        raise AnalysisError("equivalence requires services of the same kind")
    if tau1.kind is SWSKind.RELATIONAL:
        if tau1.db_schema != tau2.db_schema:
            raise AnalysisError("equivalence requires identical database schemas")
        assert tau1.input_schema is not None and tau2.input_schema is not None
        if tau1.input_schema.attributes != tau2.input_schema.attributes:
            raise AnalysisError("equivalence requires identical input schemas")
        if tau1.output_arity != tau2.output_arity:
            raise AnalysisError("equivalence requires identical output arities")


@traced("equivalent_pl", kind="analysis")
@guarded()
def equivalent_pl(tau1: SWS, tau2: SWS) -> Answer:
    """Exact equivalence for SWS(PL, PL) via the AFA product search.

    A NO answer carries a shortest distinguishing word over the joint
    alphabet.
    """
    require_class(tau1, SWSClass.PL_PL, "equivalent_pl")
    require_class(tau2, SWSClass.PL_PL, "equivalent_pl")
    variables = joint_variables(tau1, tau2)
    left = to_afa(tau1, variables)
    right = to_afa(tau2, variables)
    witness = left.difference_witness(right)
    if witness is None:
        return Answer.yes(detail="product vector space exhausted")
    return Answer.no(witness=list(witness), detail="distinguishing word")


@traced("equivalent_cq_nr", kind="analysis")
@guarded()
def equivalent_cq_nr(tau1: SWS, tau2: SWS) -> Answer:
    """Exact equivalence for SWS_nr(CQ, UCQ) via expansion containment.

    τ1 ≡ τ2 iff their expansions agree as UCQ≠ queries at every session
    length up to the joint saturation — beyond it both expansions are
    literally stable.
    """
    require_class(tau1, SWSClass.CQ_UCQ_NR, "equivalent_cq_nr")
    require_class(tau2, SWSClass.CQ_UCQ_NR, "equivalent_cq_nr")
    _check_comparable(tau1, tau2)
    horizon = max(saturation_length(tau1), saturation_length(tau2))
    for n in range(0, horizon + 1):
        checkpoint("equivalent_cq_nr", depth=n)
        q1 = expand(tau1, n)
        q2 = expand(tau2, n)
        if not q1.contained_in(q2):
            return Answer.no(detail=f"τ1 ⊄ τ2 at session length {n}")
        if not q2.contained_in(q1):
            return Answer.no(detail=f"τ2 ⊄ τ1 at session length {n}")
    return Answer.yes(detail=f"expansions agree up to saturation ({horizon})")


@traced("equivalent_cq", kind="analysis")
@guarded()
def equivalent_cq(tau1: SWS, tau2: SWS, max_session_length: int = 5) -> Answer:
    """Bounded equivalence for SWS(CQ, UCQ): NO with witness, or UNKNOWN.

    The problem is undecidable (Theorem 4.1(2)); expansions are compared
    for every session length up to the budget.  Nonrecursive pairs
    short-circuit to the exact procedure.
    """
    require_class(tau1, SWSClass.CQ_UCQ, "equivalent_cq")
    require_class(tau2, SWSClass.CQ_UCQ, "equivalent_cq")
    _check_comparable(tau1, tau2)
    if not tau1.is_recursive() and not tau2.is_recursive():
        return equivalent_cq_nr(tau1, tau2)
    for n in range(0, max_session_length + 1):
        checkpoint("equivalent_cq", depth=n)
        q1 = expand(tau1, n)
        q2 = expand(tau2, n)
        if not q1.contained_in(q2):
            return Answer.no(detail=f"τ1 ⊄ τ2 at session length {n}")
        if not q2.contained_in(q1):
            return Answer.no(detail=f"τ2 ⊄ τ1 at session length {n}")
    return Answer.unknown(
        detail=f"expansions agree up to session length {max_session_length}"
    )


@traced("equivalent_fo_bounded", kind="analysis")
@guarded()
def equivalent_fo_bounded(
    tau1: SWS,
    tau2: SWS,
    max_domain: int = 2,
    max_rows: int = 1,
    max_session_length: int = 2,
    budget=20000,
) -> Answer:
    """Bounded equivalence for FO services: NO with witness, or UNKNOWN.

    Runs both services over every instance within the bounds and compares
    outputs; a disagreement is a definitive NO (with the witness instance).
    ``budget`` caps the search: a legacy ``int`` counts runs, a
    :class:`repro.guard.Budget`/:class:`~repro.guard.Guard` adds deadline
    and memory ceilings.
    """
    from repro.analysis.nonemptiness import _small_databases

    _check_comparable(tau1, tau2)
    if tau1.kind is not SWSKind.RELATIONAL:
        raise AnalysisError("equivalent_fo_bounded expects relational services")
    assert tau1.input_schema is not None
    domain = list(range(max_domain)) + sorted(
        tau1.query_constants() | tau2.query_constants(), key=repr
    )
    arity = tau1.input_schema.arity
    message_pool = list(itertools.product(domain, repeat=arity))
    runs = 0
    with ensure_guard(budget).activate():
        for database in _small_databases(tau1, domain, max_rows):
            for n in range(0, max_session_length + 1):
                for combo in itertools.product(
                    [()] + [(m,) for m in message_pool], repeat=n
                ):
                    inputs = InputSequence(
                        tau1.input_schema, [list(c) for c in combo]
                    )
                    runs += 1
                    checkpoint("equivalent_fo_bounded", depth=n)
                    out1 = run_relational(tau1, database, inputs).output.rows
                    out2 = run_relational(tau2, database, inputs).output.rows
                    if out1 != out2:
                        return Answer.no(witness=(database, inputs))
    return Answer.unknown(detail=f"no disagreement within bounds ({runs} runs)")


def equivalent(tau1: SWS, tau2: SWS, **kwargs) -> Answer:
    """Class-dispatching equivalence analysis.

    ``guard=`` (a :class:`repro.guard.Guard`, :class:`~repro.guard.Budget`
    or legacy ``int`` step budget) is forwarded to every branch.
    """
    guard = kwargs.pop("guard", None)
    _check_comparable(tau1, tau2)
    cls = {classify(tau1), classify(tau2)}
    if cls <= {SWSClass.PL_PL, SWSClass.PL_PL_NR}:
        return equivalent_pl(tau1, tau2, guard=guard)
    if cls <= {SWSClass.CQ_UCQ_NR}:
        return equivalent_cq_nr(tau1, tau2, guard=guard)
    if cls <= {SWSClass.CQ_UCQ, SWSClass.CQ_UCQ_NR}:
        return equivalent_cq(tau1, tau2, guard=guard, **kwargs)
    return equivalent_fo_bounded(tau1, tau2, guard=guard, **kwargs)


register_span(
    "equivalent_cq_nr",
    "per-session-length expansion-containment loop",
    "Theorem 4.1(2): coNEXPTIME equivalence for SWS_nr(CQ, UCQ)",
)
register_span(
    "equivalent_cq",
    "bounded expansion-comparison loop",
    "Theorem 4.1(2): undecidable SWS(CQ, UCQ) equivalence, bounded",
)
register_span(
    "equivalent_fo_bounded",
    "bounded (D, I) disagreement search (one step per run)",
    "Theorem 4.1(1): undecidable FO equivalence, sound NO/UNKNOWN search",
)
