"""Three-valued verdicts for (semi-)decision procedures.

Theorem 4.1 makes several analyses undecidable; the library's procedures
for those cells are *sound but bounded*: they never return a wrong YES/NO,
and report UNKNOWN when the resource budget runs out.  Decidable-cell
procedures always return YES or NO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Generic, TypeVar


class Verdict(Enum):
    """Outcome of a bounded analysis."""

    YES = "yes"
    NO = "no"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        # Deliberately undefined: a Verdict must be compared explicitly so
        # UNKNOWN is never silently treated as falsy NO.
        raise TypeError(
            "Verdict has no truth value; compare against Verdict.YES/NO/UNKNOWN"
        )


WitnessT = TypeVar("WitnessT")


@dataclass(frozen=True)
class Answer(Generic[WitnessT]):
    """A verdict with an optional witness and a provenance note.

    ``witness`` is, for non-emptiness, a pair ``(D, I)`` (or an input word
    for PL services); for equivalence a distinguishing input; ``detail``
    names the budget or procedure that produced the verdict.

    ``provenance`` is a :class:`repro.obs.Provenance` (span id, elapsed
    seconds, ``STATS`` counter deltas) attached by the tracing layer when
    tracing is enabled, and ``None`` otherwise.  It is excluded from
    equality/repr so traced and untraced runs compare identical.

    ``trip`` is a :class:`repro.guard.Trip` carrying partial progress
    (steps taken, frontier size, which limit tripped) when the verdict
    is a guard-produced UNKNOWN, and ``None`` otherwise; like
    provenance, it never affects equality.
    """

    verdict: Verdict
    witness: WitnessT | None = None
    detail: str = ""
    provenance: Any = field(default=None, compare=False, repr=False)
    trip: Any = field(default=None, compare=False, repr=False)

    @classmethod
    def yes(cls, witness: Any = None, detail: str = "") -> "Answer":
        """A positive answer."""
        return cls(Verdict.YES, witness, detail)

    @classmethod
    def no(cls, witness: Any = None, detail: str = "") -> "Answer":
        """A negative answer."""
        return cls(Verdict.NO, witness, detail)

    @classmethod
    def unknown(cls, detail: str = "", trip: Any = None) -> "Answer":
        """Budget exhausted without a verdict."""
        return cls(Verdict.UNKNOWN, None, detail, trip=trip)

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly summary of the answer.

        ``witness`` is rendered through ``repr`` when it is not already
        JSON-encodable — the serving layer's results files are for humans
        and diffing, while exact round-tripping goes through pickle.
        """
        witness: Any = self.witness
        if witness is not None and not isinstance(
            witness, (str, int, float, bool)
        ):
            witness = repr(witness)
        if isinstance(witness, str) and len(witness) > 200:
            witness = witness[:200] + f"... ({len(witness)} chars)"
        out: dict[str, Any] = {"verdict": self.verdict.value, "detail": self.detail}
        if witness is not None:
            out["witness"] = witness
        if self.trip is not None and hasattr(self.trip, "limit"):
            out["tripped"] = self.trip.limit
        return out

    @property
    def is_yes(self) -> bool:
        """Whether the verdict is YES."""
        return self.verdict is Verdict.YES

    @property
    def is_no(self) -> bool:
        """Whether the verdict is NO."""
        return self.verdict is Verdict.NO

    @property
    def is_unknown(self) -> bool:
        """Whether the verdict is UNKNOWN."""
        return self.verdict is Verdict.UNKNOWN
