"""SAT ≤p SWS_nr(PL, PL) non-emptiness (Theorem 4.1(3), NP lower bound).

The reduction is the paper's: a propositional formula φ over variables
x1..xm becomes a two-state service whose single final state evaluates φ on
the first input message — the service produces an action iff some truth
assignment (= input message) satisfies φ, i.e. iff φ is satisfiable.

A slightly richer variant (:func:`cnf_to_sws`) spreads a CNF's clauses over
parallel states with conjunctive synthesis, exercising the synthesis
machinery instead of a single formula: state ``c_i`` checks clause ``i`` on
the shared input, the root conjoins all clause registers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.logic import pl
from repro.logic.cnf import Clause, Literal


def sat_instance_to_sws(formula: pl.Formula, name: str = "sat") -> SWS:
    """φ ↦ τφ with: τφ non-empty ⟺ φ satisfiable.

    ``τφ`` has a start state spawning one final state whose synthesis
    evaluates φ on the first input message; the witness input message *is*
    the satisfying assignment.
    """
    transitions = {
        "q0": TransitionRule([("qe", pl.TRUE)]),
        "qe": TransitionRule(),
    }
    synthesis = {
        "q0": SynthesisRule(pl.Var("A1")),
        "qe": SynthesisRule(formula),
    }
    return SWS(
        ("q0", "qe"),
        "q0",
        transitions,
        synthesis,
        kind=SWSKind.PL,
        name=name,
    )


def cnf_to_sws(clauses: Iterable[Clause], name: str = "cnf") -> SWS:
    """CNF ↦ τ with one parallel state per clause, conjunctive synthesis.

    τ is non-empty iff the CNF is satisfiable; the construction showcases
    the "parallel checks + deterministic synthesis" style of Figure 1(b):
    every clause is inspected in parallel on the same input message and the
    root commits only when all clause registers are true.
    """
    clause_list = [frozenset(c) for c in clauses]
    states = ["q0"] + [f"c{i}" for i in range(len(clause_list))] + ["probe"]
    transitions: dict[str, TransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}
    if clause_list:
        transitions["q0"] = TransitionRule(
            [(f"c{i}", pl.TRUE) for i in range(len(clause_list))]
        )
        synthesis["q0"] = SynthesisRule(
            pl.conjoin(pl.Var(f"A{i + 1}") for i in range(len(clause_list)))
        )
    else:
        transitions["q0"] = TransitionRule([("probe", pl.TRUE)])
        synthesis["q0"] = SynthesisRule(pl.Var("A1"))
    transitions["probe"] = TransitionRule()
    synthesis["probe"] = SynthesisRule(pl.TRUE)
    for i, clause in enumerate(clause_list):
        state = f"c{i}"
        transitions[state] = TransitionRule()
        synthesis[state] = SynthesisRule(_clause_formula(clause))
    return SWS(states, "q0", transitions, synthesis, kind=SWSKind.PL, name=name)


def _clause_formula(clause: Clause) -> pl.Formula:
    literals: list[pl.Formula] = []
    for literal in sorted(clause):
        variable = pl.Var(literal.variable)
        literals.append(variable if literal.positive else pl.Not(variable))
    return pl.disjoin(literals)


def clauses_from_tuples(
    clauses: Sequence[Sequence[tuple[str, bool]]]
) -> list[Clause]:
    """Convert (variable, polarity) tuples to solver clauses."""
    return [
        frozenset(Literal(variable, positive) for variable, positive in clause)
        for clause in clauses
    ]
