"""AFA emptiness ≤p SWS(PL, PL) non-emptiness (PSPACE lower bound).

Theorem 4.1(3)'s lower bound rests on expressing alternating finite
automata in SWS(PL, PL) in polynomial time.  The construction here:

* each AFA symbol ``a`` becomes a propositional variable; the input
  encoding maps a word to one singleton assignment per symbol, terminated
  by a ``#`` delimiter (the same in-band session termination the Roman
  translation uses — an SWS cannot otherwise detect "end of word", since
  rule (1) silences starved internal states);
* each AFA state ``q`` becomes an SWS state whose children are *all* AFA
  states (kept unconditionally alive) plus one *indicator* child per
  symbol.  An indicator child is a final state whose transition formula
  tests "the current message is exactly ``a``" and whose synthesis returns
  its own register — so its gathered value says which symbol the parent
  just read;
* the parent's synthesis rule dispatches on the indicators:

      ψ_q  =  (ind_# ∧ [q ∈ F])  ∨  ⋁_a ( ind_a ∧ δ(q, a)[p ↦ A_p] )

  which reproduces the AFA's backward valuation exactly: on the delimiter
  the remaining-word value is the final-state indicator, and on a symbol
  the transition condition is evaluated on the children's values.

Then ``L(AFA) ∋ w  ⟺  τ accepts encode(w)``, and τ is non-empty iff the
AFA is non-empty (garbage assignments satisfy no indicator and yield
false).
"""

from __future__ import annotations

from typing import Sequence

from repro.automata.afa import AFA
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.errors import AnalysisError
from repro.logic import pl

#: Variable encoding the end-of-word delimiter.
DELIMITER_VARIABLE = "hash"


def symbol_variable(symbol: object) -> str:
    """The propositional variable encoding an AFA symbol."""
    return f"sym_{symbol}"


def _exactly(symbol: object | None, alphabet: Sequence[object]) -> pl.Formula:
    """The current message encodes exactly ``symbol`` (None = delimiter)."""
    parts: list[pl.Formula] = []
    for other in alphabet:
        variable = pl.Var(symbol_variable(other))
        parts.append(variable if other == symbol else pl.Not(variable))
    delimiter = pl.Var(DELIMITER_VARIABLE)
    parts.append(delimiter if symbol is None else pl.Not(delimiter))
    return pl.conjoin(parts)


def afa_to_sws(afa: AFA, name: str = "afa") -> SWS:
    """The polynomial translation AFA → SWS(PL, PL).

    Output-size note: |τ| = O(|Q|² + |Q|·|Σ| + Σ|δ|) — polynomial, as the
    lower-bound argument requires.
    """
    alphabet = sorted(afa.alphabet, key=repr)
    afa_states = sorted(afa.states)
    if any(s.startswith("ind_") or s in {"q_start"} for s in afa_states):
        raise AnalysisError("AFA state names clash with translation names")

    def state_name(afa_state: str) -> str:
        return f"s_{afa_state}"

    indicator_states = [f"ind_{i}" for i in range(len(alphabet))] + ["ind_end"]
    states = (
        ["q_start"]
        + [state_name(q) for q in afa_states]
        + indicator_states
    )
    transitions: dict[str, TransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}

    # Indicator states: final; transition formula tested by the *parent*
    # fills their register, and their synthesis forwards it.
    for indicator in indicator_states:
        transitions[indicator] = TransitionRule()
        synthesis[indicator] = SynthesisRule(pl.Var("Msg"))

    def rule_pair(afa_state: str | None) -> tuple[TransitionRule, SynthesisRule]:
        """The shared child layout: all AFA states + one indicator each."""
        targets: list[tuple[str, pl.Formula]] = []
        substitution: dict[str, pl.Formula] = {}
        for position, child in enumerate(afa_states):
            targets.append((state_name(child), pl.TRUE))
            substitution[child] = pl.Var(f"A{position + 1}")
        offset = len(afa_states)
        indicator_register: dict[object, pl.Formula] = {}
        for i, symbol in enumerate(alphabet):
            targets.append((f"ind_{i}", _exactly(symbol, alphabet)))
            indicator_register[symbol] = pl.Var(f"A{offset + i + 1}")
        targets.append(("ind_end", _exactly(None, alphabet)))
        end_register = pl.Var(f"A{offset + len(alphabet) + 1}")
        branches: list[pl.Formula] = []
        if afa_state is None:
            # The start state evaluates the AFA's initial condition on the
            # vector of the *whole* word: reading symbol a, the condition's
            # state variables unfold one AFA step — V_{a·w}[q] = δ(q,a)(V_w)
            # — before the children's registers (which carry V_w) fill in.
            per_symbol_condition = {
                symbol: afa.initial_condition.substitute(
                    {
                        q: afa.transitions.get((q, symbol), pl.FALSE)
                        for q in afa_states
                    }
                ).simplify()
                for symbol in alphabet
            }
            is_final = afa.initial_condition.substitute(
                {q: (pl.TRUE if q in afa.finals else pl.FALSE) for q in afa_states}
            ).simplify()
        else:
            per_symbol_condition = {
                symbol: afa.transitions.get((afa_state, symbol), pl.FALSE)
                for symbol in alphabet
            }
            is_final = pl.TRUE if afa_state in afa.finals else pl.FALSE
        branches.append((end_register & is_final).simplify())
        for symbol in alphabet:
            condition = per_symbol_condition[symbol].substitute(substitution)
            branches.append(
                (indicator_register[symbol] & condition).simplify()
            )
        return TransitionRule(targets), SynthesisRule(pl.disjoin(branches))

    transitions["q_start"], synthesis["q_start"] = rule_pair(None)
    for afa_state in afa_states:
        transitions[state_name(afa_state)], synthesis[state_name(afa_state)] = (
            rule_pair(afa_state)
        )
    return SWS(states, "q_start", transitions, synthesis, kind=SWSKind.PL, name=name)


def encode_afa_word(word: Sequence[object]) -> list[frozenset[str]]:
    """Encode an AFA word as SWS input (delimiter appended)."""
    encoded = [frozenset({symbol_variable(symbol)}) for symbol in word]
    encoded.append(frozenset({DELIMITER_VARIABLE}))
    return encoded
