"""Quantified boolean formulas.

The PSPACE lower bound for SWS_nr(CQ, UCQ) non-emptiness (Theorem 4.1(2))
is by reduction from Q3SAT.  The paper does not spell the construction out;
the reproduction therefore ships the Q3SAT substrate itself — a QBF data
type and evaluator — as the baseline the benchmarks compare the expansion-
based procedure against on the shared-DAG scaling family (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.logic import pl


@dataclass(frozen=True)
class QBF:
    """A prenex QBF: a quantifier prefix over a propositional matrix.

    ``prefix`` lists (quantifier, variable) pairs outermost-first, with
    quantifier ``'E'`` or ``'A'``; the matrix may mention exactly the
    prefixed variables.
    """

    prefix: tuple[tuple[str, str], ...]
    matrix: pl.Formula

    def __post_init__(self) -> None:
        quantified = {v for _q, v in self.prefix}
        stray = self.matrix.variables() - quantified
        if stray:
            raise ValueError(f"unquantified variables {sorted(stray)}")
        if any(q not in {"E", "A"} for q, _v in self.prefix):
            raise ValueError("quantifiers must be 'E' or 'A'")


def evaluate_qbf(qbf: QBF) -> bool:
    """Evaluate a closed QBF (the textbook PSPACE recursion)."""

    def recurse(index: int, assignment: frozenset[str]) -> bool:
        if index == len(qbf.prefix):
            return qbf.matrix.evaluate(assignment)
        quantifier, variable = qbf.prefix[index]
        with_true = recurse(index + 1, assignment | {variable})
        if quantifier == "E" and with_true:
            return True
        if quantifier == "A" and not with_true:
            return False
        return recurse(index + 1, assignment)

    return recurse(0, frozenset())


def random_qbf(seed: int, n_variables: int, n_clauses: int) -> QBF:
    """A random alternating-prefix 3-CNF QBF (benchmark workload)."""
    import random

    from repro.workloads.scaling import random_3cnf

    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(n_variables)]
    prefix = tuple(
        ("E" if i % 2 == 0 else "A", v) for i, v in enumerate(variables)
    )
    clauses = random_3cnf(rng.randint(0, 10**9), n_variables, n_clauses)
    matrix = pl.conjoin(
        pl.disjoin(
            pl.Var(v) if positive else pl.Not(pl.Var(v))
            for v, positive in clause
        )
        for clause in clauses
    )
    return QBF(prefix, matrix)
