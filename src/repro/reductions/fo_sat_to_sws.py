"""FO satisfiability ≤ SWS_nr(FO, FO) non-emptiness (Theorem 4.1(1)).

The undecidability of every decision problem for the FO classes is by
reduction from FO satisfiability: a closed FO sentence φ over a schema R
becomes the one-state service whose final synthesis outputs a constant
tuple guarded by φ — the service produces an action on (D, I) iff D ⊨ φ,
so it is non-empty iff φ has a (finite) model.

Note the database-theory reading: satisfiability here is *finite*
satisfiability over the uninterpreted domain, which is the right notion
for services over databases (and is itself undecidable by Trakhtenbrot's
theorem, so the reduction carries full force).
"""

from __future__ import annotations

from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.logic import fo
from repro.logic.terms import Constant, Variable


def fo_sat_to_sws(
    sentence: fo.FOFormula,
    db_schema: DatabaseSchema,
    name: str = "fosat",
) -> SWS:
    """φ ↦ τφ with: τφ non-empty ⟺ φ finitely satisfiable.

    ``τφ`` consists of a single final start state whose synthesis emits the
    constant tuple ``('ok',)`` exactly when the local database satisfies
    φ.  Input messages are ignored (payload schema is a dummy single
    attribute).
    """
    free = sentence.free_variables()
    if free:
        raise ValueError(
            f"the reduction needs a closed sentence; free: "
            f"{sorted(v.name for v in free)}"
        )
    out = Variable("o")
    query = fo.FOQuery(
        (out,),
        fo.AndF([fo.Equals(out, Constant("ok")), sentence]),
        "guarded_emit",
    )
    payload = RelationSchema("Rin", ("dummy",))
    return SWS(
        ("q0",),
        "q0",
        {"q0": TransitionRule()},
        {"q0": SynthesisRule(query)},
        kind=SWSKind.RELATIONAL,
        db_schema=db_schema,
        input_schema=payload,
        output_arity=1,
        name=name,
    )
