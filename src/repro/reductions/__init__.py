"""Executable hardness reductions (lower-bound witnesses of Theorem 4.1).

* :mod:`~repro.reductions.sat_to_sws` — SAT ≤p non-emptiness of
  SWS_nr(PL, PL): the NP lower bound of Theorem 4.1(3).
* :mod:`~repro.reductions.afa_to_sws` — AFA emptiness ≤p non-emptiness of
  SWS(PL, PL): the PSPACE lower bound of Theorem 4.1(3) ("AFA ... can be
  expressed in SWS(PL, PL), in ptime").
* :mod:`~repro.reductions.fo_sat_to_sws` — FO satisfiability ≤ non-
  emptiness of SWS_nr(FO, FO): the undecidability of Theorem 4.1(1).
* :mod:`~repro.reductions.qbf` — a QBF evaluator, the Q3SAT substrate
  behind the PSPACE lower bound for SWS_nr(CQ, UCQ) (used as a baseline
  in the benchmarks; the paper's reduction construction is not spelled
  out, see DESIGN.md).

Each reduction doubles as a correctness oracle: the target decision
procedure must agree with a direct solver on the source instance.
"""

from repro.reductions.sat_to_sws import cnf_to_sws, sat_instance_to_sws
from repro.reductions.afa_to_sws import afa_to_sws, encode_afa_word
from repro.reductions.fo_sat_to_sws import fo_sat_to_sws
from repro.reductions.qbf import QBF, evaluate_qbf

__all__ = [
    "QBF",
    "afa_to_sws",
    "cnf_to_sws",
    "encode_afa_word",
    "evaluate_qbf",
    "fo_sat_to_sws",
    "sat_instance_to_sws",
]
