"""Process-wide hook between artifact *producers* and the artifact store.

The expensive intermediates of the decision procedures — generated AFA
searcher source, symbol-class quotients, UCQ expansions — are worth
keeping across processes: a cold worker that reuses them warm-starts
instead of re-deriving everything from the instance.  The modules that
*produce* those intermediates (:mod:`repro.automata.afa`,
:mod:`repro.logic.rewriting`) sit far below the serving layer, so they
cannot import the SQLite store directly; this dependency-free leaf
module is the meeting point:

* the serving layer installs a *provider* around each job dispatch
  (:func:`scope`), carrying the open store and the job fingerprint;
* producers call :func:`load` / :func:`store` with a *key material*
  object (either an explicit string, or a structure the provider
  fingerprints) and a picklable value.

With no provider in scope every call is a cheap no-op, so library users
who never touch :mod:`repro.serve` see zero behaviour change.  Provider
errors never propagate into producers: a broken store degrades to
"no artifact cache", not to a failed solve.

The scope is thread-local: a multi-threaded server dispatching jobs on
several threads keeps each job's artifacts attributed to its own key.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Protocol

from repro import metrics
from repro._stats import STATS

__all__ = [
    "ArtifactProvider",
    "enabled",
    "job_key",
    "load",
    "scope",
    "slot",
    "store",
]


class ArtifactProvider(Protocol):
    """What the serving layer installs around a dispatch."""

    def load_artifact(self, kind: str, key: Any) -> Any | None:
        """The stored value for ``(kind, key)``, or ``None``."""

    def store_artifact(
        self, kind: str, key: Any, value: Any, meta: dict | None = None
    ) -> bool:
        """Persist ``value`` under ``(kind, key)``; False when not stored."""


class _Scope:
    __slots__ = ("provider", "job", "counters")

    def __init__(self, provider: ArtifactProvider, job: str | None) -> None:
        self.provider = provider
        self.job = job
        self.counters: dict[str, int] = {}


_TLS = threading.local()


def _current() -> _Scope | None:
    return getattr(_TLS, "scope", None)


@contextmanager
def scope(provider: ArtifactProvider | None, job: str | None = None) -> Iterator[None]:
    """Activate ``provider`` for the current thread; ``None`` is a no-op.

    Scopes nest (the inner one wins); the serving layer enters one per
    job dispatch so slot counters restart per job.
    """
    if provider is None:
        yield
        return
    previous = _current()
    _TLS.scope = _Scope(provider, job)
    try:
        yield
    finally:
        _TLS.scope = previous


def enabled() -> bool:
    """Whether an artifact provider is in scope on this thread."""
    return _current() is not None


def job_key() -> str | None:
    """The fingerprint of the job being dispatched, if any."""
    current = _current()
    return current.job if current is not None else None


def slot(kind: str) -> str | None:
    """A per-job sequence key for ``kind``, or ``None`` outside a scope.

    Deterministic procedures derive their intermediates in a fixed
    order, so "the n-th artifact of this kind produced while answering
    job J" is a stable identity even when fingerprinting the artifact's
    own inputs would cost as much as recomputing it.  Each call claims
    the next ordinal; the producer must use the returned key for both
    the load probe and the store.
    """
    current = _current()
    if current is None or current.job is None:
        return None
    ordinal = current.counters.get(kind, 0)
    current.counters[kind] = ordinal + 1
    return f"{current.job}/{kind}/{ordinal}"


def load(kind: str, key: Any) -> Any | None:
    """The artifact stored under ``(kind, key)``, or ``None``.

    ``key`` is either a string (used as-is) or a structure the provider
    fingerprints.  Provider failures return ``None``.
    """
    current = _current()
    if current is None:
        return None
    try:
        value = current.provider.load_artifact(kind, key)
    except Exception:  # noqa: BLE001 - a broken store must not fail the solve
        return None
    if value is None:
        STATS.artifact_misses += 1
        metrics.counter("artifact.misses", kind=kind).inc()
    else:
        STATS.artifact_hits += 1
        metrics.counter("artifact.hits", kind=kind).inc()
    return value


def store(kind: str, key: Any, value: Any, meta: dict | None = None) -> bool:
    """Persist ``value`` under ``(kind, key)``; False when not stored."""
    current = _current()
    if current is None:
        return False
    try:
        stored = bool(current.provider.store_artifact(kind, key, value, meta))
    except Exception:  # noqa: BLE001
        return False
    if stored:
        STATS.artifact_stores += 1
        metrics.counter("artifact.stores", kind=kind).inc()
    return stored
