"""repro — reproduction of *Complexity and Composition of Synthesized Web
Services* (Fan, Geerts, Gelade, Neven, Poggi; PODS 2008).

The package implements the paper's model and results as runnable code:

* :mod:`repro.core` — synthesized Web services (Definition 2.1), execution
  trees and the run semantics of Section 2, the class lattice, PL language
  semantics and UCQ≠ expansion.
* :mod:`repro.data` — the relational substrate (schemas, relations,
  databases, timestamped input sequences, action commit).
* :mod:`repro.logic` — the rule languages PL, CQ(=,≠), UCQ, FO, plus SAT,
  datalog and answering-queries-using-views.
* :mod:`repro.automata` — DFA/NFA/AFA, regular-language rewriting, RPQs.
* :mod:`repro.analysis` — the decision procedures of Table 1
  (non-emptiness, validation, equivalence per class).
* :mod:`repro.guard` — the resource governor (deadlines, step budgets,
  memory ceilings, cancellation) every bounded procedure checkpoints
  against, plus deterministic fault injection and the batch front-end.
* :mod:`repro.mediator` — SWS mediators (Definition 5.1) and the
  composition-synthesis procedures of Table 2.
* :mod:`repro.models` — the Roman and peer models and the Section 3
  translations into SWS classes.
* :mod:`repro.reductions` — executable hardness reductions (SAT, AFA,
  FO-satisfiability).
* :mod:`repro.workloads` — the travel-package scenario of Figure 1 and the
  generators the benchmarks sweep.

Quickstart::

    from repro.workloads.travel import travel_service, sample_database, booking_request
    service = travel_service()
    result = service.run(sample_database(), booking_request())
    print(result.output)
"""

from repro.core import SWS, SWSClass, SWSKind, SynthesisRule, TransitionRule, classify
from repro.data import Database, InputSequence, Relation, RelationSchema
from repro.guard import Budget, CancelToken, Guard, batch_run

__version__ = "1.0.0"

__all__ = [
    "Budget",
    "CancelToken",
    "Database",
    "Guard",
    "InputSequence",
    "Relation",
    "RelationSchema",
    "SWS",
    "SWSClass",
    "SWSKind",
    "SynthesisRule",
    "TransitionRule",
    "batch_run",
    "classify",
    "__version__",
]
