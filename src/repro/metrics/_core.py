"""The instruments and registry behind :mod:`repro.metrics`.

Design constraints, mirroring :mod:`repro.obs._tracer`:

1. **Zero overhead when disabled.**  Every instrumented site goes
   through :func:`counter` / :func:`gauge` / :func:`histogram`; with
   metrics off those return a shared no-op instrument after one global
   flag check, so the serving layer (and the guard's trip path) cost
   nothing measurable in the default configuration.

2. **Percentiles, not averages.**  Solve times across instance families
   are heavy-tailed (EXPTIME/PSPACE lower bounds guarantee it), so the
   :class:`Histogram` is a fixed log-bucket streaming sketch: constant
   memory, O(1) observe, p50/p90/p99/max readouts with bounded relative
   error (one bucket's growth factor).

3. **Cross-process mergeable.**  Worker processes record into their own
   registry and spool *cumulative* snapshots to disk; the parent folds
   them in with :meth:`Registry.merge_snapshot`, which applies only the
   delta since the last merge per source — merging is idempotent and
   counters are never double-counted however often the spool is polled.

This module is import-light on purpose (stdlib only), so the guard and
the lowest serving layers can record without import cycles.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from typing import Any, IO, Iterator, Mapping

METRICS_ENV_VAR = "REPRO_METRICS"

#: Snapshot format version, stamped into every exported snapshot.
METRICS_SCHEMA_VERSION = 1

#: Hot-path flag.  Read directly by the instrument accessors; mutate
#: only through :func:`configure`.
ENABLED = False

#: Default seconds between periodic snapshot lines (see
#: ``REPRO_METRICS_INTERVAL``).
DEFAULT_EXPORT_INTERVAL_S = 1.0

# -- histogram bucket layout ---------------------------------------------------
#
# Bucket 0 holds values below _BUCKET_BASE; bucket i (1..BUCKETS) holds
# [_BUCKET_BASE * 2**(i-1), _BUCKET_BASE * 2**i).  1µs .. ~9 years of
# seconds-valued observations land in-range; anything above clamps into
# the last bucket (max is tracked exactly regardless).
_BUCKET_BASE = 1e-6
BUCKETS = 48


def bucket_index(value: float) -> int:
    """The log-bucket index for ``value`` (clamped to the fixed range)."""
    if value < _BUCKET_BASE:
        return 0
    index = int(math.log2(value / _BUCKET_BASE)) + 1
    return index if index < BUCKETS else BUCKETS


def bucket_bounds(index: int) -> tuple[float, float]:
    """The ``[lo, hi)`` value range of bucket ``index``."""
    if index <= 0:
        return (0.0, _BUCKET_BASE)
    return (_BUCKET_BASE * 2.0 ** (index - 1), _BUCKET_BASE * 2.0**index)


def encode_key(name: str, labels: Mapping[str, Any]) -> str:
    """``name{k=v,...}`` with sorted labels; just ``name`` when unlabeled."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def decode_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`encode_key` (label values come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """A monotonically increasing count (float-friendly for second sums)."""

    kind = "counter"
    __slots__ = ("key", "_lock", "_value")

    def __init__(self, key: str) -> None:
        self.key = key
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def dump(self) -> float:
        value = self._value
        return int(value) if value == int(value) else value


class Gauge:
    """A sampled instantaneous value (queue depth, in-flight jobs)."""

    kind = "gauge"
    __slots__ = ("key", "_lock", "_value")

    def __init__(self, key: str) -> None:
        self.key = key
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def dump(self) -> float:
        return self._value


class Histogram:
    """Fixed log-bucket streaming histogram with quantile readouts.

    O(1) observe into one of :data:`BUCKETS` + 1 power-of-two buckets;
    quantiles interpolate linearly within the landing bucket, clamped to
    the exact observed min/max, so the relative error is bounded by one
    bucket's growth factor (2×) and the tails (p99, max) — the signal
    for heavy-tailed solve times — are never under-reported past that.
    """

    kind = "histogram"
    __slots__ = ("key", "_lock", "_buckets", "count", "sum", "min", "max")

    def __init__(self, key: str) -> None:
        self.key = key
        self._lock = threading.Lock()
        self._buckets = [0] * (BUCKETS + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._buckets[bucket_index(value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def quantile(self, q: float) -> float | None:
        """The approximate ``q``-quantile (0 <= q <= 1), or None if empty."""
        with self._lock:
            if not self.count:
                return None
            if q >= 1.0:
                return self.max
            rank = q * self.count
            cumulative = 0.0
            for index, bucket_count in enumerate(self._buckets):
                if not bucket_count:
                    continue
                if cumulative + bucket_count >= rank:
                    lo, hi = bucket_bounds(index)
                    fraction = (rank - cumulative) / bucket_count
                    estimate = lo + (hi - lo) * max(0.0, min(1.0, fraction))
                    return max(self.min, min(self.max, estimate))
                cumulative += bucket_count
            return self.max

    def readout(self) -> dict[str, float | int | None]:
        """count/sum/mean plus the tail summary (p50/p90/p99/min/max)."""
        count = self.count
        return {
            "count": count,
            "sum": self.sum,
            "mean": self.sum / count if count else None,
            "min": self.min if count else None,
            "max": self.max if count else None,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def dump(self) -> dict[str, Any]:
        with self._lock:
            buckets = {
                str(i): n for i, n in enumerate(self._buckets) if n
            }
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "buckets": buckets,
            }

    def merge_dump_delta(
        self,
        bucket_deltas: Mapping[str, int],
        count_delta: int,
        sum_delta: float,
        observed_min: float | None,
        observed_max: float | None,
    ) -> None:
        """Fold another histogram's *delta* (same bucket layout) in."""
        with self._lock:
            for index, delta in bucket_deltas.items():
                i = int(index)
                if 0 <= i <= BUCKETS:
                    self._buckets[i] += delta
            self.count += count_delta
            self.sum += sum_delta
            if observed_min is not None and observed_min < self.min:
                self.min = observed_min
            if observed_max is not None and observed_max > self.max:
                self.max = observed_max


class _NoopInstrument:
    """The shared do-nothing instrument returned while metrics are off."""

    __slots__ = ()
    kind = "noop"
    count = 0
    sum = 0.0
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def quantile(self, q: float) -> None:
        return None

    def readout(self) -> dict[str, Any]:
        return {}


NOOP_INSTRUMENT = _NoopInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Registry:
    """Process-wide instrument table with snapshot export and merging."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        # source -> instrument key -> last merged cumulative dump, so a
        # re-polled worker spool only contributes its delta.
        self._merge_state: dict[str, dict[str, Any]] = {}
        self._seq = 0

    def _get(self, kind: str, name: str, labels: Mapping[str, Any]):
        key = encode_key(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = _KINDS[kind](key)
                self._instruments[key] = instrument
            elif instrument.kind != kind:
                raise ValueError(
                    f"instrument {key!r} already registered as "
                    f"{instrument.kind}, not {kind}"
                )
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def instruments(self) -> dict[str, Counter | Gauge | Histogram]:
        with self._lock:
            return dict(self._instruments)

    def reset(self) -> None:
        """Drop every instrument and all merge bookkeeping (tests, forks)."""
        with self._lock:
            self._instruments.clear()
            self._merge_state.clear()
            self._seq = 0

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One JSON-ready cumulative snapshot of every instrument."""
        counters: dict[str, Any] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for key, instrument in self.instruments().items():
            if instrument.kind == "counter":
                counters[key] = instrument.dump()
            elif instrument.kind == "gauge":
                gauges[key] = instrument.dump()
            else:
                histograms[key] = instrument.dump()
        with self._lock:
            self._seq += 1
            seq = self._seq
        return {
            "event": "metrics",
            "v": METRICS_SCHEMA_VERSION,
            "seq": seq,
            "pid": os.getpid(),
            "t_wall": round(time.time(), 6),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_snapshot(self, snap: Mapping[str, Any], source: str) -> None:
        """Fold a *cumulative* snapshot from ``source`` into this registry.

        Counters and histograms contribute only the delta beyond what
        this source already merged — polling the same spool file twice
        (or merging an unchanged snapshot) adds nothing.  Gauges are
        instantaneous, so each is re-set under an extra ``worker=source``
        label, keeping per-worker readings distinguishable.
        """
        with self._lock:
            state = self._merge_state.setdefault(source, {})
        for key, value in (snap.get("counters") or {}).items():
            last = state.get(key, 0.0)
            delta = value - last
            if delta < 0:  # restarted source: its whole count is new
                delta = value
            state[key] = value
            if delta > 0:
                name, labels = decode_key(key)
                self.counter(name, **labels).inc(delta)
        for key, dump in (snap.get("histograms") or {}).items():
            last = state.get(key) or {"count": 0, "sum": 0.0, "buckets": {}}
            if dump["count"] < last["count"]:  # restarted source
                last = {"count": 0, "sum": 0.0, "buckets": {}}
            bucket_deltas = {
                index: count - last["buckets"].get(index, 0)
                for index, count in (dump.get("buckets") or {}).items()
            }
            count_delta = dump["count"] - last["count"]
            sum_delta = dump["sum"] - last["sum"]
            state[key] = dump
            if count_delta > 0:
                name, labels = decode_key(key)
                self.histogram(name, **labels).merge_dump_delta(
                    bucket_deltas,
                    count_delta,
                    sum_delta,
                    dump.get("min"),
                    dump.get("max"),
                )
        for key, value in (snap.get("gauges") or {}).items():
            name, labels = decode_key(key)
            self.gauge(name, worker=source, **labels).set(value)


#: The process-wide registry every accessor records into.
REGISTRY = Registry()


def counter(name: str, **labels: Any) -> Counter | _NoopInstrument:
    """The named counter — or the shared no-op while metrics are off."""
    if not ENABLED:
        return NOOP_INSTRUMENT
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge | _NoopInstrument:
    """The named gauge — or the shared no-op while metrics are off."""
    if not ENABLED:
        return NOOP_INSTRUMENT
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram | _NoopInstrument:
    """The named histogram — or the shared no-op while metrics are off."""
    if not ENABLED:
        return NOOP_INSTRUMENT
    return REGISTRY.histogram(name, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Shorthand: ``histogram(name, **labels).observe(value)``."""
    if ENABLED:
        REGISTRY.histogram(name, **labels).observe(value)


def is_enabled() -> bool:
    """Whether instruments are currently recording."""
    return ENABLED


def snapshot() -> dict[str, Any]:
    """A cumulative snapshot of the process registry (see schema docs)."""
    return REGISTRY.snapshot()


# -- export --------------------------------------------------------------------

_export_lock = threading.Lock()
_path: str | None = None
_stream: IO[str] | None = None
_spool_path: str | None = None
_exporter: "_Exporter | None" = None
_atexit_registered = False


class _Exporter(threading.Thread):
    """Daemon thread appending one snapshot line per interval."""

    def __init__(self, interval_s: float) -> None:
        super().__init__(name="repro-metrics-exporter", daemon=True)
        self.interval_s = interval_s
        # Not named _stop: threading.Thread owns that attribute.
        self._halt = threading.Event()

    def run(self) -> None:  # pragma: no cover - timing-dependent loop
        while not self._halt.wait(self.interval_s):
            try:
                write_snapshot()
            except Exception:
                return

    def stop(self) -> None:
        self._halt.set()


def write_snapshot() -> dict[str, Any] | None:
    """Append one snapshot line to the configured sink; returns it.

    With a spool path configured (worker mode) the snapshot *replaces*
    the spool file instead (atomic rename), so the parent always reads
    one complete cumulative snapshot per worker.  No-op (returns None)
    while metrics are disabled or no sink is configured.
    """
    if not ENABLED:
        return None
    snap = REGISTRY.snapshot()
    line = json.dumps(snap, sort_keys=True)
    with _export_lock:
        if _spool_path is not None:
            tmp = f"{_spool_path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(line + "\n")
            os.replace(tmp, _spool_path)
        elif _stream is not None:
            _stream.write(line + "\n")
            try:
                _stream.flush()
            except OSError:  # pragma: no cover - sink went away
                pass
        else:
            return snap
    return snap


#: Minimum seconds between :func:`maybe_write_snapshot` writes.
MIN_SNAPSHOT_INTERVAL_S = 0.5

_last_snapshot_write = 0.0


def maybe_write_snapshot(
    min_interval_s: float = MIN_SNAPSHOT_INTERVAL_S,
) -> dict[str, Any] | None:
    """Throttled :func:`write_snapshot` for in-band callers.

    The progress tracker calls this on every emitted progress event so a
    long-running worker job's spool file refreshes *mid-job* (the normal
    per-job write in the pool only lands when the job finishes).  The
    throttle makes it safe to call at event rate; returns the snapshot
    when one was written, else ``None``.
    """
    global _last_snapshot_write
    if not ENABLED:
        return None
    now = time.monotonic()
    if now - _last_snapshot_write < min_interval_s:
        return None
    _last_snapshot_write = now
    return write_snapshot()


def _close_stream() -> None:
    global _stream
    if _stream is not None:
        try:
            _stream.close()
        except OSError:  # pragma: no cover - best-effort close
            pass
    _stream = None


def _stop_exporter() -> None:
    global _exporter
    if _exporter is not None:
        _exporter.stop()
        _exporter = None


def _atexit_flush() -> None:  # pragma: no cover - interpreter shutdown
    try:
        write_snapshot()
    except Exception:
        pass


def configure(
    path: str | None = None,
    enabled: bool | None = None,
    interval_s: float | None = None,
    spool_path: str | None = None,
    mode: str = "a",
) -> None:
    """(Re)configure metrics recording and snapshot export.

    * ``configure(path="metrics.jsonl")`` — enable recording and start a
      daemon exporter appending one cumulative snapshot per
      ``interval_s`` (default :data:`DEFAULT_EXPORT_INTERVAL_S`, or
      ``REPRO_METRICS_INTERVAL``), plus a final snapshot at interpreter
      exit.  ``mode="w"`` truncates the file first.
    * ``configure(spool_path=...)`` — worker mode: recording on, no
      periodic thread; each :func:`write_snapshot` atomically replaces
      the spool file for the parent to merge.
    * ``configure(enabled=True)`` — recording on with no sink (snapshots
      via :func:`snapshot` only — what tests use).
    * ``configure(enabled=False)`` — flush a final snapshot, stop the
      exporter, close the sink, disable recording.

    ``REPRO_METRICS=metrics.jsonl`` in the environment is the zero-code
    entry point, mirroring ``REPRO_TRACE``.
    """
    global ENABLED, _path, _stream, _spool_path, _atexit_registered
    global _exporter
    if path is not None and spool_path is not None:
        raise ValueError("configure() takes a path or a spool_path, not both")
    if interval_s is None:
        try:
            interval_s = float(
                os.environ.get("REPRO_METRICS_INTERVAL", DEFAULT_EXPORT_INTERVAL_S)
            )
        except ValueError:
            interval_s = DEFAULT_EXPORT_INTERVAL_S
    if path is not None:
        with _export_lock:
            _stop_exporter()
            _close_stream()
            _path = path
            _spool_path = None
            _stream = open(path, mode, encoding="utf-8")
        ENABLED = True
        _exporter = _Exporter(interval_s)
        _exporter.start()
        if not _atexit_registered:
            import atexit

            atexit.register(_atexit_flush)
            _atexit_registered = True
    elif spool_path is not None:
        with _export_lock:
            _stop_exporter()
            _close_stream()
            _path = None
            _spool_path = spool_path
        ENABLED = True
    if enabled is not None:
        if enabled:
            ENABLED = True
        else:
            if ENABLED:
                write_snapshot()
            ENABLED = False
            with _export_lock:
                _stop_exporter()
                _close_stream()
                _path = None
                _spool_path = None


def reset_after_fork(spool_path: str | None) -> None:
    """Re-arm metrics inside a freshly forked worker process.

    The child inherits the parent's registry contents, an exporter
    thread that did not survive the fork, and an open sink it must not
    write to (two processes appending would interleave).  Zero the
    registry (the parent already owns those counts — spooling them again
    would double-count on merge), detach the parent's sink, and either
    switch to spool mode or disable recording entirely.
    """
    global ENABLED, _path, _stream, _spool_path, _exporter
    with _export_lock:
        _exporter = None  # thread object is dead in the child
        _stream = None  # the parent owns the file handle
        _path = None
        _spool_path = None
    REGISTRY.reset()
    if spool_path is not None:
        configure(spool_path=spool_path)
    else:
        ENABLED = False


# -- snapshot files ------------------------------------------------------------


def iter_snapshots(path: str) -> Iterator[dict[str, Any]]:
    """Parse a JSONL snapshot file, skipping blanks and non-metrics lines."""
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed snapshot line: {error}"
                ) from error
            if record.get("event") == "metrics":
                yield record


def last_snapshot(path: str) -> dict[str, Any] | None:
    """The final snapshot in a JSONL export (or a bare-JSON spool file)."""
    last = None
    for snap in iter_snapshots(path):
        last = snap
    return last


def histogram_readout(dump: Mapping[str, Any]) -> dict[str, float | int | None]:
    """Quantile readout computed from a snapshot's histogram *dump*."""
    scratch = Histogram("<snapshot>")
    scratch.merge_dump_delta(
        dump.get("buckets") or {},
        dump.get("count", 0),
        dump.get("sum", 0.0),
        dump.get("min"),
        dump.get("max"),
    )
    return scratch.readout()


def counter_total(counters: Mapping[str, float], name: str) -> float:
    """Sum of every counter in a snapshot dump whose *name* matches.

    Labeled variants (``serve.cache.hits{tier=memory}``) roll up into
    their base name, so derived rates don't depend on label layout.
    """
    return sum(
        value for key, value in counters.items() if decode_key(key)[0] == name
    )


def cache_hit_rate(counters: Mapping[str, float]) -> float | None:
    """The serve-cache hit rate implied by a counters dump, or ``None``."""
    hits = counter_total(counters, "serve.cache.hits")
    misses = counter_total(counters, "serve.cache.misses")
    total = hits + misses
    return hits / total if total else None


def bench_context() -> dict[str, Any] | None:
    """A compact observability stamp for BENCH ``_meta`` blocks.

    ``None`` while metrics are disabled.  Otherwise: the serve cache hit
    rate (when the cache counters have moved) and the p99/count of every
    live histogram — enough for a benchmark JSON to carry the cache and
    latency context it was measured under.
    """
    if not ENABLED:
        return None
    instruments = REGISTRY.instruments()
    context: dict[str, Any] = {}
    rate = cache_hit_rate(
        {k: i.value for k, i in instruments.items() if i.kind == "counter"}
    )
    if rate is not None:
        context["cache_hit_rate"] = round(rate, 4)
    histograms = {}
    for key, instrument in sorted(instruments.items()):
        if instrument.kind == "histogram" and instrument.count:
            histograms[key] = {
                "count": instrument.count,
                "p99_s": round(instrument.quantile(0.99), 6),
            }
    if histograms:
        context["histograms"] = histograms
    return context


# Zero-code activation: REPRO_METRICS=metrics.jsonl exports at import.
_env_path = os.environ.get(METRICS_ENV_VAR)
if _env_path:
    configure(path=_env_path, mode="a")
