"""repro.metrics — counters, gauges, and latency histograms.

The decision procedures' complexity bounds guarantee heavy-tailed solve
times, so the serving layer is judged on *percentiles*, not averages.
This package is the measurement layer the scaling roadmap items are
tuned against:

* :func:`counter` / :func:`gauge` / :func:`histogram` — thread-safe
  instruments out of a process-wide registry.  Counters only go up;
  gauges sample instantaneous state (queue depth, in-flight jobs); the
  histogram is a fixed log-bucket streaming sketch with p50/p90/p99/max
  readouts.  With metrics **off** (the default) every accessor returns a
  shared no-op instrument after one flag check — the instrumented serve
  and guard paths cost nothing measurable, exactly like ``repro.obs``
  spans.
* :func:`configure` / ``REPRO_METRICS=metrics.jsonl`` — enable
  recording and append one cumulative JSONL snapshot per second (plus a
  final one at exit), mirroring ``REPRO_TRACE``.
* **Cross-process merging** — pool workers record into their own
  registry, spool cumulative snapshots, and the parent folds them in
  delta-wise (:meth:`Registry.merge_snapshot`), so parent-side
  histograms include worker samples and nothing double-counts.

Quickstart::

    from repro import metrics
    metrics.configure(path="metrics.jsonl", mode="w")

    from repro.serve import JobSpec, SolverService
    from repro.workloads.scaling import pl_counter_sws

    with SolverService(workers=2) as service:
        service.run_batch(
            [JobSpec("nonempty_pl", (pl_counter_sws(n),)) for n in (6, 7, 8)]
        )
    lat = metrics.histogram("serve.job.latency_s", procedure="nonempty_pl")
    print(lat.readout())   # {'count': 3, 'p50': ..., 'p99': ..., ...}

Watch a running batch with ``python -m repro.serve top metrics.jsonl``;
gate CI on a snapshot with ``python -m repro.obs check``.  See
``docs/OBSERVABILITY.md`` for the instrument catalog and snapshot
schema.
"""

from repro.metrics._core import (
    BUCKETS,
    Counter,
    Gauge,
    Histogram,
    METRICS_ENV_VAR,
    METRICS_SCHEMA_VERSION,
    NOOP_INSTRUMENT,
    REGISTRY,
    Registry,
    bench_context,
    bucket_bounds,
    bucket_index,
    cache_hit_rate,
    configure,
    counter,
    counter_total,
    decode_key,
    encode_key,
    gauge,
    histogram,
    histogram_readout,
    is_enabled,
    iter_snapshots,
    last_snapshot,
    observe,
    reset_after_fork,
    snapshot,
    maybe_write_snapshot,
    write_snapshot,
)

__all__ = [
    "BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA_VERSION",
    "NOOP_INSTRUMENT",
    "REGISTRY",
    "Registry",
    "bench_context",
    "bucket_bounds",
    "bucket_index",
    "cache_hit_rate",
    "configure",
    "counter",
    "counter_total",
    "decode_key",
    "encode_key",
    "gauge",
    "histogram",
    "histogram_readout",
    "is_enabled",
    "iter_snapshots",
    "last_snapshot",
    "observe",
    "reset_after_fork",
    "snapshot",
    "maybe_write_snapshot",
    "write_snapshot",
]
