"""Expansion of SWS(CQ, UCQ) services into UCQ≠ queries.

For a *fixed session length* ``n``, the execution tree of a CQ/UCQ service
has a fixed shape (every node spawns all successors until the input is
exhausted), and all rule queries are positive; composing the queries along
the tree therefore turns the whole run into a single UCQ with inequalities
over the database relations and per-step input relations ``In_1, ..., In_n``:

    τ(D, I1..In)  =  Q_n(D, In_1 ← I1, ..., In_n ← In).

The paper uses this expansion implicitly throughout Section 4: nonrecursive
services are "converted to UCQ queries with inequality" (Section 5.2), the
PSPACE non-emptiness bound for SWS_nr(CQ, UCQ) checks the (exponentially
large) expansion disjunct-by-disjunct, and the coNEXPTIME equivalence bound
applies Klug-style containment to two expansions.

Semantics captured exactly:

* the empty-register cutoff at internal nodes (rule (1)) becomes a
  *nonemptiness guard*: each disjunct of an internal state's action query is
  conjoined with the (existentially quantified) body of the state's message
  definition — positive, hence still UCQ;
* input exhaustion (``j > n``) empties internal contributions and makes
  ``In_j`` the empty relation at final nodes;
* the root is exempt from the empty-register cutoff (the paper's special
  case), and its message definition is the empty query.

For a nonrecursive service of dependency depth ``d``, ``Q_n`` is literally
the same query for every ``n ≥ d + 1`` (no node has a larger timestamp), so
:func:`saturation_length` bounds the lengths any analysis must consider —
this is the k-prefix phenomenon of Theorem 5.1(4) in relational form.
"""

from __future__ import annotations

from typing import Mapping

from repro._stats import STATS
from repro.core.classes import SWSClass, is_in_class, require_class
from repro.core.sws import IN, MSG, SWS, SWSKind
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation, Row
from repro.data.schema import RelationSchema
from repro.errors import AnalysisError
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.terms import FreshVariableFactory, Variable
from repro.logic.ucq import UnionQuery, compose_union


def input_relation_name(j: int) -> str:
    """The relation name standing for the j-th input message."""
    return f"In_{j}"


def as_union(query) -> UnionQuery:
    """Wrap a CQ as a singleton UCQ; pass UCQs through."""
    if isinstance(query, ConjunctiveQuery):
        return UnionQuery.of(query)
    if isinstance(query, UnionQuery):
        return query
    raise AnalysisError(
        f"expansion requires CQ/UCQ rule queries, got {type(query).__name__}"
    )


def expand(sws: SWS, session_length: int) -> UnionQuery:
    """The UCQ≠ query ``Q_n`` of the service at session length ``n``.

    Works for recursive services too — the tree at a fixed ``n`` is finite —
    but its size is exponential in ``n`` for recursive services and
    exponential in the DAG depth for nonrecursive ones.
    """
    require_class(sws, SWSClass.CQ_UCQ, "expand")
    if sws.kind is not SWSKind.RELATIONAL or sws.output_arity is None:
        raise AnalysisError("expand() needs a relational SWS")
    if session_length < 0:
        raise AnalysisError("session_length must be non-negative")
    payload_arity = sws.input_schema.arity if sws.input_schema else 0
    factory = FreshVariableFactory()
    n = session_length

    def in_definition(j: int) -> UnionQuery:
        if j > n:
            return UnionQuery.empty(payload_arity, name=IN)
        head = tuple(Variable(f"x{i}") for i in range(payload_arity))
        identity = ConjunctiveQuery(
            head, [Atom(input_relation_name(j), head)], (), IN
        )
        return UnionQuery.of(identity)

    def guard(result: UnionQuery, msg_def: UnionQuery) -> UnionQuery:
        """Conjoin "the message register is nonempty" to every disjunct."""
        guarded: list[ConjunctiveQuery] = []
        for disjunct in result.disjuncts:
            for witness in msg_def.disjuncts:
                renamed = witness.rename_apart(factory)
                candidate = ConjunctiveQuery(
                    disjunct.head,
                    disjunct.atoms + renamed.atoms,
                    disjunct.comparisons + renamed.comparisons,
                    disjunct.name,
                )
                if candidate.is_satisfiable():
                    guarded.append(candidate)
        return UnionQuery(guarded, arity=result.arity, name=result.name)

    def act_query(state: str, j: int, msg_def: UnionQuery) -> UnionQuery:
        rule = sws.transitions[state]
        sigma = as_union(sws.synthesis[state].query)
        if rule.is_final:
            definitions = {MSG: msg_def, IN: in_definition(j)}
            return compose_union(sigma, definitions, factory)
        if j > n:
            return UnionQuery.empty(sws.output_arity, name=state)
        definitions: dict[str, UnionQuery] = {}
        aliases = sws.successor_register_aliases(state)
        child_results: list[UnionQuery] = []
        # Duplicate (target, φ) pairs denote children with literally equal
        # registers; computing their subtree once halves the work on DAGs
        # that fan out through repeated targets (the diamond family).
        duplicate_cache: dict[tuple[str, int], UnionQuery] = {}
        for target, phi in rule.targets:
            key = (target, id(phi))
            if key not in duplicate_cache:
                child_msg = compose_union(
                    as_union(phi), {MSG: msg_def, IN: in_definition(j)}, factory
                )
                duplicate_cache[key] = act_query(target, j + 1, child_msg)
            child_results.append(duplicate_cache[key])
        for name, position in aliases.items():
            definitions[name] = child_results[position]
        result = compose_union(sigma, definitions, factory)
        if state != sws.start:
            result = guard(result, msg_def)
        return result

    root_msg = UnionQuery.empty(payload_arity, name=MSG)
    expansion = act_query(sws.start, 1, root_msg)
    result = UnionQuery(
        expansion.disjuncts, arity=sws.output_arity, name=sws.name
    ).satisfiable_disjuncts()
    STATS.expansion_disjuncts += len(result.disjuncts)
    return result


def saturation_length(sws: SWS) -> int:
    """The session length at which the expansion stops changing.

    A nonrecursive service of dependency depth ``d`` has execution trees of
    node-depth ≤ d, so timestamps never exceed ``d + 1``; ``Q_n = Q_{d+1}``
    for all ``n ≥ d + 1``.
    """
    if sws.is_recursive():
        raise AnalysisError("saturation_length() is for nonrecursive services")
    return sws.depth() + 1


def expansion_relations(sws: SWS, session_length: int) -> list[str]:
    """The relation names an expansion may mention."""
    names = list(sws.db_schema.relation_names())
    names.extend(input_relation_name(j) for j in range(1, session_length + 1))
    return names


def evaluate_expansion(
    expansion: UnionQuery,
    sws: SWS,
    database: Database,
    inputs: InputSequence,
    session_length: int,
) -> frozenset[Row]:
    """Evaluate ``Q_n`` against concrete ``(D, I)``.

    Used by tests to confirm ``Q_n(D, I) = τ(D, I)`` — the expansion's
    correctness property.
    """
    payload = inputs.schema
    env: dict[str, Relation] = {name: database[name] for name in database}
    for j in range(1, session_length + 1):
        name = input_relation_name(j)
        env[name] = Relation(payload.renamed(name), inputs.message(j).rows)
    # Relations the expansion mentions but the run never populated (e.g.
    # inputs beyond the sequence) evaluate as empty.
    for name in expansion.relations():
        if name not in env:
            arity = _relation_arity(expansion, name)
            schema = RelationSchema(name, tuple(f"a{i}" for i in range(arity)))
            env[name] = Relation.empty(schema)
    return expansion.evaluate(env)


def _relation_arity(expansion: UnionQuery, name: str) -> int:
    for disjunct in expansion.disjuncts:
        for atom in disjunct.atoms:
            if atom.relation == name:
                return len(atom.terms)
    raise AnalysisError(f"relation {name!r} not in the expansion")
