"""Execution trees.

A run of an SWS on ``(D, I)`` is a rewriting of execution trees
(Section 2, "Runs of SWS's").  Each node carries a state, a timestamp, a
message register and an action register.  The engines in
:mod:`repro.core.run` build the final tree of the run — the tree in which
no register is left undefined — and the metrics here feed the Figure 1
benchmark (parallel rounds vs sequential FSA steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generic, Iterator, TypeVar

RegisterT = TypeVar("RegisterT")


@dataclass
class ExecutionNode(Generic[RegisterT]):
    """One node of an execution tree.

    ``msg`` and ``act`` are booleans for PL services and
    :class:`~repro.data.relation.Relation` values for relational services;
    ``act`` is ``None`` (the paper's ⊥) only transiently during a run.
    """

    state: str
    timestamp: int
    msg: RegisterT
    act: RegisterT | None = None
    children: list["ExecutionNode[RegisterT]"] = field(default_factory=list)

    def size(self) -> int:
        """Number of nodes in the subtree."""
        return 1 + sum(child.size() for child in self.children)

    def height(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""
        if not self.children:
            return 0
        return 1 + max(child.height() for child in self.children)

    def leaves(self) -> Iterator["ExecutionNode[RegisterT]"]:
        """All leaf nodes, left to right."""
        if not self.children:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def nodes(self) -> Iterator["ExecutionNode[RegisterT]"]:
        """All nodes, pre-order."""
        yield self
        for child in self.children:
            yield from child.nodes()

    def max_timestamp(self) -> int:
        """The largest timestamp in the tree.

        Mediator runs need this: after a component service consumes part of
        the input, the mediator resumes at the first unconsumed message
        (Section 5.1, rule (2)).
        """
        return max(node.timestamp for node in self.nodes())

    def render(self, indent: str = "") -> str:
        """A human-readable tree dump (for examples and debugging)."""
        summary = _summarize(self.msg), _summarize(self.act)
        lines = [
            f"{indent}{self.state}@{self.timestamp} msg={summary[0]} act={summary[1]}"
        ]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)


def _summarize(register: Any) -> str:
    if register is None:
        return "⊥"
    if isinstance(register, bool):
        return "true" if register else "false"
    try:
        return f"{len(register)} rows"
    except TypeError:
        return repr(register)


@dataclass
class RunResult(Generic[RegisterT]):
    """The outcome of one run: the output register and the final tree."""

    output: RegisterT
    tree: ExecutionNode[RegisterT]

    @property
    def accepted(self) -> bool:
        """For PL runs: whether the output value is true.

        For relational runs: whether the output relation is nonempty (the
        service "generated actions" in this session).
        """
        return bool(self.output)
