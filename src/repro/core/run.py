"""Run semantics: the step relation ⇒(τ, D, I) of Section 2.

The engine materializes the final execution tree of a run directly, in the
paper's two sweeps:

* **Generating** (top-down): a leaf ``v`` labeled ``q, j, Msg(v)`` with
  ``δ(q): q → (q1, φ1), ..., (qk, φk)``

  - rule (1): if ``k > 0`` and (``j > n``, or ``Msg(v)`` is empty and ``v``
    is not the root), set ``Act(v) = ∅``;
  - rule (2): otherwise for ``k > 0`` spawn children ``ui`` labeled
    ``qi, j+1`` with ``Msg(ui) = φi(D, Ij, Msg(v))``;
  - rule (3): if ``k = 0`` set ``Act(v) = ψ(D, Ij, Msg(v))`` — with ``Ij``
    the empty relation when ``j > n``.  Rule (3) takes precedence over
    rule (1) at final states: Example 2.2 requires the leaf states of τ1 to
    produce actions at timestamp 2 on a single-message input (see DESIGN.md
    §3 for the resolution of this overlap in the paper's formal text).

* **Gathering** (bottom-up, rule (4)): once every child's register is
  defined, ``Act(v) = ψ(Act(u1), ..., Act(uk))``.

The output of the run is ``Act(root)``.

Cost note: a recursive SWS on an ``n``-message input builds a tree of up to
``k^n`` nodes — runs are exponential in the session length by design (the
model processes all branches in parallel); the decision procedures in
:mod:`repro.analysis` avoid materializing trees.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro._stats import STATS
from repro.core.exec_tree import ExecutionNode, RunResult
from repro.core.sws import IN, MSG, SWS, SWSKind
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.errors import RunError
from repro.logic import pl

#: A PL input word: a sequence of truth assignments.
PLWord = Sequence[frozenset[str]]


def run(sws: SWS, *args, **kwargs) -> RunResult:
    """Run an SWS; dispatches on its kind.

    PL services: ``run(sws, word)`` with ``word`` a sequence of truth
    assignments.  Relational services: ``run(sws, database, inputs)``.
    """
    STATS.runs_executed += 1
    if sws.kind is SWSKind.PL:
        return run_pl(sws, *args, **kwargs)
    return run_relational(sws, *args, **kwargs)


# -- relational engine -----------------------------------------------------------


def output_schema(sws: SWS) -> RelationSchema:
    """The Rout register schema of a relational SWS."""
    if sws.output_arity is None:
        raise RunError(f"{sws.name}: relational runs need an output arity")
    return RelationSchema("Act", tuple(f"o{i}" for i in range(sws.output_arity)))


def run_relational(
    sws: SWS,
    database: Database,
    inputs: InputSequence,
    root_msg: Relation | None = None,
) -> RunResult[Relation]:
    """Run a relational SWS on a database and an input sequence.

    ``root_msg`` seeds the start state's message register — mediators
    instantiate a component's start register with their own Msg(v)
    (Section 5.1, rule (2)); plain runs leave it empty.
    """
    if sws.kind is not SWSKind.RELATIONAL:
        raise RunError(f"{sws.name} is not a relational SWS")
    if sws.input_schema is None:
        raise RunError(f"{sws.name} has no input schema")
    if inputs.schema.arity != sws.input_schema.arity:
        raise RunError(
            f"input payload arity {inputs.schema.arity} does not match the "
            f"service's input schema arity {sws.input_schema.arity}"
        )
    payload = sws.input_schema
    out_schema = output_schema(sws)
    empty_msg = Relation.empty(payload.renamed(MSG))
    empty_act = Relation.empty(out_schema)
    n = len(inputs)

    def message_at(j: int) -> Relation:
        return Relation(payload.renamed(IN), inputs.message(j).rows)

    def base_env(j: int, msg: Relation) -> dict[str, Relation]:
        env: dict[str, Relation] = {name: database[name] for name in database}
        env[IN] = message_at(j)
        env[MSG] = Relation(payload.renamed(MSG), msg.rows)
        return env

    def evaluate(query, env: Mapping[str, Relation], schema: RelationSchema) -> Relation:
        rows = query.evaluate(env)
        return Relation(schema, rows)

    if root_msg is None:
        root_msg = empty_msg
    elif root_msg.schema.arity != payload.arity:
        raise RunError(
            f"root message arity {root_msg.schema.arity} does not match "
            f"the input payload arity {payload.arity}"
        )
    root: ExecutionNode[Relation] = ExecutionNode(
        sws.start, 1, Relation(payload.renamed(MSG), root_msg.rows)
    )
    # Two-phase iterative traversal: EXPAND applies rules (1)-(3),
    # GATHER applies rule (4) once children are done.
    EXPAND, GATHER = 0, 1
    stack: list[tuple[ExecutionNode[Relation], int]] = [(root, EXPAND)]
    while stack:
        node, phase = stack.pop()
        rule = sws.transitions[node.state]
        sigma = sws.synthesis[node.state].query
        j = node.timestamp
        if phase == EXPAND:
            if rule.is_final:
                env = base_env(j, node.msg)
                node.act = evaluate(sigma, env, out_schema)
                continue
            starved = j > n
            dead = (not node.msg) and node is not root
            if starved or dead:
                node.act = empty_act
                continue
            env = base_env(j, node.msg)
            for target, phi in rule.targets:
                msg_rows = phi.evaluate(env)
                child_msg = Relation(payload.renamed(MSG), msg_rows)
                node.children.append(ExecutionNode(target, j + 1, child_msg))
            stack.append((node, GATHER))
            for child in reversed(node.children):
                stack.append((child, EXPAND))
        else:  # GATHER
            env = _register_env(sws, node, out_schema)
            node.act = evaluate(sigma, env, out_schema)
    assert root.act is not None
    return RunResult(output=root.act, tree=root)


def _register_env(
    sws: SWS, node: ExecutionNode[Relation], out_schema: RelationSchema
) -> dict[str, Relation]:
    aliases = sws.successor_register_aliases(node.state)
    env: dict[str, Relation] = {}
    for name, position in aliases.items():
        child = node.children[position]
        if child.act is None:
            raise RunError("gathering before all children are defined")
        env[name] = Relation(out_schema.renamed(name), child.act.rows)
    return env


# -- PL engine ------------------------------------------------------------------------


def run_pl(sws: SWS, word: PLWord, root_msg: bool = False) -> RunResult[bool]:
    """Run a PL SWS on a word of truth assignments.

    Registers are booleans; an empty register is the value ``false``.  The
    output is the truth value gathered at the root.  ``root_msg`` seeds the
    start state's register (used by mediator runs).
    """
    if sws.kind is not SWSKind.PL:
        raise RunError(f"{sws.name} is not a PL SWS")
    word = [frozenset(symbol) for symbol in word]
    n = len(word)

    def assignment_at(j: int) -> frozenset[str]:
        return word[j - 1] if 1 <= j <= n else frozenset()

    root: ExecutionNode[bool] = ExecutionNode(sws.start, 1, root_msg)
    EXPAND, GATHER = 0, 1
    stack: list[tuple[ExecutionNode[bool], int]] = [(root, EXPAND)]
    while stack:
        node, phase = stack.pop()
        rule = sws.transitions[node.state]
        sigma = sws.synthesis[node.state].query
        assert isinstance(sigma, pl.Formula)
        j = node.timestamp
        if phase == EXPAND:
            if rule.is_final:
                env = assignment_at(j) | ({MSG} if node.msg else frozenset())
                node.act = sigma.evaluate(env)
                continue
            if j > n or (not node.msg and node is not root):
                node.act = False
                continue
            env = assignment_at(j) | ({MSG} if node.msg else frozenset())
            for target, phi in rule.targets:
                assert isinstance(phi, pl.Formula)
                node.children.append(
                    ExecutionNode(target, j + 1, phi.evaluate(env))
                )
            stack.append((node, GATHER))
            for child in reversed(node.children):
                stack.append((child, EXPAND))
        else:  # GATHER
            aliases = sws.successor_register_aliases(node.state)
            env = frozenset(
                name
                for name, position in aliases.items()
                if node.children[position].act
            )
            node.act = sigma.evaluate(env)
    assert root.act is not None
    return RunResult(output=root.act, tree=root)
