"""A fluent builder for SWS's, with textual rule queries.

Hand-assembling ``TransitionRule``/``SynthesisRule`` dictionaries is
mechanical; the builder lets services be written the way the paper writes
them — one transition rule and one synthesis rule per state, queries in
concrete syntax:

    service = (
        relational_sws("tau1", DB_SCHEMA, payload=("tag", "key"), output_arity=2)
        .transition("q0", ("qa", "M(t, k) :- In(t, k), t = 'a'"))
        .synthesize("q0", "A(x, y) :- Act_qa(x, y)")
        .final("qa")
        .synthesize("qa", "A(k, f) :- Msg(t, k), Ra(k, f)")
        .build()
    )

Relational queries are parsed by :mod:`repro.logic.parsing` — CQ clauses
by default, UCQs via ``;``-separated disjuncts, FO via ``Head(...) := φ``.
PL services take formulas in :func:`repro.logic.pl.parse` syntax.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import SWSDefinitionError
from repro.logic import pl
from repro.logic.parsing import parse_cq, parse_fo_query, parse_ucq


def _parse_relational(text: str):
    """Dispatch on the rule arrow: ``:=`` is FO, ``:-`` is CQ/UCQ."""
    if ":=" in text:
        return parse_fo_query(text)
    if ";" in text:
        return parse_ucq(text)
    return parse_cq(text)


class SWSBuilder:
    """Accumulates states and rules; ``build()`` validates everything."""

    def __init__(
        self,
        name: str,
        kind: SWSKind,
        db_schema: DatabaseSchema | None = None,
        input_schema: RelationSchema | None = None,
        output_arity: int | None = None,
    ) -> None:
        self._name = name
        self._kind = kind
        self._db_schema = db_schema
        self._input_schema = input_schema
        self._output_arity = output_arity
        self._states: list[str] = []
        self._start: str | None = None
        self._transitions: dict[str, TransitionRule] = {}
        self._synthesis: dict[str, SynthesisRule] = {}

    # -- states -----------------------------------------------------------------

    def _register(self, state: str) -> None:
        if state not in self._states:
            self._states.append(state)
        if self._start is None:
            self._start = state

    def start(self, state: str) -> "SWSBuilder":
        """Declare the start state explicitly (default: first mentioned)."""
        self._register(state)
        self._start = state
        return self

    # -- rules -------------------------------------------------------------------

    def transition(
        self, state: str, *targets: tuple[str, str] | tuple[str, object]
    ) -> "SWSBuilder":
        """``δ(state): state → (target, query), ...``.

        Each target is ``(successor, query)``; string queries are parsed
        (PL or relational per the builder's kind), non-strings are taken
        as pre-built query objects.
        """
        self._register(state)
        parsed: list[tuple[str, object]] = []
        for target, query in targets:
            self._register(target)
            if isinstance(query, str):
                query = (
                    pl.parse(query)
                    if self._kind is SWSKind.PL
                    else _parse_relational(query)
                )
            parsed.append((target, query))
        if state in self._transitions:
            raise SWSDefinitionError(f"state {state!r} already has a transition rule")
        self._transitions[state] = TransitionRule(parsed)
        return self

    def final(self, state: str) -> "SWSBuilder":
        """Mark ``state`` final (empty transition rhs)."""
        self._register(state)
        if state in self._transitions:
            raise SWSDefinitionError(f"state {state!r} already has a transition rule")
        self._transitions[state] = TransitionRule()
        return self

    def synthesize(self, state: str, query: str | object) -> "SWSBuilder":
        """``σ(state): Act(state) ← query``."""
        self._register(state)
        if isinstance(query, str):
            query = (
                pl.parse(query)
                if self._kind is SWSKind.PL
                else _parse_relational(query)
            )
        if state in self._synthesis:
            raise SWSDefinitionError(f"state {state!r} already has a synthesis rule")
        self._synthesis[state] = SynthesisRule(query)
        return self

    # -- assembly -----------------------------------------------------------------

    def build(self) -> SWS:
        """Validate per Definition 2.1 and produce the service."""
        if self._start is None:
            raise SWSDefinitionError("a service needs at least one state")
        return SWS(
            self._states,
            self._start,
            self._transitions,
            self._synthesis,
            kind=self._kind,
            db_schema=self._db_schema,
            input_schema=self._input_schema,
            output_arity=self._output_arity,
            name=self._name,
        )


def pl_sws(name: str) -> SWSBuilder:
    """Builder for an SWS(PL, PL) service."""
    return SWSBuilder(name, SWSKind.PL)


def relational_sws(
    name: str,
    db_schema: DatabaseSchema,
    payload: Sequence[str] | RelationSchema,
    output_arity: int,
) -> SWSBuilder:
    """Builder for a relational (CQ/UCQ/FO) service.

    ``payload`` is the input payload schema, or just its attribute names.
    """
    if not isinstance(payload, RelationSchema):
        payload = RelationSchema("Rin", tuple(payload))
    return SWSBuilder(
        name,
        SWSKind.RELATIONAL,
        db_schema=db_schema,
        input_schema=payload,
        output_arity=output_arity,
    )
