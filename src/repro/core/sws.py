"""Synthesized Web services (Definition 2.1).

An SWS ``τ = (Q, δ, σ, q0)`` over schemas ``R`` (local database), ``Rin``
(input messages) and ``Rout`` (output actions) has, for every state ``q``,

* one transition rule ``δ(q): q → (q1, φ1), ..., (qk, φk)`` — each ``φi``
  is a query from ``R, Rin, Msg(q)`` to ``Msg(qi)``; ``k = 0`` marks a
  *final* state;
* one synthesis rule ``σ(q): Act(q) ← ψ`` — for ``k > 0``, ``ψ`` reads the
  successor action registers ``Act(q1), ..., Act(qk)``; for ``k = 0`` it
  reads ``R, Rin, Msg(q)``.

The start state never occurs on a rule's right-hand side.

Two query regimes share this one data type:

* **PL services** (``SWSKind.PL``): queries are propositional formulas;
  registers hold a single truth value; the local database is empty.  In a
  transition formula the reserved variable ``Msg`` denotes the parent's
  register and the remaining variables are input variables.  In an internal
  synthesis formula the variables ``A1, ..., Ak`` denote the successors'
  registers positionally (aliases ``Act_<state>`` work when successor
  states are pairwise distinct); a final synthesis formula uses input
  variables and ``Msg``.
* **Relational services** (``SWSKind.RELATIONAL``): queries are
  :class:`~repro.logic.cq.ConjunctiveQuery`,
  :class:`~repro.logic.ucq.UnionQuery` or
  :class:`~repro.logic.fo.FOQuery` objects over the database relations plus
  the reserved relation names ``In`` (the current input message, payload
  attributes only) and ``Msg`` (the parent register); internal synthesis
  queries range over ``Act1, ..., Actk`` (aliases ``Act_<state>`` when
  unambiguous).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Mapping, Union

from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import SWSDefinitionError
from repro.logic import pl
from repro.logic.cq import ConjunctiveQuery
from repro.logic.fo import FOQuery
from repro.logic.ucq import UnionQuery

#: Reserved relation/variable names inside rule queries.
MSG = "Msg"
IN = "In"

RelationalQuery = Union[ConjunctiveQuery, UnionQuery, FOQuery]
Query = Union[pl.Formula, RelationalQuery]


class SWSKind(Enum):
    """The two query regimes an SWS can be written in."""

    PL = "pl"
    RELATIONAL = "relational"


@dataclass(frozen=True)
class TransitionRule:
    """``δ(q): q → (q1, φ1), ..., (qk, φk)``; empty targets = final state."""

    targets: tuple[tuple[str, Query], ...]

    def __init__(self, targets: Iterable[tuple[str, Query]] = ()) -> None:
        object.__setattr__(self, "targets", tuple(targets))

    @property
    def is_final(self) -> bool:
        """Whether the rule's right-hand side is empty (``k = 0``)."""
        return not self.targets

    @property
    def successor_states(self) -> tuple[str, ...]:
        """Successor state names, in order (possibly with repeats)."""
        return tuple(state for state, _query in self.targets)

    def __len__(self) -> int:
        return len(self.targets)


@dataclass(frozen=True)
class SynthesisRule:
    """``σ(q): Act(q) ← ψ``."""

    query: Query


class SWS:
    """A synthesized Web service (Definition 2.1)."""

    def __init__(
        self,
        states: Iterable[str],
        start: str,
        transitions: Mapping[str, TransitionRule],
        synthesis: Mapping[str, SynthesisRule],
        *,
        kind: SWSKind,
        db_schema: DatabaseSchema | None = None,
        input_schema: RelationSchema | None = None,
        output_arity: int | None = None,
        name: str = "τ",
    ) -> None:
        self.states = tuple(dict.fromkeys(states))
        self.start = start
        self.transitions = dict(transitions)
        self.synthesis = dict(synthesis)
        self.kind = kind
        self.name = name
        self.db_schema = db_schema if db_schema is not None else DatabaseSchema()
        self.input_schema = input_schema
        self.output_arity = output_arity
        self._validate()

    # -- validation (Definition 2.1 well-formedness) ------------------------------------

    def _validate(self) -> None:
        state_set = set(self.states)
        if self.start not in state_set:
            raise SWSDefinitionError(
                f"start state {self.start!r} is not among the states"
            )
        missing_t = state_set - set(self.transitions)
        missing_s = state_set - set(self.synthesis)
        if missing_t:
            raise SWSDefinitionError(
                f"states without a transition rule: {sorted(missing_t)}"
            )
        if missing_s:
            raise SWSDefinitionError(
                f"states without a synthesis rule: {sorted(missing_s)}"
            )
        extra = (set(self.transitions) | set(self.synthesis)) - state_set
        if extra:
            raise SWSDefinitionError(f"rules for unknown states: {sorted(extra)}")
        for state, rule in self.transitions.items():
            for target, _query in rule.targets:
                if target not in state_set:
                    raise SWSDefinitionError(
                        f"transition of {state!r} targets unknown state {target!r}"
                    )
                if target == self.start:
                    raise SWSDefinitionError(
                        "the start state must not appear on any rule's rhs "
                        f"(found in δ({state!r}))"
                    )
        if self.kind is SWSKind.RELATIONAL:
            self._validate_relational()
        else:
            self._validate_pl()

    def _validate_relational(self) -> None:
        if self.input_schema is None or self.output_arity is None:
            raise SWSDefinitionError(
                "relational SWS's need an input payload schema and output arity"
            )
        payload_arity = self.input_schema.arity
        for state, rule in self.transitions.items():
            for target, query in rule.targets:
                if isinstance(query, pl.Formula):
                    raise SWSDefinitionError(
                        f"δ({state!r}) uses a PL formula in a relational SWS"
                    )
                if query.arity != payload_arity:
                    raise SWSDefinitionError(
                        f"δ({state!r})→{target!r} query has arity {query.arity}, "
                        f"Msg registers need {payload_arity}"
                    )
        for state, rule in self.synthesis.items():
            query = rule.query
            if isinstance(query, pl.Formula):
                raise SWSDefinitionError(
                    f"σ({state!r}) uses a PL formula in a relational SWS"
                )
            if query.arity != self.output_arity:
                raise SWSDefinitionError(
                    f"σ({state!r}) has arity {query.arity}, "
                    f"Act registers need {self.output_arity}"
                )

    def _validate_pl(self) -> None:
        for state, rule in self.transitions.items():
            for _target, query in rule.targets:
                if not isinstance(query, pl.Formula):
                    raise SWSDefinitionError(
                        f"δ({state!r}) must use PL formulas in a PL SWS"
                    )
        for state, rule in self.synthesis.items():
            if not isinstance(rule.query, pl.Formula):
                raise SWSDefinitionError(
                    f"σ({state!r}) must use a PL formula in a PL SWS"
                )
            if not self.transitions[state].is_final:
                k = len(self.transitions[state])
                allowed = self._internal_synthesis_names(state)
                stray = rule.query.variables() - allowed
                if stray:
                    raise SWSDefinitionError(
                        f"σ({state!r}) mentions {sorted(stray)}; internal "
                        f"synthesis formulas may only use A1..A{k} "
                        "(or unambiguous Act_<state> aliases)"
                    )

    def _internal_synthesis_names(self, state: str) -> frozenset[str]:
        rule = self.transitions[state]
        names = {f"A{i + 1}" for i in range(len(rule))}
        successors = rule.successor_states
        for target in successors:
            if successors.count(target) == 1:
                names.add(f"Act_{target}")
        return frozenset(names)

    def successor_register_aliases(self, state: str) -> dict[str, int]:
        """Map internal-synthesis register names to successor positions.

        Both positional names (``A1``/``Act1``, ...) and unambiguous
        ``Act_<state>`` aliases are included; used by both run engines.
        """
        rule = self.transitions[state]
        aliases: dict[str, int] = {}
        for i in range(len(rule)):
            aliases[f"A{i + 1}"] = i
            aliases[f"Act{i + 1}"] = i
        successors = rule.successor_states
        for i, target in enumerate(successors):
            if successors.count(target) == 1:
                aliases[f"Act_{target}"] = i
        return aliases

    # -- dependency graph (Section 2, "SWS classes") -------------------------------------

    def dependency_edges(self) -> frozenset[tuple[str, str]]:
        """Edges q → qi of the dependency graph Gτ."""
        return frozenset(
            (state, target)
            for state, rule in self.transitions.items()
            for target, _query in rule.targets
        )

    def is_recursive(self) -> bool:
        """Whether Gτ is cyclic (the SWS is recursively defined)."""
        return self._cycle_or_depth()[0]

    def depth(self) -> int:
        """Longest path length (in edges) of the dependency DAG.

        Only defined for nonrecursive SWS's; the execution tree of a
        nonrecursive service has depth at most ``depth() + 1`` nodes along
        any branch, so the service consumes at most ``depth() + 1`` input
        messages (k-prefix behaviour — see Theorem 5.1(4)).
        """
        recursive, depth = self._cycle_or_depth()
        if recursive:
            raise SWSDefinitionError(f"{self.name}: depth() on a recursive SWS")
        return depth

    def _cycle_or_depth(self) -> tuple[bool, int]:
        edges: dict[str, list[str]] = {s: [] for s in self.states}
        for source, target in self.dependency_edges():
            edges[source].append(target)
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {s: WHITE for s in self.states}
        longest = {s: 0 for s in self.states}

        def visit(state: str) -> bool:
            color[state] = GRAY
            best = 0
            for target in edges[state]:
                if color[target] == GRAY:
                    return True
                if color[target] == WHITE and visit(target):
                    return True
                best = max(best, longest[target] + 1)
            longest[state] = best
            color[state] = BLACK
            return False

        for state in self.states:
            if color[state] == WHITE and visit(state):
                return True, 0
        return False, longest[self.start]

    def reachable_states(self) -> frozenset[str]:
        """States reachable from the start state in Gτ."""
        edges: dict[str, list[str]] = {s: [] for s in self.states}
        for source, target in self.dependency_edges():
            edges[source].append(target)
        seen: set[str] = set()
        stack = [self.start]
        while stack:
            state = stack.pop()
            if state in seen:
                continue
            seen.add(state)
            stack.extend(edges[state])
        return frozenset(seen)

    def query_constants(self) -> frozenset:
        """Data constants mentioned anywhere in the service's rule queries.

        Bounded analyses must include these in their search domains: a
        transition guarded by ``tag = 'a'`` can only fire on instances that
        actually contain ``'a'``.
        """
        from repro.logic.cq import ConjunctiveQuery
        from repro.logic.fo import FOQuery
        from repro.logic.ucq import UnionQuery

        values: set = set()

        def collect(query) -> None:
            if isinstance(query, ConjunctiveQuery):
                values.update(c.value for c in query.constants())
            elif isinstance(query, UnionQuery):
                for disjunct in query.disjuncts:
                    values.update(c.value for c in disjunct.constants())
            elif isinstance(query, FOQuery):
                values.update(c.value for c in query.formula.constants())

        for rule in self.transitions.values():
            for _target, query in rule.targets:
                collect(query)
        for rule in self.synthesis.values():
            collect(rule.query)
        return frozenset(values)

    # -- PL conveniences --------------------------------------------------------------------

    def input_variables(self) -> frozenset[str]:
        """For PL services: the input variables the service inspects.

        All variables of transition formulas and final synthesis formulas,
        minus the reserved register name ``Msg``.
        """
        if self.kind is not SWSKind.PL:
            raise SWSDefinitionError("input_variables() is for PL services")
        names: set[str] = set()
        for state, rule in self.transitions.items():
            for _target, query in rule.targets:
                assert isinstance(query, pl.Formula)
                names |= query.variables()
            if rule.is_final:
                sigma = self.synthesis[state].query
                assert isinstance(sigma, pl.Formula)
                names |= sigma.variables()
        return frozenset(names) - {MSG}

    # -- running (delegates to repro.core.run) ------------------------------------------------

    def run(self, *args, **kwargs):
        """Run the service; see :func:`repro.core.run.run`."""
        from repro.core.run import run

        return run(self, *args, **kwargs)

    def __repr__(self) -> str:
        shape = "recursive" if self.is_recursive() else "nonrecursive"
        return (
            f"SWS({self.name!r}, {self.kind.value}, {len(self.states)} states, "
            f"{shape})"
        )
