"""The SWS class lattice: SWS(LMsg, LAct) and nonrecursive subclasses.

Section 2 classifies SWS's by (a) the language of transition queries, (b)
the language of synthesis queries, and (c) whether the dependency graph is
cyclic.  The paper studies SWS(PL, PL), SWS(CQ, UCQ) and SWS(FO, FO) plus
their nonrecursive subclasses; :func:`classify` computes the tightest class
of a concrete SWS, and :func:`is_in_class` checks membership (classes are
ordered: PL services are not comparable to relational ones, and
CQ/UCQ ⊆ FO/FO).
"""

from __future__ import annotations

from enum import Enum

from repro.core.sws import SWS, SWSKind
from repro.errors import AnalysisError
from repro.logic import pl
from repro.logic.cq import ConjunctiveQuery
from repro.logic.fo import FOQuery
from repro.logic.ucq import UnionQuery


class SWSClass(Enum):
    """The SWS classes of Section 2 (Table 1 rows)."""

    PL_PL = "SWS(PL, PL)"
    PL_PL_NR = "SWSnr(PL, PL)"
    CQ_UCQ = "SWS(CQ, UCQ)"
    CQ_UCQ_NR = "SWSnr(CQ, UCQ)"
    FO_FO = "SWS(FO, FO)"
    FO_FO_NR = "SWSnr(FO, FO)"

    @property
    def recursive_allowed(self) -> bool:
        """Whether the class admits cyclic dependency graphs."""
        return self in {SWSClass.PL_PL, SWSClass.CQ_UCQ, SWSClass.FO_FO}

    @property
    def nonrecursive_variant(self) -> "SWSClass":
        """The SWSnr(·,·) subclass of this class."""
        return {
            SWSClass.PL_PL: SWSClass.PL_PL_NR,
            SWSClass.CQ_UCQ: SWSClass.CQ_UCQ_NR,
            SWSClass.FO_FO: SWSClass.FO_FO_NR,
        }.get(self, self)

    @property
    def recursive_variant(self) -> "SWSClass":
        """The unrestricted superclass of this class."""
        return {
            SWSClass.PL_PL_NR: SWSClass.PL_PL,
            SWSClass.CQ_UCQ_NR: SWSClass.CQ_UCQ,
            SWSClass.FO_FO_NR: SWSClass.FO_FO,
        }.get(self, self)


def _query_level(query) -> str:
    """'pl', 'cq', 'ucq' or 'fo' for a rule query."""
    if isinstance(query, pl.Formula):
        return "pl"
    if isinstance(query, ConjunctiveQuery):
        return "cq"
    if isinstance(query, UnionQuery):
        return "ucq"
    if isinstance(query, FOQuery):
        return "fo"
    raise AnalysisError(f"unknown query type {type(query).__name__}")


def classify(sws: SWS) -> SWSClass:
    """The tightest class of Section 2 containing ``sws``.

    A relational SWS is in SWS(CQ, UCQ) when every transition query is a CQ
    and every synthesis query is a CQ or UCQ; otherwise it is in
    SWS(FO, FO).  The nonrecursive variant is reported when the dependency
    graph is acyclic.
    """
    if sws.kind is SWSKind.PL:
        base = SWSClass.PL_PL
    else:
        levels_t = {
            _query_level(query)
            for rule in sws.transitions.values()
            for _target, query in rule.targets
        }
        levels_s = {_query_level(rule.query) for rule in sws.synthesis.values()}
        if levels_t <= {"cq"} and levels_s <= {"cq", "ucq"}:
            base = SWSClass.CQ_UCQ
        else:
            base = SWSClass.FO_FO
    if sws.is_recursive():
        return base
    return base.nonrecursive_variant


_ORDER = {
    SWSClass.PL_PL_NR: (SWSClass.PL_PL_NR, SWSClass.PL_PL),
    SWSClass.PL_PL: (SWSClass.PL_PL,),
    SWSClass.CQ_UCQ_NR: (
        SWSClass.CQ_UCQ_NR,
        SWSClass.CQ_UCQ,
        SWSClass.FO_FO_NR,
        SWSClass.FO_FO,
    ),
    SWSClass.CQ_UCQ: (SWSClass.CQ_UCQ, SWSClass.FO_FO),
    SWSClass.FO_FO_NR: (SWSClass.FO_FO_NR, SWSClass.FO_FO),
    SWSClass.FO_FO: (SWSClass.FO_FO,),
}


def is_in_class(sws: SWS, cls: SWSClass) -> bool:
    """Whether ``sws`` belongs to ``cls`` (respecting class inclusions)."""
    return cls in _ORDER[classify(sws)]


def require_class(sws: SWS, cls: SWSClass, procedure: str) -> None:
    """Raise :class:`AnalysisError` unless ``sws`` is in ``cls``."""
    if not is_in_class(sws, cls):
        raise AnalysisError(
            f"{procedure} requires an SWS in {cls.value}; "
            f"{sws.name!r} is in {classify(sws).value}"
        )
