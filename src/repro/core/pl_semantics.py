"""Language semantics of SWS(PL, PL) services.

A PL service τ defines a language over the alphabet of truth assignments:
``L(τ) = { I | τ(∅, I) = true }``.  Theorem 4.1(3) pins the decision
problems for this class at PSPACE (NP/coNP for the nonrecursive subclass),
"along the same lines as AFA".  This module makes the correspondence
executable:

*Backward valuation semantics.*  For a state ``q``, register value
``m ∈ {true, false}`` and input suffix ``w``, let ``value(q, m, w)`` be the
action value gathered at a node labeled ``q`` whose message register holds
``m`` when the remaining input is ``w``:

* ``k = 0``:   ``value = ψ_q(w1, m)`` — final synthesis reads the current
  message (``w1 = ∅`` when ``w`` is empty, rule (3));
* ``k > 0``, ``w = ε``:  ``value = false`` (input exhausted, rule (1));
* ``k > 0``, ``m = false`` at a non-start state:  ``value = false``
  (empty register, rule (1));
* otherwise:  ``value = ψ_q[Ai ↦ value(qi, φi(w1, m), w2..)]`` (rules
  (2)+(4)).

``L(τ)`` membership is ``value(q0, false, I)`` — the start state is exempt
from the empty-register cutoff (the paper's root special case).

The pair ``(q, m)`` space is finite, so τ is exactly an alternating finite
automaton over the pairs: :func:`to_afa` builds it, and every Table 1
decision procedure for the PL classes reduces to the AFA engine of
:mod:`repro.automata.afa`.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.automata.afa import AFA
from repro.core.classes import SWSClass, require_class
from repro.core.sws import MSG, SWS, SWSKind
from repro.errors import AnalysisError
from repro.logic import pl

Assignment = frozenset[str]


def alphabet_for(
    sws: SWS, variables: Iterable[str] | None = None
) -> tuple[Assignment, ...]:
    """The effective input alphabet: all assignments over the input variables.

    Exponential in the number of input variables — the services the paper's
    PL analyses target carry few variables (FSA letters are encoded one
    variable per letter; Section 3).  ``variables`` overrides the inferred
    set, e.g. to analyze two services over their joint variables.
    """
    names = sorted(variables if variables is not None else sws.input_variables())
    return tuple(
        frozenset(combo)
        for r in range(len(names) + 1)
        for combo in itertools.combinations(names, r)
    )


def _state_var(state: str, msg: bool) -> str:
    return f"{state}|{'T' if msg else 'F'}"


def to_afa(sws: SWS, variables: Iterable[str] | None = None) -> AFA:
    """The AFA over (state, register) pairs with ``L(AFA) = L(τ)``.

    Symbols are truth assignments (frozensets of input variables).  The
    construction follows the backward semantics in the module docstring:

    * AFA states: pairs ``(q, m)`` named ``"q|T"`` / ``"q|F"``;
    * finals: pairs with ``k = 0`` and ``ψ_q(∅, m)`` true (the ``V_ε``
      vector);
    * transition of ``(q, m)`` on assignment ``a``: for ``k = 0`` the
      constant ``ψ_q(a, m)``; for ``k > 0`` the formula
      ``ψ_q[Ai ↦ (qi, φi(a, m))]`` — except the dead pairs (non-start,
      ``k > 0``, ``m = false``), whose transitions are ``false``;
    * initial condition: the variable ``(q0, false)`` — the start pair is
      exempt from the dead-pair rule because q0 never occurs on a rhs.
    """
    require_class(sws, SWSClass.PL_PL, "to_afa")
    symbols = alphabet_for(sws, variables)
    states = [
        _state_var(state, msg) for state in sws.states for msg in (True, False)
    ]
    transitions: dict[tuple[str, Assignment], pl.Formula] = {}
    finals: set[str] = set()
    for state in sws.states:
        state_finals, state_transitions = _pair_rows(sws, state, symbols)
        finals |= state_finals
        transitions.update(state_transitions)
    return AFA(
        states,
        symbols,
        transitions,
        pl.Var(_state_var(sws.start, False)),
        finals,
    )


def _pair_rows(
    sws: SWS, state: str, symbols: Sequence[Assignment]
) -> tuple[set[str], dict[tuple[str, Assignment], pl.Formula]]:
    """The finals and transition entries contributed by one state's pairs.

    Both pairs of ``state`` depend only on ``state``'s own transition and
    synthesis rules (successor states appear as *names* in the produced
    formulas, not as rules), which is what makes the construction
    incremental: :func:`to_afa_incremental` re-runs this for edited
    states only.
    """
    rule = sws.transitions[state]
    sigma = sws.synthesis[state].query
    assert isinstance(sigma, pl.Formula)
    aliases = sws.successor_register_aliases(state) if not rule.is_final else {}
    transitions: dict[tuple[str, Assignment], pl.Formula] = {}
    finals: set[str] = set()
    for msg in (True, False):
        pair = _state_var(state, msg)
        if rule.is_final:
            # V_ε entry: ψ on the empty assignment.
            env_eps = frozenset({MSG}) if msg else frozenset()
            if sigma.evaluate(env_eps):
                finals.add(pair)
            for a in symbols:
                env = a | ({MSG} if msg else frozenset())
                transitions[(pair, a)] = pl.TRUE if sigma.evaluate(env) else pl.FALSE
            continue
        if not msg and state != sws.start:
            continue  # dead pair: all transitions false, not final
        for a in symbols:
            env = a | ({MSG} if msg else frozenset())
            substitution: dict[str, pl.Formula] = {}
            child_pairs: list[str] = []
            for target, phi in rule.targets:
                assert isinstance(phi, pl.Formula)
                child_pairs.append(_state_var(target, phi.evaluate(env)))
            for name, position in aliases.items():
                substitution[name] = pl.Var(child_pairs[position])
            transitions[(pair, a)] = sigma.substitute(substitution).simplify()
    return finals, transitions


def pair_states(state: str) -> tuple[str, str]:
    """The two AFA pair-state names of an SWS state (``msg`` true/false)."""
    return _state_var(state, True), _state_var(state, False)


def to_afa_incremental(
    sws: SWS,
    base: SWS,
    base_afa: AFA,
    changed_states: Iterable[str],
    variables: Iterable[str] | None = None,
) -> AFA | None:
    """Rebuild ``to_afa(sws)`` from ``base_afa`` re-deriving only edits.

    ``sws`` must differ from ``base`` (for which ``base_afa`` was built)
    only in the transition/synthesis rules of ``changed_states``: same
    state set, same start, same input variables.  Returns ``None`` when
    those layout preconditions fail — alphabet-growing or state-adding
    edits fall back to the full construction.  Per-state locality of
    :func:`_pair_rows` makes the result formula-identical to a scratch
    ``to_afa(sws)``; cost is proportional to the edited states.
    """
    require_class(sws, SWSClass.PL_PL, "to_afa_incremental")
    if frozenset(sws.states) != frozenset(base.states):
        return None
    if sws.start != base.start:
        return None
    symbols = alphabet_for(sws, variables)
    if frozenset(symbols) != base_afa.alphabet:
        return None
    changed = set(changed_states)
    dead_pairs = {
        pair for state in changed for pair in pair_states(state)
    }
    # Bulk-copy then evict the edited pairs' rows: the C-level dict copy
    # beats a filtering comprehension, and eviction is O(edit × symbols).
    transitions = dict(base_afa.transitions)
    for pair in dead_pairs:
        for a in symbols:
            transitions.pop((pair, a), None)
    finals = set(base_afa.finals) - dead_pairs
    for state in changed:
        state_finals, state_transitions = _pair_rows(sws, state, symbols)
        finals |= state_finals
        transitions.update(state_transitions)
    # The spliced parts are the already-validated base plus rows from the
    # same `_pair_rows` a scratch `to_afa` would run, over an identical
    # state/alphabet layout — skip `AFA.__init__`'s full re-validation.
    return AFA._from_validated(
        base_afa.states,
        base_afa.alphabet,
        transitions,
        pl.Var(_state_var(sws.start, False)),
        frozenset(finals),
    )


def language_value(sws: SWS, word: Sequence[Assignment]) -> bool:
    """``value(q0, false, word)`` computed directly (no AFA construction).

    Cross-validates :func:`to_afa` and the execution-tree engine: all three
    agree on every word (tested property).
    """
    require_class(sws, SWSClass.PL_PL, "language_value")

    def value(state: str, msg: bool, position: int) -> bool:
        rule = sws.transitions[state]
        sigma = sws.synthesis[state].query
        assert isinstance(sigma, pl.Formula)
        current = word[position] if position < len(word) else frozenset()
        if rule.is_final:
            env = frozenset(current) | ({MSG} if msg else frozenset())
            return sigma.evaluate(env)
        if position >= len(word):
            return False
        if not msg and state != sws.start:
            return False
        env = frozenset(current) | ({MSG} if msg else frozenset())
        child_values: list[bool] = []
        for target, phi in rule.targets:
            assert isinstance(phi, pl.Formula)
            child_values.append(value(target, phi.evaluate(env), position + 1))
        aliases = sws.successor_register_aliases(state)
        register_env = frozenset(
            name for name, pos in aliases.items() if child_values[pos]
        )
        return sigma.evaluate(register_env)

    return value(sws.start, False, 0)


def sws_language_nfa_variables(
    sws: SWS, variables: Iterable[str] | None = None
):
    """The NFA of L(τ) over the alphabet of ``variables`` (default: own).

    Thin convenience over :func:`to_afa` used by analyses that live
    outside the mediator package (e.g. k-prefix recognizability).
    """
    return to_afa(sws, variables).to_nfa()


def joint_variables(*services: SWS) -> frozenset[str]:
    """The union of the input variables of several PL services.

    Comparative analyses (equivalence, composition) must run all services
    over the same alphabet.
    """
    out: frozenset[str] = frozenset()
    for sws in services:
        if sws.kind is not SWSKind.PL:
            raise AnalysisError("joint_variables expects PL services")
        out |= sws.input_variables()
    return out
