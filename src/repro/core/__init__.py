"""The paper's primary contribution: synthesized Web services.

* :mod:`~repro.core.sws` — the SWS data type of Definition 2.1: states,
  transition rules, synthesis rules, start state; plus the dependency graph
  and the recursive/nonrecursive distinction.
* :mod:`~repro.core.exec_tree` — execution trees (the run objects of
  Section 2).
* :mod:`~repro.core.run` — the step relation ⇒(τ,D,I): generating
  (top-down spawning) and gathering (bottom-up synthesis).
* :mod:`~repro.core.classes` — the class lattice SWS(LMsg, LAct) and
  classification of a concrete SWS.
* :mod:`~repro.core.pl_semantics` — the language semantics of SWS(PL, PL)
  services (valuation vectors, translation to AFA) used by the Table 1
  decision procedures.
* :mod:`~repro.core.unfold` — expansion of nonrecursive SWS(CQ, UCQ)
  services into UCQ≠ queries, and bounded unfolding of recursive ones.
"""

from repro.core.builder import pl_sws, relational_sws
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.core.classes import SWSClass, classify
from repro.core.exec_tree import ExecutionNode, RunResult
from repro.core.run import run, run_pl, run_relational

__all__ = [
    "ExecutionNode",
    "RunResult",
    "SWS",
    "SWSClass",
    "SWSKind",
    "SynthesisRule",
    "TransitionRule",
    "classify",
    "pl_sws",
    "relational_sws",
    "run",
    "run_pl",
    "run_relational",
]
