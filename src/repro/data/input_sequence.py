"""Input message sequences.

Section 2 of the paper encodes an input sequence ``I = I1, ..., In`` as a
single relation over the input schema ``Rin`` whose ``ts`` attribute gives
the position of each tuple: ``Ij = { t | t in I and t[ts] = j }``.

:class:`InputSequence` stores the sequence positionally (one payload
relation per step), which is what the run semantics consumes, and converts
to/from the paper's timestamped single-relation encoding.  Positions are
1-based, matching the paper.  A position may be empty (an empty message).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.data.relation import Relation
from repro.data.schema import RelationSchema, TS_ATTRIBUTE, input_schema, payload_schema
from repro.errors import RunError, SchemaError


class InputSequence:
    """A finite sequence ``I1, ..., In`` of input messages.

    Each message is a :class:`Relation` over the *payload* schema (the input
    schema without ``ts``).  The empty sequence (``n = 0``) is allowed.
    """

    def __init__(
        self,
        schema: RelationSchema,
        messages: Iterable[Iterable[Sequence[Any]]] = (),
    ) -> None:
        """Create a sequence over payload ``schema`` from per-step row sets.

        ``schema`` must *not* contain the ``ts`` attribute; use
        :meth:`from_timestamped` to decode the paper's encoding.
        """
        if schema.has_attribute(TS_ATTRIBUTE):
            raise SchemaError(
                "InputSequence takes the payload schema (without 'ts'); "
                "use InputSequence.from_timestamped for the encoded form"
            )
        self.schema = schema
        self._messages: tuple[Relation, ...] = tuple(
            rows if isinstance(rows, Relation) else Relation(schema, rows)
            for rows in messages
        )
        for msg in self._messages:
            if msg.schema.attributes != schema.attributes:
                raise SchemaError(
                    f"message attributes {msg.schema.attributes} do not match "
                    f"payload schema {schema.attributes}"
                )

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_timestamped(cls, relation: Relation) -> "InputSequence":
        """Decode the paper's single-relation encoding.

        The relation must carry a ``ts`` attribute with positive-integer
        values; the sequence length is the maximum timestamp, and positions
        without tuples become empty messages.
        """
        schema = relation.schema
        if not schema.has_attribute(TS_ATTRIBUTE):
            raise SchemaError(f"relation {schema.name!r} has no {TS_ATTRIBUTE!r}")
        ts_pos = schema.position(TS_ATTRIBUTE)
        payload = payload_schema(schema)
        payload_positions = [
            schema.position(a) for a in schema.attributes if a != TS_ATTRIBUTE
        ]
        buckets: dict[int, list[tuple[Any, ...]]] = {}
        for row in relation:
            ts = row[ts_pos]
            if not isinstance(ts, int) or ts < 1:
                raise RunError(f"timestamp {ts!r} is not a positive integer")
            buckets.setdefault(ts, []).append(tuple(row[p] for p in payload_positions))
        n = max(buckets) if buckets else 0
        return cls(payload, [buckets.get(j, []) for j in range(1, n + 1)])

    @classmethod
    def empty(cls, schema: RelationSchema) -> "InputSequence":
        """The empty sequence (no messages at all)."""
        return cls(schema, [])

    # -- sequence protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._messages)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InputSequence):
            return NotImplemented
        return (
            self.schema.attributes == other.schema.attributes
            and self._messages == other._messages
        )

    def __hash__(self) -> int:
        return hash((self.schema.attributes, self._messages))

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(m)) for m in self._messages)
        return f"InputSequence(n={len(self)}, sizes=[{sizes}])"

    def message(self, j: int) -> Relation:
        """Return ``Ij`` (1-based).

        Positions beyond the sequence length yield the empty relation: the
        run semantics treats an exhausted input as carrying no tuples (see
        DESIGN.md, Section 3).
        """
        if j < 1:
            raise RunError(f"message positions are 1-based, got {j}")
        if j > len(self._messages):
            return Relation.empty(self.schema)
        return self._messages[j - 1]

    # -- conversions ---------------------------------------------------------------

    def to_timestamped(self, name: str | None = None) -> Relation:
        """Encode as a single relation with a leading ``ts`` attribute."""
        encoded_schema = input_schema(name or self.schema.name, self.schema.attributes)
        rows = [
            (j,) + row
            for j, msg in enumerate(self._messages, start=1)
            for row in msg
        ]
        return Relation(encoded_schema, rows)

    def prefix(self, k: int) -> "InputSequence":
        """The first ``k`` messages (or all, if shorter)."""
        return InputSequence(self.schema, self._messages[:k])

    def suffix(self, j: int) -> "InputSequence":
        """The messages from position ``j`` (1-based) onwards: ``Ij, ..., In``.

        Mediator runs hand a component service the *remaining* input
        ``I^j = Ij, ..., In`` (Section 5.1, rule (2)).
        """
        if j < 1:
            raise RunError(f"suffix positions are 1-based, got {j}")
        return InputSequence(self.schema, self._messages[j - 1 :])

    def concat(self, other: "InputSequence") -> "InputSequence":
        """Concatenate two sequences over the same payload schema."""
        if self.schema.attributes != other.schema.attributes:
            raise SchemaError("cannot concatenate sequences over different schemas")
        return InputSequence(self.schema, self._messages + other._messages)

    def active_domain(self) -> frozenset[Any]:
        """All data values appearing in any message."""
        values: set[Any] = set()
        for msg in self._messages:
            values |= msg.active_domain()
        return frozenset(values)
