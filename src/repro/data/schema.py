"""Relational schemas.

The paper assumes (Section 2, "Notations") that an SWS is defined over a
relational schema ``R`` for the local database, a single-relation input
schema ``Rin`` carrying a timestamp attribute ``ts``, and a single-relation
external schema ``Rout``.  We model schemas explicitly so that queries and
runs can be validated before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError

#: Name of the timestamp attribute of the input schema.  The paper encodes
#: an input sequence ``I1, ..., In`` as a single relation over ``Rin`` whose
#: ``ts`` attribute carries the position of each message.
TS_ATTRIBUTE = "ts"

#: Attribute names are plain strings.
Attribute = str


@dataclass(frozen=True)
class RelationSchema:
    """A named relation schema: a relation name and an attribute list.

    Attribute order matters (queries address positions through attribute
    names, and tuples are stored positionally).  Attribute names must be
    unique within a schema.
    """

    name: str
    attributes: tuple[Attribute, ...]

    def __init__(self, name: str, attributes: Iterable[Attribute]) -> None:
        attrs = tuple(attributes)
        if not name:
            raise SchemaError("relation name must be non-empty")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attributes in schema {name!r}: {attrs}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def position(self, attribute: Attribute) -> int:
        """Return the positional index of ``attribute``.

        Raises :class:`SchemaError` if the attribute does not exist.
        """
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"schema {self.name!r} has no attribute {attribute!r}; "
                f"attributes are {self.attributes}"
            ) from None

    def has_attribute(self, attribute: Attribute) -> bool:
        """Whether the schema contains ``attribute``."""
        return attribute in self.attributes

    def drop(self, attribute: Attribute) -> "RelationSchema":
        """Return a copy of this schema without ``attribute``."""
        if not self.has_attribute(attribute):
            raise SchemaError(
                f"cannot drop {attribute!r}: not in schema {self.name!r}"
            )
        remaining = tuple(a for a in self.attributes if a != attribute)
        return RelationSchema(self.name, remaining)

    def renamed(self, name: str) -> "RelationSchema":
        """Return a copy of this schema under a different relation name."""
        return RelationSchema(name, self.attributes)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class DatabaseSchema(Mapping[str, RelationSchema]):
    """A database schema: a finite set of relation schemas keyed by name."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: dict[str, RelationSchema] = {}
        for rel in relations:
            if rel.name in self._relations:
                raise SchemaError(f"duplicate relation schema {rel.name!r}")
            self._relations[rel.name] = rel

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"database schema has no relation {name!r}; "
                f"relations are {sorted(self._relations)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: object) -> bool:
        # Mapping's default __contains__ relies on __getitem__ raising
        # KeyError; ours raises SchemaError, so spell membership out.
        return name in self._relations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))

    def relation_names(self) -> tuple[str, ...]:
        """Names of all relations, in insertion order."""
        return tuple(self._relations)

    def extended(self, *relations: RelationSchema) -> "DatabaseSchema":
        """Return a schema extended with additional relation schemas."""
        return DatabaseSchema(list(self._relations.values()) + list(relations))

    def __str__(self) -> str:
        return "{" + ", ".join(str(r) for r in self._relations.values()) + "}"


def input_schema(name: str, payload_attributes: Iterable[Attribute]) -> RelationSchema:
    """Build an input schema ``Rin`` with the mandatory ``ts`` attribute.

    The paper assumes ``Rin`` has a timestamp attribute ``ts`` of natural
    numbers so that a single relation encodes a message sequence; the
    remaining *payload* attributes carry the message content.
    """
    payload = tuple(payload_attributes)
    if TS_ATTRIBUTE in payload:
        raise SchemaError(
            f"payload attributes must not include the reserved {TS_ATTRIBUTE!r}"
        )
    return RelationSchema(name, (TS_ATTRIBUTE,) + payload)


def payload_schema(schema: RelationSchema) -> RelationSchema:
    """Strip the ``ts`` attribute from an input schema.

    Individual messages ``Ij`` of a sequence are relations over the payload
    attributes only; the timestamp is implicit in the position ``j``.
    """
    if not schema.has_attribute(TS_ATTRIBUTE):
        raise SchemaError(
            f"schema {schema.name!r} is not an input schema: no {TS_ATTRIBUTE!r}"
        )
    return schema.drop(TS_ATTRIBUTE)
