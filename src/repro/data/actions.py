"""Interpreting output relations as committed actions.

The output of an SWS run is a relation over the external schema ``Rout``
denoting *actions*: "tuples to be inserted into or deleted from D, and
external messages to be sent to other services or users" (Section 2).  The
paper keeps the local database fixed during a run and commits all actions at
the end of the session.

This module provides the commit step.  An :class:`ActionLog` classifies the
rows of an output relation into inserts, deletes and external messages via a
caller-supplied *interpretation* — typically a tag attribute, as in the
paper's travel example where a ``tag`` attribute distinguishes airfare,
hotel, ticket and car tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Mapping, Sequence

from repro.data.database import Database
from repro.data.relation import Relation, Row
from repro.errors import RunError


class ActionKind(Enum):
    """The three kinds of actions an output tuple may denote."""

    INSERT = "insert"
    DELETE = "delete"
    MESSAGE = "message"


@dataclass(frozen=True)
class Action:
    """A single classified action.

    ``target`` names the database relation affected (for inserts/deletes) or
    the recipient channel (for external messages); ``payload`` is the data
    tuple written or sent.
    """

    kind: ActionKind
    target: str
    payload: Row


#: An interpretation maps an output row to its classified action.
Interpretation = Callable[[Row], Action]


@dataclass
class ActionLog:
    """The classified actions of one committed session."""

    inserts: dict[str, set[Row]] = field(default_factory=dict)
    deletes: dict[str, set[Row]] = field(default_factory=dict)
    messages: dict[str, set[Row]] = field(default_factory=dict)

    def record(self, action: Action) -> None:
        """Add one action to the log."""
        if action.kind is ActionKind.INSERT:
            self.inserts.setdefault(action.target, set()).add(action.payload)
        elif action.kind is ActionKind.DELETE:
            self.deletes.setdefault(action.target, set()).add(action.payload)
        else:
            self.messages.setdefault(action.target, set()).add(action.payload)

    def is_empty(self) -> bool:
        """Whether the session produced no actions at all."""
        return not (self.inserts or self.deletes or self.messages)


def classify_actions(output: Relation, interpretation: Interpretation) -> ActionLog:
    """Classify every output row through ``interpretation``."""
    log = ActionLog()
    for row in output:
        log.record(interpretation(row))
    return log


def commit_actions(
    database: Database,
    output: Relation,
    interpretation: Interpretation,
) -> tuple[Database, ActionLog]:
    """Commit a session's output against a database.

    Returns the updated database and the action log.  Deletes are applied
    before inserts, so a tuple both deleted and inserted ends up present —
    the conventional "last writer wins within a transaction" resolution.
    Inserting into or deleting from an unknown relation raises
    :class:`RunError` (the interpretation is at fault, not the SWS).
    """
    log = classify_actions(output, interpretation)
    updated = database
    for name, rows in log.deletes.items():
        if name not in database.schema:
            raise RunError(f"delete action targets unknown relation {name!r}")
        updated = updated.delete(name, rows)
    for name, rows in log.inserts.items():
        if name not in database.schema:
            raise RunError(f"insert action targets unknown relation {name!r}")
        updated = updated.insert(name, rows)
    return updated, log


def tag_interpretation(
    tag_position: int,
    kind_by_tag: Mapping[Any, ActionKind],
    target_by_tag: Mapping[Any, str],
) -> Interpretation:
    """Build an interpretation that dispatches on a tag attribute.

    ``tag_position`` is the positional index of the tag within output rows;
    ``kind_by_tag`` and ``target_by_tag`` map tag values to the action kind
    and target.  Unknown tags raise :class:`RunError` at commit time.
    """

    def interpret(row: Row) -> Action:
        tag = row[tag_position]
        if tag not in kind_by_tag or tag not in target_by_tag:
            raise RunError(f"output row {row} carries unknown action tag {tag!r}")
        payload = tuple(v for i, v in enumerate(row) if i != tag_position)
        return Action(kind_by_tag[tag], target_by_tag[tag], payload)

    return interpret
