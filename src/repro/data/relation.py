"""Immutable relation instances and relational-algebra operations.

A :class:`Relation` pairs a :class:`~repro.data.schema.RelationSchema` with a
frozen set of same-arity tuples.  Relations are value objects: every
operation returns a new relation.  The query evaluators in
:mod:`repro.logic` operate on relations through this interface, which keeps
run semantics (Section 2 of the paper) independent of the query language.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.data.schema import Attribute, RelationSchema
from repro.errors import SchemaError

#: A database row: a positional tuple of data values.  Values may be any
#: hashable Python scalar (str, int, float, bool, ...); the library never
#: interprets them beyond equality comparisons, matching the paper's
#: uninterpreted infinite domain of data values.
Row = tuple[Any, ...]


class Relation:
    """An immutable set of rows over a relation schema."""

    __slots__ = ("schema", "_rows")

    def __init__(self, schema: RelationSchema, rows: Iterable[Sequence[Any]] = ()) -> None:
        self.schema = schema
        frozen: set[Row] = set()
        for row in rows:
            tup = tuple(row)
            if len(tup) != schema.arity:
                raise SchemaError(
                    f"row {tup} has arity {len(tup)}, schema {schema.name!r} "
                    f"expects {schema.arity}"
                )
            frozen.add(tup)
        self._rows: frozenset[Row] = frozenset(frozen)

    # -- basic protocol -----------------------------------------------------

    @property
    def rows(self) -> frozenset[Row]:
        """The underlying frozen set of rows."""
        return self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        """Equality compares schema attributes and rows (not schema names).

        Two relations with identical contents but different relation names
        denote the same set of facts; register contents in runs are compared
        this way.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.schema.attributes == other.schema.attributes
            and self._rows == other._rows
        )

    def __hash__(self) -> int:
        return hash((self.schema.attributes, self._rows))

    def __repr__(self) -> str:
        sample = sorted(self._rows, key=repr)[:4]
        suffix = ", ..." if len(self._rows) > 4 else ""
        body = ", ".join(repr(r) for r in sample)
        return f"Relation({self.schema.name}: {{{body}{suffix}}} [{len(self)} rows])"

    # -- construction helpers ----------------------------------------------

    @classmethod
    def empty(cls, schema: RelationSchema) -> "Relation":
        """The empty relation over ``schema``."""
        return cls(schema)

    def with_rows(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Return a relation with ``rows`` added."""
        return Relation(self.schema, list(self._rows) + [tuple(r) for r in rows])

    # -- relational algebra --------------------------------------------------

    def select(self, predicate: Callable[[Mapping[Attribute, Any]], bool]) -> "Relation":
        """Select rows satisfying ``predicate`` (given as an attr→value map)."""
        attrs = self.schema.attributes
        kept = [row for row in self._rows if predicate(dict(zip(attrs, row)))]
        return Relation(self.schema, kept)

    def select_eq(self, attribute: Attribute, value: Any) -> "Relation":
        """Select rows whose ``attribute`` equals ``value``."""
        pos = self.schema.position(attribute)
        return Relation(self.schema, [r for r in self._rows if r[pos] == value])

    def project(self, attributes: Sequence[Attribute], name: str | None = None) -> "Relation":
        """Project onto ``attributes`` (in the given order)."""
        positions = [self.schema.position(a) for a in attributes]
        out_schema = RelationSchema(name or self.schema.name, attributes)
        return Relation(out_schema, [tuple(r[p] for p in positions) for r in self._rows])

    def rename(self, name: str) -> "Relation":
        """Return the same rows under a different relation name."""
        return Relation(self.schema.renamed(name), self._rows)

    def union(self, other: "Relation") -> "Relation":
        """Set union; attribute lists must coincide."""
        self._check_compatible(other, "union")
        return Relation(self.schema, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; attribute lists must coincide."""
        self._check_compatible(other, "difference")
        return Relation(self.schema, self._rows - other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; attribute lists must coincide."""
        self._check_compatible(other, "intersection")
        return Relation(self.schema, self._rows & other._rows)

    def natural_join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join on shared attribute names.

        The result schema carries this relation's attributes followed by the
        non-shared attributes of ``other``.
        """
        shared = [a for a in self.schema.attributes if other.schema.has_attribute(a)]
        other_extra = [a for a in other.schema.attributes if a not in shared]
        out_attrs = self.schema.attributes + tuple(other_extra)
        out_schema = RelationSchema(
            name or f"{self.schema.name}_join_{other.schema.name}", out_attrs
        )
        my_pos = {a: self.schema.position(a) for a in shared}
        their_pos = {a: other.schema.position(a) for a in shared}
        extra_pos = [other.schema.position(a) for a in other_extra]

        # Hash join on the shared attribute values.
        index: dict[Row, list[Row]] = {}
        for row in other._rows:
            key = tuple(row[their_pos[a]] for a in shared)
            index.setdefault(key, []).append(row)

        out_rows: list[Row] = []
        for row in self._rows:
            key = tuple(row[my_pos[a]] for a in shared)
            for match in index.get(key, ()):
                out_rows.append(row + tuple(match[p] for p in extra_pos))
        return Relation(out_schema, out_rows)

    def active_domain(self) -> frozenset[Any]:
        """All data values appearing in the relation."""
        return frozenset(value for row in self._rows for value in row)

    # -- internal -------------------------------------------------------------

    def _check_compatible(self, other: "Relation", op: str) -> None:
        if self.schema.attributes != other.schema.attributes:
            raise SchemaError(
                f"{op} requires identical attribute lists: "
                f"{self.schema.attributes} vs {other.schema.attributes}"
            )
