"""Database instances.

A :class:`Database` is an instance of a :class:`DatabaseSchema`: one
:class:`Relation` per relation schema.  Following the paper (Section 2,
"Notations"), the local database is read-only during a run; updates are
committed only at the end of a session (see :mod:`repro.data.actions`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.data.relation import Relation, Row
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import SchemaError


class Database(Mapping[str, Relation]):
    """An immutable instance of a database schema."""

    def __init__(
        self,
        schema: DatabaseSchema,
        contents: Mapping[str, Iterable[Sequence[Any]]] | None = None,
    ) -> None:
        self.schema = schema
        contents = dict(contents or {})
        unknown = set(contents) - set(schema)
        if unknown:
            raise SchemaError(
                f"database contents mention unknown relations {sorted(unknown)}"
            )
        self._relations: dict[str, Relation] = {}
        for name in schema:
            rows = contents.get(name, ())
            if isinstance(rows, Relation):
                if rows.schema.attributes != schema[name].attributes:
                    raise SchemaError(
                        f"relation {name!r} has wrong attributes for this schema"
                    )
                self._relations[name] = rows.rename(name)
            else:
                self._relations[name] = Relation(schema[name], rows)

    @classmethod
    def empty(cls, schema: DatabaseSchema) -> "Database":
        """An instance with every relation empty."""
        return cls(schema, {})

    # -- Mapping protocol -----------------------------------------------------

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"database has no relation {name!r}; relations are "
                f"{sorted(self._relations)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}:{len(r)}" for n, r in self._relations.items())
        return f"Database({sizes})"

    # -- convenience ------------------------------------------------------------

    def with_relation(self, name: str, rows: Iterable[Sequence[Any]]) -> "Database":
        """Return a copy of this database with relation ``name`` replaced."""
        contents: dict[str, Iterable[Row]] = {
            n: rel.rows for n, rel in self._relations.items()
        }
        contents[name] = [tuple(r) for r in rows]
        return Database(self.schema, contents)

    def insert(self, name: str, rows: Iterable[Sequence[Any]]) -> "Database":
        """Return a copy with ``rows`` inserted into relation ``name``."""
        new_rows = list(self._relations[name].rows) + [tuple(r) for r in rows]
        return self.with_relation(name, new_rows)

    def delete(self, name: str, rows: Iterable[Sequence[Any]]) -> "Database":
        """Return a copy with ``rows`` removed from relation ``name``."""
        doomed = {tuple(r) for r in rows}
        kept = [r for r in self._relations[name].rows if r not in doomed]
        return self.with_relation(name, kept)

    def active_domain(self) -> frozenset[Any]:
        """All data values appearing anywhere in the database."""
        values: set[Any] = set()
        for rel in self._relations.values():
            values |= rel.active_domain()
        return frozenset(values)

    def total_rows(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())


def single_relation_database(schema: RelationSchema, rows: Iterable[Sequence[Any]]) -> Database:
    """Convenience constructor for a database holding one relation."""
    db_schema = DatabaseSchema([schema])
    return Database(db_schema, {schema.name: rows})
