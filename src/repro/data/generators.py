"""Seeded random instance generators.

Benchmarks and property-based tests need reproducible random databases and
input sequences.  :class:`InstanceGenerator` wraps a seeded
:class:`random.Random` and draws values from a bounded integer domain, which
suffices for the paper's uninterpreted data model (only equality matters).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema


class InstanceGenerator:
    """Draws random relations, databases and input sequences."""

    def __init__(self, seed: int = 0, domain_size: int = 8) -> None:
        if domain_size < 1:
            raise ValueError("domain_size must be positive")
        self._rng = random.Random(seed)
        self.domain: tuple[int, ...] = tuple(range(domain_size))

    def value(self) -> int:
        """One random domain value."""
        return self._rng.choice(self.domain)

    def row(self, arity: int) -> tuple[int, ...]:
        """One random row of the given arity."""
        return tuple(self.value() for _ in range(arity))

    def relation(self, schema: RelationSchema, size: int) -> Relation:
        """A random relation with at most ``size`` rows (duplicates collapse)."""
        return Relation(schema, [self.row(schema.arity) for _ in range(size)])

    def database(self, schema: DatabaseSchema, rows_per_relation: int) -> Database:
        """A random database instance."""
        contents = {
            name: self.relation(schema[name], rows_per_relation).rows
            for name in schema
        }
        return Database(schema, contents)

    def input_sequence(
        self,
        payload: RelationSchema,
        length: int,
        rows_per_message: int,
    ) -> InputSequence:
        """A random input sequence of ``length`` messages."""
        messages = [
            [self.row(payload.arity) for _ in range(rows_per_message)]
            for _ in range(length)
        ]
        return InputSequence(payload, messages)

    def truth_assignment(self, variables: Sequence[str]) -> frozenset[str]:
        """A random truth assignment, as the set of true variables.

        Input messages of SWS(PL, PL) services are truth assignments
        (Section 2, "SWS classes").
        """
        return frozenset(v for v in variables if self._rng.random() < 0.5)

    def pl_input_word(
        self, variables: Sequence[str], length: int
    ) -> tuple[frozenset[str], ...]:
        """A random word of truth assignments for PL services."""
        return tuple(self.truth_assignment(variables) for _ in range(length))
