"""Relational data substrate.

The paper defines SWS's over three relational schemas: a database schema
``R`` for the local database ``D``, an input schema ``Rin`` for input
messages, and an external schema ``Rout`` for output actions.  This package
provides the corresponding runtime objects:

* :class:`~repro.data.schema.RelationSchema` / ``DatabaseSchema`` — typed
  relation and database schemas;
* :class:`~repro.data.relation.Relation` — an immutable set of tuples over a
  relation schema, with the classical relational-algebra operations;
* :class:`~repro.data.database.Database` — an instance of a database schema;
* :class:`~repro.data.input_sequence.InputSequence` — the sequence
  ``I = I1, ..., In`` of input messages, convertible to/from the paper's
  encoding as a single relation with a timestamp attribute ``ts``;
* :mod:`~repro.data.actions` — helpers for interpreting output relations as
  committed actions (inserts/deletes/external messages);
* :mod:`~repro.data.generators` — seeded random instance generators used by
  tests and benchmarks.
"""

from repro.data.schema import Attribute, DatabaseSchema, RelationSchema, TS_ATTRIBUTE
from repro.data.relation import Relation, Row
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.actions import ActionKind, ActionLog, commit_actions
from repro.data.generators import InstanceGenerator

__all__ = [
    "ActionKind",
    "ActionLog",
    "Attribute",
    "Database",
    "DatabaseSchema",
    "InputSequence",
    "InstanceGenerator",
    "Relation",
    "RelationSchema",
    "Row",
    "TS_ATTRIBUTE",
    "commit_actions",
]
