"""Finite automata substrate.

The paper characterizes SWS(PL, PL) services against finite-state machinery:
the Roman model specifies services as DFAs/NFAs (Section 3), the PSPACE
bounds of Theorem 4.1(3) mirror alternating-finite-automaton (AFA)
complexity, and the composition cases of Theorem 5.3 run through the
rewriting of regular languages (Calvanese–De Giacomo–Lenzerini–Vardi).
This package provides:

``dfa`` / ``nfa``        deterministic and nondeterministic automata with
                         the standard constructions (product, complement,
                         determinization, minimization, equivalence,
                         shortest witnesses)
``afa``                  alternating (boolean) automata with backward
                         valuation-vector semantics — the same engine the
                         SWS(PL, PL) decision procedures use
``regex``                regular expressions and Thompson's construction
``regular_rewriting``    maximal rewriting of a regular language over
                         component languages (drives MDT(∨) composition)
``rpq``                  (2-way) regular path queries and UC2RPQs over
                         graph databases (drives Corollary 5.2)
"""

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.automata.afa import AFA
from repro.automata.regex import Regex, parse_regex

__all__ = ["AFA", "DFA", "NFA", "Regex", "parse_regex"]
