"""Rewriting of regular languages over component languages.

Theorem 5.3 settles the MDT(∨) composition cases by "employing the
2EXPSPACE NFA rewriting algorithm of [Calvanese, De Giacomo, Lenzerini,
Vardi 2002], taking into account the subtle interplay between a mediator
and the SWS's it calls" — component services *run to completion and stop at
the first final state*, so only their prefix-free cores contribute.

Given a goal language ``L`` over alphabet Σ and component languages
``L_1, ..., L_m``, the *maximal rewriting* is the largest language ``M``
over the component alphabet ``{e_1, ..., e_m}`` with
``sub(M) ⊆ L``, where ``sub`` substitutes any word of ``L_i`` for ``e_i``.
An *exact* rewriting exists iff additionally ``L ⊆ sub(M)``.

The construction: determinize ``L``; for each component compute the
relation ``R_i = {(s, t) | ∃ w ∈ L_i : s →w t}`` on DFA states; run a
subset construction over the component alphabet where a set ``T`` of DFA
states tracks everything reachable under *some* substitution choice; a
word is in ``M`` iff its ``T`` is nonempty and contains only accepting
states.  (The doubly-exponential blow-up of the paper's bound lives in the
determinization plus this subset construction.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import ReproError
from repro.guard import checkpoint_callable, register_span

Symbol = Hashable


@dataclass(frozen=True)
class RewritingResult:
    """Outcome of a regular-rewriting computation.

    ``maximal`` is the maximal rewriting over the component alphabet;
    ``exact`` tells whether it is an exact (equivalent) rewriting;
    ``witness`` is, when not exact, a word of the goal language that no
    substitution of ``maximal`` produces.
    """

    maximal: NFA
    exact: bool
    witness: tuple[Symbol, ...] | None


def component_relation(goal_dfa: DFA, component: NFA) -> frozenset[tuple]:
    """The reachability relation ``R = {(s, t) | ∃ w ∈ L(component): s →w t}``.

    Computed as a product reachability: explore pairs (goal state, component
    state-set); whenever the component set hits a final state, record
    (origin, current goal state).
    """
    relation: set[tuple] = set()
    ckpt = checkpoint_callable("regular_rewriting.rewrite")
    n_popped = 0
    for origin in goal_dfa.states:
        start = (origin, component.epsilon_closure(component.initials))
        seen: set[tuple] = set()
        queue: deque[tuple] = deque([start])
        ckpt(n_popped, queue, seen)
        while queue:
            state, cset = queue.popleft()
            n_popped += 1
            ckpt(n_popped, queue, seen)
            if (state, cset) in seen:
                continue
            seen.add((state, cset))
            if cset & component.finals:
                relation.add((origin, state))
            for symbol in goal_dfa.alphabet:
                nxt_c = component.step(cset, symbol)
                if not nxt_c:
                    continue
                nxt = (goal_dfa.step(state, symbol), nxt_c)
                if nxt not in seen:
                    queue.append(nxt)
    return frozenset(relation)


def maximal_rewriting(
    goal: NFA, components: Mapping[Symbol, NFA]
) -> NFA:
    """The maximal rewriting of ``goal`` over the component alphabet.

    ``components`` maps component names to their languages over the goal's
    alphabet.  The result is an automaton over the component names.
    """
    goal_dfa = goal.determinize()
    relations = {
        name: component_relation(goal_dfa, automaton.with_alphabet(goal_dfa.alphabet))
        for name, automaton in components.items()
    }
    successors: dict[Symbol, dict] = {}
    for name, relation in relations.items():
        table: dict = {}
        for source, target in relation:
            table.setdefault(source, set()).add(target)
        successors[name] = table

    initial = frozenset({goal_dfa.initial})
    states: set[frozenset] = set()
    transitions: dict[tuple[frozenset, Symbol], frozenset] = {}
    queue: deque[frozenset] = deque([initial])
    ckpt = checkpoint_callable("regular_rewriting.rewrite")
    n_popped = 0
    ckpt(0, queue, states)
    while queue:
        subset = queue.popleft()
        n_popped += 1
        ckpt(n_popped, queue, states)
        if subset in states:
            continue
        states.add(subset)
        for name in components:
            table = successors[name]
            target: set = set()
            for state in subset:
                target |= table.get(state, set())
            target_f = frozenset(target)
            transitions[(subset, name)] = target_f
            if target_f not in states:
                queue.append(target_f)
    finals = {
        subset for subset in states if subset and subset <= goal_dfa.finals
    }
    dfa_transitions = {
        key: frozenset({value}) for key, value in transitions.items()
    }
    return NFA(states, frozenset(components), dfa_transitions, {initial}, finals)


def rewrite(
    goal: NFA,
    components: Mapping[Symbol, NFA],
    run_to_completion: bool = True,
) -> RewritingResult:
    """Maximal rewriting plus exactness check.

    With ``run_to_completion`` (the SWS semantics of Theorem 5.3), each
    component language is first restricted to its prefix-free core.
    """
    alphabet = goal.alphabet
    for nfa in components.values():
        alphabet |= nfa.alphabet
    goal_padded = goal.with_alphabet(alphabet)
    effective = {
        name: (
            nfa.with_alphabet(alphabet).prefix_free_restriction()
            if run_to_completion
            else nfa.with_alphabet(alphabet)
        )
        for name, nfa in components.items()
    }
    maximal = maximal_rewriting(goal_padded, effective)
    substituted = maximal.substitute(effective, alphabet)
    goal_dfa = goal_padded.determinize()
    sub_dfa = substituted.determinize()
    missing = goal_dfa.product(sub_dfa.complement(), accept="and")
    witness = missing.shortest_accepted()
    return RewritingResult(maximal=maximal, exact=witness is None, witness=witness)


def exact_rewriting_exists(
    goal: NFA, components: Mapping[Symbol, NFA], run_to_completion: bool = True
) -> bool:
    """Whether an exact rewriting of the goal over the components exists.

    By maximality, an exact rewriting exists iff the maximal one is exact —
    this is the decision procedure behind Theorem 5.3(1) and (2).
    """
    return rewrite(goal, components, run_to_completion).exact


register_span(
    "regular_rewriting.rewrite",
    "component-relation pair-BFS and rewriting subset construction",
    "Theorem 5.3(1,2): 2EXPSPACE regular-rewriting composition",
)
