"""Nondeterministic finite automata (with ε-transitions).

NFAs model Roman-model composite services and the regular languages the
MDT(∨) composition machinery (Theorem 5.3) manipulates.  The class supports
the standard constructions plus two operations the paper's composition
semantics needs specifically:

* :meth:`prefix_free_restriction` — component services invoked by a
  mediator *run to completion and stop at the first final state*
  (Theorem 5.3(1) proof sketch), so the effective component language is the
  prefix-free core: accepted words none of whose proper prefixes are
  accepted;
* :meth:`substitute` — homomorphic substitution of component languages for
  alphabet symbols, used to expand a candidate mediator language back over
  the base alphabet.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping, Sequence

from repro.automata.dfa import DFA
from repro.errors import ReproError
from repro.guard import checkpoint_callable, register_span

State = Hashable
Symbol = Hashable

#: ε label for silent transitions.
EPSILON = None


class NFA:
    """A nondeterministic finite automaton with optional ε-transitions."""

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[tuple[State, Symbol | None], Iterable[State]],
        initials: Iterable[State],
        finals: Iterable[State],
    ) -> None:
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        if EPSILON in self.alphabet:
            raise ReproError("ε (None) cannot be an alphabet symbol")
        self.transitions: dict[tuple[State, Symbol | None], frozenset[State]] = {
            key: frozenset(targets) for key, targets in transitions.items()
        }
        self.initials = frozenset(initials)
        self.finals = frozenset(finals)
        if not self.initials <= self.states or not self.finals <= self.states:
            raise ReproError("initial/final states must be states")
        for (state, symbol), targets in self.transitions.items():
            if state not in self.states or not targets <= self.states:
                raise ReproError(f"transition {(state, symbol)} uses unknown state")
            if symbol is not EPSILON and symbol not in self.alphabet:
                raise ReproError(f"transition on unknown symbol {symbol!r}")

    # -- construction helpers ---------------------------------------------------------

    @classmethod
    def for_word(cls, word: Sequence[Symbol], alphabet: Iterable[Symbol]) -> "NFA":
        """The NFA accepting exactly one word."""
        states = list(range(len(word) + 1))
        transitions = {
            (i, symbol): {i + 1} for i, symbol in enumerate(word)
        }
        return cls(states, alphabet, transitions, {0}, {len(word)})

    @classmethod
    def empty_language(cls, alphabet: Iterable[Symbol]) -> "NFA":
        """The NFA accepting nothing."""
        return cls({0}, alphabet, {}, {0}, set())

    # -- running ------------------------------------------------------------------------

    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        """ε-closure of a state set."""
        closure: set[State] = set(states)
        queue = deque(closure)
        while queue:
            state = queue.popleft()
            for target in self.transitions.get((state, EPSILON), frozenset()):
                if target not in closure:
                    closure.add(target)
                    queue.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[State], symbol: Symbol) -> frozenset[State]:
        """All states reachable by consuming one symbol (with ε-closures)."""
        current = self.epsilon_closure(states)
        moved: set[State] = set()
        for state in current:
            moved |= self.transitions.get((state, symbol), frozenset())
        return self.epsilon_closure(moved)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Language membership."""
        current = self.epsilon_closure(self.initials)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.finals)

    # -- standard constructions ------------------------------------------------------------

    def determinize(self) -> DFA:
        """Subset construction (reachable part only)."""
        ckpt = checkpoint_callable("nfa.determinize")
        initial = self.epsilon_closure(self.initials)
        states: set[frozenset[State]] = set()
        transitions: dict[tuple[frozenset[State], Symbol], frozenset[State]] = {}
        queue: deque[frozenset[State]] = deque([initial])
        n = 0
        ckpt(0, queue, states)
        while queue:
            subset = queue.popleft()
            n += 1
            ckpt(n, queue, states)
            if subset in states:
                continue
            states.add(subset)
            for symbol in self.alphabet:
                target = self.step(subset, symbol)
                transitions[(subset, symbol)] = target
                if target not in states:
                    queue.append(target)
        finals = {s for s in states if s & self.finals}
        return DFA(states, self.alphabet, transitions, initial, finals)

    def union(self, other: "NFA") -> "NFA":
        """Language union (disjoint-state sum)."""
        return self._combine(other, connect="union")

    def concat(self, other: "NFA") -> "NFA":
        """Language concatenation."""
        return self._combine(other, connect="concat")

    def star(self) -> "NFA":
        """Kleene star."""
        tagged = self._tag(0)
        start = ("star", "s")
        states = set(tagged.states) | {start}
        transitions = dict(tagged.transitions)
        eps_key = lambda s: (s, EPSILON)  # noqa: E731 - local alias
        extra: dict[tuple[State, Symbol | None], set[State]] = {}
        extra[eps_key(start)] = set(tagged.initials)
        for final in tagged.finals:
            extra.setdefault(eps_key(final), set()).update(tagged.initials)
        merged = _merge_transitions(transitions, extra)
        return NFA(states, self.alphabet, merged, {start}, set(tagged.finals) | {start})

    def _combine(self, other: "NFA", connect: str) -> "NFA":
        if self.alphabet != other.alphabet:
            alphabet = self.alphabet | other.alphabet
            left = self.with_alphabet(alphabet)
            right = other.with_alphabet(alphabet)
        else:
            left, right = self, other
        a = left._tag(0)
        b = right._tag(1)
        states = set(a.states) | set(b.states)
        transitions: dict[tuple[State, Symbol | None], frozenset[State]] = {}
        transitions.update(a.transitions)
        transitions.update(b.transitions)
        if connect == "union":
            initials = set(a.initials) | set(b.initials)
            finals = set(a.finals) | set(b.finals)
        elif connect == "concat":
            extra: dict[tuple[State, Symbol | None], set[State]] = {}
            for final in a.finals:
                extra.setdefault((final, EPSILON), set()).update(b.initials)
            transitions = _merge_transitions(transitions, extra)
            initials = set(a.initials)
            finals = set(b.finals)
        else:
            raise ReproError(f"unknown combination {connect!r}")
        return NFA(states, a.alphabet, transitions, initials, finals)

    def _tag(self, tag: int) -> "NFA":
        mapping = {s: (tag, s) for s in self.states}
        transitions = {
            ((tag, s), symbol): frozenset((tag, t) for t in targets)
            for (s, symbol), targets in self.transitions.items()
        }
        return NFA(
            mapping.values(),
            self.alphabet,
            transitions,
            (mapping[s] for s in self.initials),
            (mapping[s] for s in self.finals),
        )

    def with_alphabet(self, alphabet: Iterable[Symbol]) -> "NFA":
        """The same automaton over a (super)alphabet."""
        alphabet = frozenset(alphabet)
        if not self.alphabet <= alphabet:
            raise ReproError("new alphabet must contain the old one")
        return NFA(self.states, alphabet, self.transitions, self.initials, self.finals)

    # -- decision procedures -----------------------------------------------------------------

    def is_empty(self) -> bool:
        """Whether the language is empty (reachability of a final state)."""
        seen: set[State] = set()
        queue = deque(self.epsilon_closure(self.initials))
        while queue:
            state = queue.popleft()
            if state in seen:
                continue
            seen.add(state)
            if state in self.finals:
                return False
            for (source, _symbol), targets in self.transitions.items():
                if source == state:
                    queue.extend(targets)
        return True

    def contained_in(self, other: "NFA") -> bool:
        """Language containment via determinization of ``other``."""
        alphabet = self.alphabet | other.alphabet
        left = self.with_alphabet(alphabet).determinize()
        right = other.with_alphabet(alphabet).determinize()
        return left.contained_in(right)

    def equivalent_to(self, other: "NFA") -> bool:
        """Language equivalence via determinization."""
        alphabet = self.alphabet | other.alphabet
        left = self.with_alphabet(alphabet).determinize()
        right = other.with_alphabet(alphabet).determinize()
        return left.equivalent_to(right)

    def shortest_accepted(self) -> tuple[Symbol, ...] | None:
        """A shortest accepted word, or ``None``."""
        return self.determinize().shortest_accepted()

    # -- paper-specific operations --------------------------------------------------------------

    def prefix_free_restriction(self) -> "NFA":
        """Words accepted with no accepted proper prefix.

        Models "run to completion, stop at the first final state": once a
        component service reaches a final state it stops consuming input,
        so continuations of accepted words are unreachable behaviours.
        Implemented on the determinization by cutting all transitions out
        of accepting states.
        """
        dfa = self.determinize()
        transitions = {
            (state, symbol): frozenset({target})
            for (state, symbol), target in dfa.transitions.items()
            if state not in dfa.finals
        }
        return NFA(dfa.states, dfa.alphabet, transitions, {dfa.initial}, dfa.finals)

    def substitute(self, languages: Mapping[Symbol, "NFA"], alphabet: Iterable[Symbol]) -> "NFA":
        """Homomorphic substitution: replace each symbol edge by a language.

        ``languages`` maps every symbol of this automaton's alphabet to an
        NFA over the target ``alphabet``.  The result accepts exactly
        ``{ w1...wk | a1...ak ∈ L(self), wi ∈ L(languages[ai]) }``.
        """
        alphabet = frozenset(alphabet)
        states: set[State] = {("outer", s) for s in self.states}
        transitions: dict[tuple[State, Symbol | None], set[State]] = {}
        copy_index = 0
        for (source, symbol), targets in self.transitions.items():
            if symbol is EPSILON:
                transitions.setdefault((("outer", source), EPSILON), set()).update(
                    ("outer", t) for t in targets
                )
                continue
            if symbol not in languages:
                raise ReproError(f"no language supplied for symbol {symbol!r}")
            component = languages[symbol]
            for target in targets:
                tag = ("copy", copy_index)
                copy_index += 1
                for cstate in component.states:
                    states.add((tag, cstate))
                for (cs, csym), ctargets in component.transitions.items():
                    transitions.setdefault(((tag, cs), csym), set()).update(
                        (tag, ct) for ct in ctargets
                    )
                transitions.setdefault((("outer", source), EPSILON), set()).update(
                    (tag, ci) for ci in component.initials
                )
                for cfinal in component.finals:
                    transitions.setdefault(((tag, cfinal), EPSILON), set()).add(
                        ("outer", target)
                    )
        return NFA(
            states,
            alphabet,
            {k: frozenset(v) for k, v in transitions.items()},
            {("outer", s) for s in self.initials},
            {("outer", s) for s in self.finals},
        )

    def __repr__(self) -> str:
        return (
            f"NFA(states={len(self.states)}, alphabet={len(self.alphabet)}, "
            f"finals={len(self.finals)})"
        )


register_span(
    "nfa.determinize",
    "NFA subset construction (determinize and everything built on it)",
    "Theorem 5.3: regular mediator machinery over determinized languages",
)


def _merge_transitions(
    base: Mapping[tuple[State, Symbol | None], frozenset[State]],
    extra: Mapping[tuple[State, Symbol | None], set[State]],
) -> dict[tuple[State, Symbol | None], frozenset[State]]:
    merged: dict[tuple[State, Symbol | None], set[State]] = {
        key: set(targets) for key, targets in base.items()
    }
    for key, targets in extra.items():
        merged.setdefault(key, set()).update(targets)
    return {key: frozenset(targets) for key, targets in merged.items()}
