"""Deterministic finite automata.

DFAs play three roles in the reproduction: Roman-model services *are* DFAs
(Section 3), the special cases of Theorem 5.3(2) distinguish DFA goals from
NFA goals, and every language-level decision procedure (equivalence of
PL services, regular rewriting) determinizes into this representation.

States are arbitrary hashable objects.  A DFA here is *total over its
alphabet by convention of the transition map*: missing transitions go to an
implicit dead state, which keeps hand-built automata small.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping, Sequence

from repro.errors import ReproError
from repro.guard import checkpoint_callable, register_span

State = Hashable
Symbol = Hashable

#: Implicit dead state used to totalize partial transition maps.
DEAD = "__dead__"


class DFA:
    """A deterministic finite automaton."""

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[tuple[State, Symbol], State],
        initial: State,
        finals: Iterable[State],
    ) -> None:
        self.states = frozenset(states) | {DEAD}
        self.alphabet = frozenset(alphabet)
        self.transitions = dict(transitions)
        self.initial = initial
        self.finals = frozenset(finals)
        if initial not in self.states:
            raise ReproError(f"initial state {initial!r} not a state")
        if not self.finals <= self.states:
            raise ReproError("final states must be states")
        for (state, symbol), target in self.transitions.items():
            if state not in self.states or target not in self.states:
                raise ReproError(f"transition {(state, symbol)} uses unknown state")
            if symbol not in self.alphabet:
                raise ReproError(f"transition on unknown symbol {symbol!r}")

    # -- running -------------------------------------------------------------------

    def step(self, state: State, symbol: Symbol) -> State:
        """One transition; missing entries go to the dead state."""
        if symbol not in self.alphabet:
            raise ReproError(f"symbol {symbol!r} not in alphabet")
        return self.transitions.get((state, symbol), DEAD)

    def run(self, word: Sequence[Symbol]) -> State:
        """The state reached from the initial state on ``word``."""
        state = self.initial
        for symbol in word:
            state = self.step(state, symbol)
        return state

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Language membership."""
        return self.run(word) in self.finals

    # -- classical constructions ----------------------------------------------------

    def complement(self) -> "DFA":
        """The DFA for the complement language (over the same alphabet)."""
        # Totalize explicitly so non-final includes the dead state.
        transitions = dict(self.transitions)
        for state in self.states:
            for symbol in self.alphabet:
                transitions.setdefault((state, symbol), DEAD)
        finals = self.states - self.finals
        return DFA(self.states, self.alphabet, transitions, self.initial, finals)

    def product(self, other: "DFA", accept: str = "and") -> "DFA":
        """Synchronous product; ``accept`` is ``"and"``, ``"or"`` or ``"xor"``."""
        if self.alphabet != other.alphabet:
            raise ReproError("product requires identical alphabets")
        ckpt = checkpoint_callable("dfa.product")
        initial = (self.initial, other.initial)
        states: set[State] = set()
        transitions: dict[tuple[State, Symbol], State] = {}
        queue: deque[tuple[State, State]] = deque([initial])
        n = 0
        ckpt(0, queue, states)
        while queue:
            pair = queue.popleft()
            n += 1
            ckpt(n, queue, states)
            if pair in states:
                continue
            states.add(pair)
            left, right = pair
            for symbol in self.alphabet:
                target = (self.step(left, symbol), other.step(right, symbol))
                transitions[(pair, symbol)] = target
                if target not in states:
                    queue.append(target)
        def accepting(pair: tuple[State, State]) -> bool:
            in_left = pair[0] in self.finals
            in_right = pair[1] in other.finals
            if accept == "and":
                return in_left and in_right
            if accept == "or":
                return in_left or in_right
            if accept == "xor":
                return in_left != in_right
            raise ReproError(f"unknown product mode {accept!r}")
        finals = {pair for pair in states if accepting(pair)}
        return DFA(states, self.alphabet, transitions, initial, finals)

    def reachable_states(self) -> frozenset[State]:
        """States reachable from the initial state."""
        seen: set[State] = set()
        queue: deque[State] = deque([self.initial])
        while queue:
            state = queue.popleft()
            if state in seen:
                continue
            seen.add(state)
            for symbol in self.alphabet:
                queue.append(self.step(state, symbol))
        return frozenset(seen)

    def is_empty(self) -> bool:
        """Whether the language is empty."""
        return not (self.reachable_states() & self.finals)

    def shortest_accepted(self) -> tuple[Symbol, ...] | None:
        """A shortest accepted word, or ``None`` when the language is empty."""
        queue: deque[tuple[State, tuple[Symbol, ...]]] = deque([(self.initial, ())])
        seen: set[State] = set()
        order = sorted(self.alphabet, key=repr)
        while queue:
            state, word = queue.popleft()
            if state in seen:
                continue
            seen.add(state)
            if state in self.finals:
                return word
            for symbol in order:
                queue.append((self.step(state, symbol), word + (symbol,)))
        return None

    def equivalent_to(self, other: "DFA") -> bool:
        """Language equivalence via the symmetric-difference product."""
        return self.product(other, accept="xor").is_empty()

    def contained_in(self, other: "DFA") -> bool:
        """Language containment L(self) ⊆ L(other)."""
        return self.product(other.complement(), accept="and").is_empty()

    def minimized(self) -> "DFA":
        """Moore's partition-refinement minimization (reachable part)."""
        reachable = self.reachable_states()
        finals = self.finals & reachable
        nonfinals = reachable - finals
        partition: list[set[State]] = [s for s in (set(finals), set(nonfinals)) if s]
        changed = True
        while changed:
            changed = False
            block_of: dict[State, int] = {}
            for i, block in enumerate(partition):
                for state in block:
                    block_of[state] = i
            refined: list[set[State]] = []
            for block in partition:
                groups: dict[tuple[int, ...], set[State]] = {}
                for state in block:
                    signature = tuple(
                        block_of[self.step(state, symbol)]
                        if self.step(state, symbol) in block_of
                        else -1
                        for symbol in sorted(self.alphabet, key=repr)
                    )
                    groups.setdefault(signature, set()).add(state)
                refined.extend(groups.values())
                if len(groups) > 1:
                    changed = True
            partition = refined
        block_of = {}
        for i, block in enumerate(partition):
            for state in block:
                block_of[state] = i
        transitions: dict[tuple[State, Symbol], State] = {}
        for state in reachable:
            for symbol in self.alphabet:
                target = self.step(state, symbol)
                if target in block_of:
                    transitions[(block_of[state], symbol)] = block_of[target]
        new_finals = {block_of[s] for s in finals}
        return DFA(
            set(block_of.values()),
            self.alphabet,
            transitions,
            block_of[self.initial],
            new_finals,
        )

    def to_nfa(self) -> "NFA":
        """View as an NFA."""
        from repro.automata.nfa import NFA

        transitions: dict[tuple[State, Symbol], frozenset[State]] = {}
        for (state, symbol), target in self.transitions.items():
            transitions[(state, symbol)] = frozenset({target})
        return NFA(self.states, self.alphabet, transitions, {self.initial}, self.finals)

    def __repr__(self) -> str:
        return (
            f"DFA(states={len(self.states)}, alphabet={len(self.alphabet)}, "
            f"finals={len(self.finals)})"
        )


register_span(
    "dfa.product",
    "DFA synchronous-product pair BFS (equivalence/containment/complement)",
    "Section 3 / Theorem 5.3(2): Roman-model and regular language checks",
)
