"""(2-way) regular path queries over graph databases.

Corollary 5.2 identifies a decidable composition case for data-driven
recursive services: goal services expressing UC2RPQ queries, components
expressing CQ queries, mediators expressing UC2RPQs.  This module supplies
the UC2RPQ substrate:

* :class:`GraphDatabase` — an edge-labeled graph "encoded by a collection
  of binary relations for edges, along with their inverse" (Section 5.2);
* :class:`RPQ` — a 2-way regular path query: a regular expression over
  edge labels and their inverses, computing node pairs connected by a
  matching path;
* :class:`C2RPQ` / :class:`UC2RPQ` — conjunctions and unions thereof;
* containment utilities: language-based containment for RPQs (sound, and
  complete for forward-only RPQs) and a bounded canonical-path check for
  conjunctive queries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.automata.nfa import NFA
from repro.automata.regex import Regex
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.errors import QueryError
from repro.logic.terms import Variable

Node = Hashable
Label = str


def inverse(label: Label) -> Label:
    """The inverse edge label: ``a ↦ a^`` and ``a^ ↦ a``."""
    if label.endswith("^"):
        return label[:-1]
    return label + "^"


def is_inverse(label: Label) -> bool:
    """Whether a label denotes a reversed edge."""
    return label.endswith("^")


class GraphDatabase:
    """An edge-labeled directed graph.

    Stored as label → set of (source, target) edges; inverse labels are
    derived on demand, matching the paper's encoding of a semistructured
    database as binary relations plus their inverses.
    """

    def __init__(self, edges: Mapping[Label, Iterable[tuple[Node, Node]]] = ()) -> None:
        self._edges: dict[Label, frozenset[tuple[Node, Node]]] = {}
        for label, pairs in dict(edges).items():
            if is_inverse(label):
                raise QueryError("supply forward edges only; inverses are derived")
            self._edges[label] = frozenset((s, t) for s, t in pairs)

    def labels(self) -> frozenset[Label]:
        """The forward edge labels."""
        return frozenset(self._edges)

    def nodes(self) -> frozenset[Node]:
        """All graph nodes."""
        out: set[Node] = set()
        for pairs in self._edges.values():
            for source, target in pairs:
                out.add(source)
                out.add(target)
        return frozenset(out)

    def edges(self, label: Label) -> frozenset[tuple[Node, Node]]:
        """Edges under a (possibly inverse) label."""
        if is_inverse(label):
            forward = self._edges.get(inverse(label), frozenset())
            return frozenset((t, s) for s, t in forward)
        return self._edges.get(label, frozenset())

    def as_relations(self) -> dict[str, Relation]:
        """Binary relations (forward and inverse) for CQ evaluation."""
        out: dict[str, Relation] = {}
        for label in self._edges:
            for name in (label, inverse(label)):
                schema = RelationSchema(name, ("src", "dst"))
                out[name] = Relation(schema, self.edges(name))
        return out

    def __repr__(self) -> str:
        total = sum(len(p) for p in self._edges.values())
        return f"GraphDatabase(labels={len(self._edges)}, edges={total})"


@dataclass(frozen=True)
class RPQ:
    """A 2-way regular path query: a regex over labels and inverses."""

    regex: Regex
    name: str = "rpq"

    def labels(self) -> frozenset[Label]:
        """Labels (including inverses) the regex mentions."""
        return frozenset(str(s) for s in self.regex.symbols())

    def to_nfa(self, alphabet: Iterable[Label] | None = None) -> NFA:
        """The automaton of the path language."""
        return self.regex.to_nfa(alphabet)

    def evaluate(self, graph: GraphDatabase) -> frozenset[tuple[Node, Node]]:
        """All node pairs connected by a path whose labels spell a word
        of the regex (inverse labels traverse edges backwards)."""
        alphabet = self.labels() | graph.labels()
        nfa = self.to_nfa(alphabet)
        results: set[tuple[Node, Node]] = set()
        start_states = nfa.epsilon_closure(nfa.initials)
        for origin in graph.nodes():
            # Product BFS over (graph node, NFA state set).
            seen: set[tuple[Node, frozenset]] = set()
            queue: deque[tuple[Node, frozenset]] = deque([(origin, start_states)])
            while queue:
                node, states = queue.popleft()
                if (node, states) in seen:
                    continue
                seen.add((node, states))
                if states & nfa.finals:
                    results.add((origin, node))
                for label in alphabet:
                    nxt_states = nfa.step(states, label)
                    if not nxt_states:
                        continue
                    for source, target in graph.edges(label):
                        if source == node:
                            queue.append((target, nxt_states))
        return frozenset(results)

    def contained_in(self, other: "RPQ") -> bool:
        """Path-language containment.

        Sound for 2RPQs and complete for forward-only RPQs; 2-way
        containment in full generality needs two-way automata, outside
        this reproduction's scope (documented in EXPERIMENTS.md).
        """
        alphabet = self.labels() | other.labels()
        return self.to_nfa(alphabet).contained_in(other.to_nfa(alphabet))

    def __str__(self) -> str:
        return f"{self.name}: {self.regex}"


@dataclass(frozen=True)
class PathAtom:
    """A path atom ``(x, rpq, y)`` in a conjunctive 2RPQ."""

    source: Variable
    rpq: RPQ
    target: Variable

    def __str__(self) -> str:
        return f"({self.source}, {self.rpq.regex}, {self.target})"


class C2RPQ:
    """A conjunctive 2RPQ: head variables plus path atoms."""

    def __init__(
        self,
        head: Sequence[Variable],
        atoms: Iterable[PathAtom],
        name: str = "q",
    ) -> None:
        self.head = tuple(head)
        self.atoms = tuple(atoms)
        self.name = name
        body_vars = {v for a in self.atoms for v in (a.source, a.target)}
        missing = set(self.head) - body_vars
        if missing:
            raise QueryError(
                f"unsafe C2RPQ: head variables {sorted(v.name for v in missing)} "
                "not used in any path atom"
            )

    def variables(self) -> frozenset[Variable]:
        """All variables of the query."""
        return frozenset(
            v for a in self.atoms for v in (a.source, a.target)
        ) | frozenset(self.head)

    def evaluate(self, graph: GraphDatabase) -> frozenset[tuple[Node, ...]]:
        """Join of the path atoms, projected on the head."""
        atom_results = [(a, a.rpq.evaluate(graph)) for a in self.atoms]
        answers: set[tuple[Node, ...]] = set()
        variables = sorted(self.variables(), key=lambda v: v.name)

        def extend(
            index: int, binding: dict[Variable, Node]
        ) -> Iterator[dict[Variable, Node]]:
            if index == len(atom_results):
                yield binding
                return
            atom, pairs = atom_results[index]
            for source, target in pairs:
                if atom.source in binding and binding[atom.source] != source:
                    continue
                if atom.target in binding:
                    expected = source if atom.target == atom.source else binding[atom.target]
                    if expected != target:
                        continue
                if atom.source == atom.target and source != target:
                    continue
                child = dict(binding)
                child[atom.source] = source
                child[atom.target] = target
                yield from extend(index + 1, child)

        del variables
        for binding in extend(0, {}):
            answers.add(tuple(binding[v] for v in self.head))
        return frozenset(answers)

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = ", ".join(str(a) for a in self.atoms)
        return f"{self.name}({head}) :- {body}"


class UC2RPQ:
    """A union of conjunctive 2RPQs with a common head arity."""

    def __init__(self, disjuncts: Iterable[C2RPQ], name: str = "q") -> None:
        self.disjuncts = tuple(disjuncts)
        self.name = name
        arities = {len(d.head) for d in self.disjuncts}
        if len(arities) > 1:
            raise QueryError(f"mixed arities in UC2RPQ: {sorted(arities)}")

    def evaluate(self, graph: GraphDatabase) -> frozenset[tuple[Node, ...]]:
        """Union of the disjuncts' answers."""
        out: set[tuple[Node, ...]] = set()
        for disjunct in self.disjuncts:
            out |= disjunct.evaluate(graph)
        return frozenset(out)

    def __iter__(self) -> Iterator[C2RPQ]:
        return iter(self.disjuncts)

    def __str__(self) -> str:
        return "  UNION  ".join(str(d) for d in self.disjuncts)


def canonical_graph(word: Sequence[Label], start: str = "n") -> GraphDatabase:
    """The path graph spelling ``word`` (inverses traverse backwards).

    Canonical databases of path queries: node ``n0 → n1 → ...`` with the
    i-th edge labeled by ``word[i]`` (or reversed, for inverse labels).
    """
    edges: dict[Label, set[tuple[Node, Node]]] = {}
    for i, label in enumerate(word):
        source, target = f"{start}{i}", f"{start}{i + 1}"
        if is_inverse(label):
            edges.setdefault(inverse(label), set()).add((target, source))
        else:
            edges.setdefault(label, set()).add((source, target))
    return GraphDatabase(edges)


def rpq_contained_in_bounded(
    query: RPQ, other: "RPQ | UC2RPQ", max_length: int = 6
) -> bool:
    """Bounded containment check via canonical path graphs.

    Enumerates words of ``query`` up to ``max_length`` and verifies the
    other query answers the endpoints on each canonical path graph.  Sound
    for refutation; confirmation is complete only up to the bound.
    """
    alphabet = sorted(query.labels())
    nfa = query.to_nfa(alphabet)
    words = _words_up_to(nfa, max_length)
    for word in words:
        graph = canonical_graph(word)
        endpoints = ("n0", f"n{len(word)}")
        if isinstance(other, RPQ):
            answers = other.evaluate(graph)
        else:
            answers = other.evaluate(graph)
        if endpoints not in answers:
            return False
    return True


def _words_up_to(nfa: NFA, max_length: int) -> list[tuple[Label, ...]]:
    words: list[tuple[Label, ...]] = []
    start = nfa.epsilon_closure(nfa.initials)
    queue: deque[tuple[frozenset, tuple[Label, ...]]] = deque([(start, ())])
    while queue:
        states, word = queue.popleft()
        if states & nfa.finals:
            words.append(word)
        if len(word) == max_length:
            continue
        for symbol in sorted(nfa.alphabet, key=repr):
            nxt = nfa.step(states, symbol)
            if nxt:
                queue.append((nxt, word + (str(symbol),)))
    return words
