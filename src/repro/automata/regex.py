"""Regular expressions and Thompson's construction.

Regular expressions are the convenient surface syntax for the goal and
component languages of the MDT(∨) composition cases (Theorem 5.3) and for
(2-way) regular path queries (Corollary 5.2).  Symbols are single
identifiers; the concrete syntax supports ``|`` (union), juxtaposition
(concatenation), ``*`` (star), ``+`` (plus), ``?`` (option), parentheses,
``()`` for ε and identifiers — multi-character identifiers must be
parenthesized apart by whitespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.automata.nfa import NFA
from repro.errors import QueryError

Symbol = Hashable


class Regex:
    """Base class for regular expressions."""

    def symbols(self) -> frozenset[Symbol]:
        """All alphabet symbols occurring in the expression."""
        raise NotImplementedError

    def to_nfa(self, alphabet: Iterable[Symbol] | None = None) -> NFA:
        """Thompson's construction."""
        alphabet = frozenset(alphabet) if alphabet is not None else self.symbols()
        return self._build(alphabet)

    def _build(self, alphabet: frozenset[Symbol]) -> NFA:
        raise NotImplementedError

    # -- sugar --------------------------------------------------------------

    def __or__(self, other: "Regex") -> "Regex":
        return Union_((self, other))

    def __add__(self, other: "Regex") -> "Regex":
        return Concat((self, other))

    def star(self) -> "Regex":
        """Kleene star of this expression."""
        return Star(self)


@dataclass(frozen=True)
class EmptySet(Regex):
    """The empty language."""

    def symbols(self) -> frozenset[Symbol]:
        return frozenset()

    def _build(self, alphabet: frozenset[Symbol]) -> NFA:
        return NFA.empty_language(alphabet)

    def __str__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language {ε}."""

    def symbols(self) -> frozenset[Symbol]:
        return frozenset()

    def _build(self, alphabet: frozenset[Symbol]) -> NFA:
        return NFA({0}, alphabet, {}, {0}, {0})

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Sym(Regex):
    """A single alphabet symbol."""

    symbol: Symbol

    def symbols(self) -> frozenset[Symbol]:
        return frozenset({self.symbol})

    def _build(self, alphabet: frozenset[Symbol]) -> NFA:
        return NFA({0, 1}, alphabet, {(0, self.symbol): {1}}, {0}, {1})

    def __str__(self) -> str:
        return str(self.symbol)


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation of subexpressions."""

    parts: tuple[Regex, ...]

    def __init__(self, parts: Iterable[Regex]) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def symbols(self) -> frozenset[Symbol]:
        return frozenset().union(*(p.symbols() for p in self.parts))

    def _build(self, alphabet: frozenset[Symbol]) -> NFA:
        if not self.parts:
            return Epsilon()._build(alphabet)
        nfa = self.parts[0]._build(alphabet)
        for part in self.parts[1:]:
            nfa = nfa.concat(part._build(alphabet))
        return nfa

    def __str__(self) -> str:
        return " ".join(
            f"({p})" if isinstance(p, Union_) else str(p) for p in self.parts
        )


@dataclass(frozen=True)
class Union_(Regex):
    """Union of subexpressions."""

    parts: tuple[Regex, ...]

    def __init__(self, parts: Iterable[Regex]) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def symbols(self) -> frozenset[Symbol]:
        return frozenset().union(*(p.symbols() for p in self.parts))

    def _build(self, alphabet: frozenset[Symbol]) -> NFA:
        if not self.parts:
            return NFA.empty_language(alphabet)
        nfa = self.parts[0]._build(alphabet)
        for part in self.parts[1:]:
            nfa = nfa.union(part._build(alphabet))
        return nfa

    def __str__(self) -> str:
        return " | ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star."""

    operand: Regex

    def symbols(self) -> frozenset[Symbol]:
        return self.operand.symbols()

    def _build(self, alphabet: frozenset[Symbol]) -> NFA:
        return self.operand._build(alphabet).star()

    def __str__(self) -> str:
        inner = str(self.operand)
        if isinstance(self.operand, (Sym, Epsilon, EmptySet)):
            return f"{inner}*"
        return f"({inner})*"


# -- parser --------------------------------------------------------------------
#
# regex   := branch ('|' branch)*
# branch  := piece*
# piece   := base ('*' | '+' | '?')*
# base    := identifier | '(' regex ')' | '()'


class _RegexParser:
    def __init__(self, text: str) -> None:
        self._tokens = self._tokenize(text)
        self._pos = 0

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        tokens: list[str] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
            elif ch in "()|*+?":
                tokens.append(ch)
                i += 1
            elif ch.isalnum() or ch in "_-^":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] in "_-^"):
                    j += 1
                tokens.append(text[i:j])
                i = j
            else:
                raise QueryError(f"unexpected character {ch!r} in regex {text!r}")
        return tokens

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of regex")
        self._pos += 1
        return token

    def parse(self) -> Regex:
        regex = self._regex()
        if self._peek() is not None:
            raise QueryError(f"trailing regex tokens: {self._tokens[self._pos:]}")
        return regex

    def _regex(self) -> Regex:
        branches = [self._branch()]
        while self._peek() == "|":
            self._next()
            branches.append(self._branch())
        return branches[0] if len(branches) == 1 else Union_(branches)

    def _branch(self) -> Regex:
        pieces: list[Regex] = []
        while self._peek() is not None and self._peek() not in {")", "|"}:
            pieces.append(self._piece())
        if not pieces:
            return Epsilon()
        return pieces[0] if len(pieces) == 1 else Concat(pieces)

    def _piece(self) -> Regex:
        base = self._base()
        while self._peek() in {"*", "+", "?"}:
            op = self._next()
            if op == "*":
                base = Star(base)
            elif op == "+":
                base = Concat((base, Star(base)))
            else:
                base = Union_((base, Epsilon()))
        return base

    def _base(self) -> Regex:
        token = self._next()
        if token == "(":
            if self._peek() == ")":
                self._next()
                return Epsilon()
            inner = self._regex()
            if self._next() != ")":
                raise QueryError("unbalanced parentheses in regex")
            return inner
        if token in {")", "|", "*", "+", "?"}:
            raise QueryError(f"unexpected regex token {token!r}")
        return Sym(token)


def parse_regex(text: str) -> Regex:
    """Parse the concrete regex syntax described in the module docstring."""
    return _RegexParser(text).parse()
