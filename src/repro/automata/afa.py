"""Alternating finite automata (boolean automata).

Theorem 4.1(3) ties SWS(PL, PL) to AFA: the PSPACE lower bound on
non-emptiness is by expressing AFA in SWS(PL, PL) "in ptime", and the
upper bound checks non-emptiness "along the same lines as AFA non-emptiness
checking".  This module implements AFA with arbitrary boolean transition
conditions (alternation *and* negation) and the backward valuation-vector
semantics that both AFA decision procedures and the SWS(PL, PL) procedures
in :mod:`repro.core.pl_semantics` share:

For a word ``w`` read *suffix-first*, the valuation vector ``V_w`` assigns
each state ``q`` the truth of "the run from q accepts w".  ``V_ε`` is the
final-state indicator; ``V_{a·w}(q) = δ(q, a)`` evaluated on ``V_w``.  The
automaton accepts ``w`` iff the initial condition evaluates to true on
``V_w``.  Reachability over the (finitely many) vectors decides emptiness
in exponential time / polynomial space — the classical AFA bound.

**Compiled hot path.**  The searches run on a compiled engine
(:class:`_CompiledAFA`): states map to bit positions, valuation vectors are
int bitsets, every transition formula is compiled once into a
bitmask-evaluating closure (:func:`repro.logic.pl.compile_mask`), and
alphabet symbols inducing *identical* transition rows are collapsed to one
representative per class — for SWS-derived AFAs this shrinks the
2^|vars| assignment alphabet to its effective quotient.  Public results
(vectors, witnesses) are unchanged; ``use_compiled(False)`` restores the
interpreted AST path for cross-validation and before/after benchmarks.

**Determinism.**  Symbols are always explored in a canonical order
(:func:`symbol_sort_key`) that does not depend on ``PYTHONHASHSEED`` —
``repr`` of a frozenset does, so sorting by ``repr`` (the old behaviour)
made witness words differ across interpreter runs.
"""

from __future__ import annotations

import importlib.util
import marshal
from collections import deque
from contextlib import contextmanager
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from repro import artifacts
from repro._stats import STATS
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import ReproError
from repro.guard import checkpoint_callable, register_span
from repro.logic import pl
from repro.obs import span

State = str
Symbol = Hashable

Vector = frozenset[State]
"""A valuation vector, represented as the set of states valued true."""

_USE_COMPILED = True


def use_compiled(enabled: bool) -> None:
    """Globally enable/disable the compiled engine (on by default)."""
    global _USE_COMPILED
    _USE_COMPILED = bool(enabled)


@contextmanager
def ast_fallback() -> Iterator[None]:
    """Temporarily run all AFA procedures on the interpreted AST path.

    Used by cross-validation tests and the before/after benchmarks; the
    compiled and interpreted paths must agree on every result.
    """
    global _USE_COMPILED
    previous = _USE_COMPILED
    _USE_COMPILED = False
    try:
        yield
    finally:
        _USE_COMPILED = previous


def symbol_sort_key(symbol: Symbol) -> tuple:
    """A canonical, hash-seed-independent sort key for alphabet symbols.

    ``repr`` of a ``frozenset`` enumerates elements in hash order, which
    varies with ``PYTHONHASHSEED`` — any search ordered by it returns
    different (equally valid) witnesses on different runs.  This key orders
    sets by their sorted element keys instead, recursively.
    """
    if isinstance(symbol, (frozenset, set)):
        return (1, tuple(sorted(symbol_sort_key(e) for e in symbol)))
    if isinstance(symbol, tuple):
        return (2, tuple(symbol_sort_key(e) for e in symbol))
    return (0, (type(symbol).__name__, repr(symbol)))


def _canonical_state_name(state) -> str:
    """A deterministic string name for (possibly subset-valued) states.

    ``str(frozenset)`` follows hash-table iteration order, so two *equal*
    frozensets built in different orders can stringify differently — the
    same determinized subset state would then get two distinct names, and
    a transition condition could mention a "state" that is not in the
    state set.  Sets are named by their sorted element names instead.
    """
    if isinstance(state, (frozenset, set)):
        inner = ", ".join(sorted(_canonical_state_name(e) for e in state))
        return "{" + inner + "}"
    if isinstance(state, tuple):
        return "(" + ", ".join(_canonical_state_name(e) for e in state) + ")"
    return str(state)


def _reconstruct(parents: Mapping, node) -> tuple:
    """Rebuild a witness word from BFS parent links.

    ``parents[n]`` is ``(symbol, predecessor)`` or ``None`` at the start
    node; since ``witness(next) = (symbol,) + witness(prev)``, walking the
    chain emits the word front-to-back — O(length), where the old
    tuple-prepend scheme cost O(length²) per BFS branch.
    """
    word: list = []
    link = parents[node]
    while link is not None:
        symbol, node = link
        word.append(symbol)
        link = parents[node]
    return tuple(word)


def _reconstruct_classes(parents: Mapping, node, reps: Sequence[Symbol]) -> tuple:
    """Like :func:`_reconstruct`, for links holding symbol-class indices."""
    word: list = []
    link = parents[node]
    while link is not None:
        idx, node = link
        word.append(reps[idx])
        link = parents[node]
    return tuple(word)


def _class_exprs(gen: "pl._MaskCodegen", keys: Sequence[tuple]) -> list[str]:
    """One fused mask→mask expression per transition-row class.

    ``keys`` are row tuples (one formula per state bit); the expressions
    share hoisted temps through the common ``gen``, so subformulas shared
    across classes evaluate once per BFS iteration.
    """
    for key in keys:
        for formula in key:
            if formula is not pl.FALSE:
                gen.count_refs(formula)
    exprs = []
    for key in keys:
        terms = [
            f"({gen.expr(formula)} << {i})" if i else gen.expr(formula)
            for i, formula in enumerate(key)
            if formula is not pl.FALSE
        ]
        exprs.append(" | ".join(terms) if terms else "0")
    return exprs


def _compile_fn_source(name: str, source: str):
    return compile(source, f"<afa.{name}>", "exec")


def _exec_code(name: str, code) -> Callable:
    namespace: dict = {"_deque": deque}
    exec(code, namespace)
    return namespace[name]


def _exec_source(name: str, lines: list[str]) -> Callable:
    return _exec_code(name, _compile_fn_source(name, "\n".join(lines) + "\n"))


_SEARCHER_CACHE: dict[tuple, tuple[Callable, Callable]] = {}
_DIFF_SEARCHER_CACHE: dict[tuple, Callable] = {}

#: Marshalled code objects are interpreter-version specific; artifacts
#: tagged with a different magic fall back to recompiling stored source.
_BYTECODE_MAGIC = importlib.util.MAGIC_NUMBER.hex()

#: Bumped when the generated searcher source changes shape (v2: ckpt
#: calls carry the visited map for progress telemetry).  Artifacts from
#: an older codegen are regenerated rather than rehydrated.
_CODEGEN_VERSION = 2


def _load_searchers_artifact(cache_key: tuple) -> tuple[Callable, Callable] | None:
    """Rehydrate persisted searchers, or ``None`` to compile from scratch.

    Prefers the marshalled code objects (skips parsing + compiling); a
    magic-number mismatch (store written by another Python version)
    recompiles from the stored source, which is still cheaper than
    regenerating it.  Any malformed payload falls through to a rebuild.
    """
    if not artifacts.enabled():
        return None
    payload = artifacts.load("afa.searchers", cache_key)
    if not isinstance(payload, dict):
        return None
    if payload.get("codegen") != _CODEGEN_VERSION:
        return None
    try:
        if payload.get("magic") == _BYTECODE_MAGIC:
            search_code = marshal.loads(payload["search_code"])
            sweep_code = marshal.loads(payload["sweep_code"])
        else:
            search_code = _compile_fn_source("_search", payload["search_src"])
            sweep_code = _compile_fn_source("_sweep", payload["sweep_src"])
        return _exec_code("_search", search_code), _exec_code("_sweep", sweep_code)
    except Exception:  # noqa: BLE001 - corrupt artifact: recompile instead
        return None


def _compile_searchers(engine: "_CompiledAFA") -> tuple[Callable, Callable]:
    """Generate the whole witness-search / sweep BFS as single functions.

    Inlining every transition row into the loop body removes all per-step
    Python function calls — the search runs as one compiled code object
    over int bitsets.  Parent links store the symbol-*class index*;
    :func:`_reconstruct_classes` maps them back to representative symbols.

    Generated functions depend only on the state order and the interned
    row formulas, so they are cached globally — rebuilding the same AFA
    (e.g. one ``to_afa`` per analysis call) reuses the compiled search.
    When an artifact store is in scope the source and marshalled code
    objects also persist under a content fingerprint of that same key,
    so a *cold process* skips codegen (and, same interpreter version,
    parsing/compilation) for engines any prior run ever compiled.
    """
    cache_key = (
        engine.order,
        tuple(engine.row_keys[rep] for rep in engine.reps),
    )
    cached = _SEARCHER_CACHE.get(cache_key)
    if cached is not None:
        STATS.compile_cache_hits += 1
        return cached
    restored = _load_searchers_artifact(cache_key)
    if restored is not None:
        STATS.compile_cache_hits += 1
        _SEARCHER_CACHE[cache_key] = restored
        return restored
    STATS.compile_cache_misses += 1
    gen = pl._MaskCodegen(engine.index)
    exprs = _class_exprs(gen, [engine.row_keys[rep] for rep in engine.reps])
    temps = ["    " + line for line in gen.lines]

    # The guard checkpoint is batched: one callback per 256 pops (plus one
    # on entry, so tiny searches still hit a checkpoint) — the masked test
    # is the only per-iteration overhead, preserving the compiled speedup.
    search = [
        "def _search(start, accepting, initial, ckpt):",
        "    parents = {start: None}",
        "    queue = _deque((start,))",
        "    append = queue.append",
        "    popleft = queue.popleft",
        "    n = 0",
        "    ckpt(0, queue, parents)",
        "    while queue:",
        "        v = popleft()",
        "        n += 1",
        "        if not n & 255:",
        "            ckpt(n, queue, parents)",
        *temps,
    ]
    sweep = [
        "def _sweep(start, ckpt):",
        "    parents = {start: None}",
        "    queue = _deque((start,))",
        "    append = queue.append",
        "    popleft = queue.popleft",
        "    n = 0",
        "    ckpt(0, queue, parents)",
        "    while queue:",
        "        v = popleft()",
        "        n += 1",
        "        if not n & 255:",
        "            ckpt(n, queue, parents)",
        *temps,
    ]
    for idx, expr in enumerate(exprs):
        search += [
            f"        nxt = {expr}",
            "        if nxt not in parents:",
            f"            parents[nxt] = ({idx}, v)",
            "            if initial(nxt) == accepting:",
            "                return parents, nxt, n",
            "            append(nxt)",
        ]
        sweep += [
            f"        nxt = {expr}",
            "        if nxt not in parents:",
            f"            parents[nxt] = ({idx}, v)",
            "            append(nxt)",
        ]
    search.append("    return parents, None, n")
    sweep.append("    return parents, n")
    search_src = "\n".join(search) + "\n"
    sweep_src = "\n".join(sweep) + "\n"
    search_code = _compile_fn_source("_search", search_src)
    sweep_code = _compile_fn_source("_sweep", sweep_src)
    built = _exec_code("_search", search_code), _exec_code("_sweep", sweep_code)
    _SEARCHER_CACHE[cache_key] = built
    if artifacts.enabled():
        artifacts.store(
            "afa.searchers",
            cache_key,
            {
                "magic": _BYTECODE_MAGIC,
                "codegen": _CODEGEN_VERSION,
                "search_src": search_src,
                "sweep_src": sweep_src,
                "search_code": marshal.dumps(search_code),
                "sweep_code": marshal.dumps(sweep_code),
            },
            meta={"states": len(engine.order), "classes": len(engine.reps)},
        )
    return built


def generic_search(
    rows: Sequence[tuple[int, Callable[[int], int]]],
    start: int,
    accepting: bool | None,
    initial: Callable[[int], bool],
    ckpt: Callable[..., None],
    seed: tuple[dict, Iterable[int]] | None = None,
) -> tuple[dict, int | None, int]:
    """Interpreted BFS over parameterized transition rows.

    Same contract as the generated ``_search`` / ``_sweep`` (parent links
    carry the symbol-*class index* paired with each row; returns
    ``(parents, hit_or_None, n)``, with ``accepting=None`` meaning a full
    sweep) but taking the per-class row callables as data instead of
    code-generating the loop body.  :mod:`repro.delta` uses it to re-check
    an edited automaton over *patched* rows without paying searcher
    codegen, and to resume a budget-tripped search: ``seed`` supplies a
    previously captured ``(parents, frontier)`` so exploration continues
    from the surviving frontier instead of the start vector.  Seeded nodes
    were already tested at their original insertion, so only newly
    discovered vectors are tested here — identical to what the generated
    search would have done had it not tripped.
    """
    if seed is None:
        parents: dict = {start: None}
        queue = deque((start,))
    else:
        parents, frontier = seed
        # A deque seed is adopted in place (not copied) so the caller's
        # reference tracks the live frontier across a guard trip.
        queue = frontier if isinstance(frontier, deque) else deque(frontier)
        if not parents:
            parents[start] = None
            queue.append(start)
    n = 0
    append = queue.append
    popleft = queue.popleft
    ckpt(0, queue, parents)
    while queue:
        v = popleft()
        n += 1
        if not n & 255:
            try:
                ckpt(n, queue, parents)
            except BaseException:
                # A guard trip between pop and expansion would silently
                # lose v's expansions; requeue it so a seeded resume
                # from (parents, queue) is complete.
                queue.appendleft(v)
                raise
        for idx, row in rows:
            nxt = row(v)
            if nxt not in parents:
                parents[nxt] = (idx, v)
                if accepting is not None and initial(nxt) == accepting:
                    return parents, nxt, n
                append(nxt)
    return parents, None, n


def _compile_diff_search(
    mine: "_CompiledAFA", theirs: "_CompiledAFA"
) -> tuple[Callable, tuple[Symbol, ...]]:
    """Generate the joint difference-witness BFS over mask *pairs*.

    Symbol dedup here is joint: two symbols collapse only when they induce
    identical rows in *both* automata.  Both automata's rows inline into
    one loop body (argument ``v`` / temps ``a*`` for ``mine``, ``w`` /
    ``b*`` for ``theirs``).
    """
    seen: set[tuple] = set()
    reps: list[Symbol] = []
    keys_mine: list[tuple] = []
    keys_theirs: list[tuple] = []
    for symbol in mine.symbols:
        key = (mine.row_keys[symbol], theirs.row_keys[symbol])
        if key in seen:
            continue
        seen.add(key)
        reps.append(symbol)
        keys_mine.append(key[0])
        keys_theirs.append(key[1])
    cache_key = (
        mine.order,
        theirs.order,
        tuple(zip(keys_mine, keys_theirs)),
    )
    cached = _DIFF_SEARCHER_CACHE.get(cache_key)
    if cached is not None:
        STATS.compile_cache_hits += 1
        return cached, tuple(reps)
    STATS.compile_cache_misses += 1
    gen_a = pl._MaskCodegen(mine.index, arg="v", prefix="a")
    gen_b = pl._MaskCodegen(theirs.index, arg="w", prefix="b")
    exprs_a = _class_exprs(gen_a, keys_mine)
    exprs_b = _class_exprs(gen_b, keys_theirs)
    lines = [
        "def _dsearch(start, ia, ib, ckpt):",
        "    parents = {start: None}",
        "    queue = _deque((start,))",
        "    append = queue.append",
        "    popleft = queue.popleft",
        "    n = 0",
        "    ckpt(0, queue, parents)",
        "    while queue:",
        "        pair = popleft()",
        "        n += 1",
        "        if not n & 255:",
        "            ckpt(n, queue, parents)",
        "        v, w = pair",
        "        if ia(v) != ib(w):",
        "            return parents, pair, n",
        *("    " + line for line in gen_a.lines),
        *("    " + line for line in gen_b.lines),
    ]
    for idx, (ea, eb) in enumerate(zip(exprs_a, exprs_b)):
        lines += [
            f"        nxt = ({ea}, {eb})",
            "        if nxt not in parents:",
            f"            parents[nxt] = ({idx}, pair)",
            "            append(nxt)",
        ]
    lines.append("    return parents, None, n")
    fn = _exec_source("_dsearch", lines)
    _DIFF_SEARCHER_CACHE[cache_key] = fn
    return fn, tuple(reps)


class _CompiledAFA:
    """The compiled evaluation engine behind an :class:`AFA`.

    Built once per automaton and cached; holds the state→bit mapping, the
    per-symbol compiled transition rows, and the symbol quotient (one
    representative per class of symbols with identical rows).
    """

    __slots__ = (
        "order",
        "index",
        "final_mask",
        "initial_fn",
        "symbols",
        "row_keys",
        "rep_of",
        "reps",
        "rows",
        "rep_rows",
        "_search_fn",
        "_sweep_fn",
        "_diff_cache",
    )

    def __init__(self, afa: "AFA") -> None:
        self.order: tuple[State, ...] = tuple(sorted(afa.states))
        self.index: dict[State, int] = {s: i for i, s in enumerate(self.order)}
        self.final_mask = 0
        for state in afa.finals:
            self.final_mask |= 1 << self.index[state]
        self.initial_fn = pl.compile_mask(afa.initial_condition, self.index)
        self.symbols: tuple[Symbol, ...] = tuple(
            sorted(afa.alphabet, key=symbol_sort_key)
        )
        # Group symbols by transition row (tuple of interned formulas, one
        # per state): identical rows induce identical pre_step functions,
        # so only one representative per class needs exploring.  The
        # quotient (rep_of / reps) persists as a job-scoped artifact:
        # slot keys rely on the procedures deriving their automata
        # deterministically, so a stored quotient with matching state
        # order and alphabet describes this same automaton, and only one
        # row tuple per *class* (instead of per symbol) must be built.
        self.row_keys: dict[Symbol, tuple] = {}
        self.rep_of: dict[Symbol, Symbol] = {}
        self.rows: dict[Symbol, Callable[[int], int]] = {}
        slot = artifacts.slot("afa.quotient")
        quotient = self._valid_quotient(
            artifacts.load("afa.quotient", slot) if slot is not None else None
        )
        if quotient is not None:
            self.rep_of = dict(quotient["rep_of"])
            self.reps: tuple[Symbol, ...] = tuple(quotient["reps"])
            rows_by_rep = {
                rep: tuple(
                    afa.transitions.get((state, rep), pl.FALSE)
                    for state in self.order
                )
                for rep in self.reps
            }
            for symbol in self.symbols:
                self.row_keys[symbol] = rows_by_rep[self.rep_of[symbol]]
            class_items = [(rows_by_rep[rep], rep) for rep in self.reps]
        else:
            classes: dict[tuple, Symbol] = {}
            for symbol in self.symbols:
                key = tuple(
                    afa.transitions.get((state, symbol), pl.FALSE)
                    for state in self.order
                )
                self.row_keys[symbol] = key
                rep = classes.setdefault(key, symbol)
                self.rep_of[symbol] = rep
            self.reps = tuple(classes.values())
            class_items = list(classes.items())
            if slot is not None:
                artifacts.store(
                    "afa.quotient",
                    slot,
                    {
                        "order": self.order,
                        "symbols": self.symbols,
                        "rep_of": self.rep_of,
                        "reps": self.reps,
                    },
                    meta={"classes": len(self.reps)},
                )
        for key, rep in class_items:
            self.rows[rep] = pl.compile_row(
                (
                    (1 << i, formula)
                    for i, formula in enumerate(key)
                    if formula is not pl.FALSE
                ),
                self.index,
            )
        self.rep_rows: tuple[tuple[Symbol, Callable[[int], int]], ...] = tuple(
            (rep, self.rows[rep]) for rep in self.reps
        )
        self._search_fn: Callable | None = None
        self._sweep_fn: Callable | None = None
        self._diff_cache: dict["_CompiledAFA", tuple[Callable, tuple]] = {}
        STATS.afa_compilations += 1
        STATS.alphabet_symbols += len(self.symbols)
        STATS.symbol_classes += len(self.reps)

    def _valid_quotient(self, payload) -> dict | None:
        """``payload`` if it is a quotient applicable here, else ``None``.

        The state order and alphabet must match exactly, every symbol
        must be classified, and every class representative must name an
        actual symbol — anything else (staleness, corruption, a slot
        collision) silently recomputes the quotient from scratch.
        """
        if not isinstance(payload, dict):
            return None
        try:
            if payload["order"] != self.order:
                return None
            if payload["symbols"] != self.symbols:
                return None
            rep_of = payload["rep_of"]
            reps = payload["reps"]
            universe = set(self.symbols)
            if set(rep_of) != universe or not universe.issuperset(reps):
                return None
            if set(rep_of.values()) != set(reps):
                return None
        except (KeyError, TypeError, AttributeError):
            return None
        return payload

    def searcher(self) -> Callable:
        """The generated witness-search BFS (built on first use)."""
        if self._search_fn is None:
            self._search_fn, self._sweep_fn = _compile_searchers(self)
        return self._search_fn

    def sweeper(self) -> Callable:
        """The generated full-sweep BFS (built on first use)."""
        if self._sweep_fn is None:
            self._search_fn, self._sweep_fn = _compile_searchers(self)
        return self._sweep_fn

    def diff_searcher(
        self, theirs: "_CompiledAFA"
    ) -> tuple[Callable, tuple[Symbol, ...]]:
        """The generated pair-BFS against ``theirs`` (cached per partner)."""
        cached = self._diff_cache.get(theirs)
        if cached is None:
            cached = _compile_diff_search(self, theirs)
            self._diff_cache[theirs] = cached
        return cached

    def pre_step(self, mask: int, symbol: Symbol) -> int:
        """``V_{a·w}`` from ``V_w``, both as int bitsets."""
        STATS.pre_steps += 1
        return self.rows[self.rep_of[symbol]](mask)

    def to_vector(self, mask: int) -> Vector:
        return frozenset(s for i, s in enumerate(self.order) if mask >> i & 1)

    def to_mask(self, vector: Iterable[State]) -> int:
        mask = 0
        for state in vector:
            mask |= 1 << self.index[state]
        return mask


def patch_engine(
    base: "_CompiledAFA", afa: "AFA", dirty_states: Iterable[State]
) -> "_CompiledAFA | None":
    """A compiled engine for ``afa`` reusing ``base``'s row closures.

    Applicable when ``afa`` has the same state order and alphabet as the
    engine ``base`` was compiled for and its transition formulas differ
    from ``base``'s only on the AFA states in ``dirty_states`` (the
    *support* of the edit); returns ``None`` when the layouts diverge.
    Each transition-row bit depends only on its own state's formula, so a
    patched row is ``(base_row(v) & clean) | patch(v)`` where ``patch``
    compiles just the dirty states' formulas — per-class compile cost is
    proportional to the edit, not to the automaton.  The symbol quotient
    is refined the same way: symbols sharing a base class split only when
    their dirty-state formulas differ.
    """
    order = tuple(sorted(afa.states))
    if order != base.order:
        return None
    symbols = tuple(sorted(afa.alphabet, key=symbol_sort_key))
    if symbols != base.symbols:
        return None
    index = base.index
    dirty = [s for s in order if s in set(dirty_states)]
    dirty_idx = [index[s] for s in dirty]
    clean = (1 << len(order)) - 1
    for i in dirty_idx:
        clean &= ~(1 << i)

    engine = object.__new__(_CompiledAFA)
    engine.order = order
    engine.index = index
    engine.final_mask = 0
    for state in afa.finals:
        engine.final_mask |= 1 << index[state]
    engine.initial_fn = pl.compile_mask(afa.initial_condition, index)
    engine.symbols = symbols
    engine.row_keys = {}
    engine.rep_of = {}
    engine.rows = {}
    # Two-level quotient: symbols with the same base class and the same
    # dirty-state patch provably share a row, so the (long) full row key
    # is built and hashed once per *group*, not once per symbol.  Groups
    # whose patched keys coincide anyway (base rows differed only on now
    # overridden dirty states) still merge through ``classes``, keeping
    # the quotient exact — and stopping class-count drift across chained
    # patches.
    classes: dict[tuple, Symbol] = {}
    patch_keys: dict[Symbol, tuple] = {}
    key_of_rep: dict[Symbol, tuple] = {}
    group_rep: dict[tuple, Symbol] = {}
    for symbol in symbols:
        patch = tuple(
            afa.transitions.get((state, symbol), pl.FALSE) for state in dirty
        )
        rep = group_rep.get((base.rep_of[symbol], patch))
        if rep is None:
            key = list(base.row_keys[symbol])
            for j, i in enumerate(dirty_idx):
                key[i] = patch[j]
            full_key = tuple(key)
            rep = classes.setdefault(full_key, symbol)
            if rep is symbol:
                patch_keys[rep] = patch
                key_of_rep[rep] = full_key
            group_rep[(base.rep_of[symbol], patch)] = rep
        engine.rep_of[symbol] = rep
        engine.row_keys[symbol] = key_of_rep[rep]
    engine.reps = tuple(classes.values())
    for rep in engine.reps:
        base_row = base.rows[base.rep_of[rep]]
        patch_row = pl.compile_row(
            (
                (1 << i, formula)
                for i, formula in zip(dirty_idx, patch_keys[rep])
                if formula is not pl.FALSE
            ),
            index,
        )
        engine.rows[rep] = _patched_row(base_row, clean, patch_row)
    engine.rep_rows = tuple((rep, engine.rows[rep]) for rep in engine.reps)
    engine._search_fn = None
    engine._sweep_fn = None
    engine._diff_cache = {}
    STATS.afa_engine_patches += 1
    STATS.alphabet_symbols += len(engine.symbols)
    STATS.symbol_classes += len(engine.reps)
    return engine


def _patched_row(
    base_row: Callable[[int], int], clean: int, patch_row: Callable[[int], int]
) -> Callable[[int], int]:
    def row(v: int) -> int:
        return (base_row(v) & clean) | patch_row(v)

    return row


class AFA:
    """An alternating finite automaton with boolean transition conditions.

    ``transitions[(q, a)]`` is a propositional formula over state names;
    a missing entry means ``false`` (the run from ``q`` rejects on ``a``).
    ``initial_condition`` is a formula over state names evaluated on the
    full-word vector; for a conventional AFA it is a single state variable.
    """

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[tuple[State, Symbol], pl.Formula],
        initial_condition: pl.Formula,
        finals: Iterable[State],
    ) -> None:
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.transitions = dict(transitions)
        self.initial_condition = initial_condition
        self.finals = frozenset(finals)
        self._engine_cache: _CompiledAFA | None = None
        if not self.finals <= self.states:
            raise ReproError("final states must be states")
        for (state, symbol), formula in self.transitions.items():
            if state not in self.states:
                raise ReproError(f"transition from unknown state {state!r}")
            if symbol not in self.alphabet:
                raise ReproError(f"transition on unknown symbol {symbol!r}")
            stray = formula.variables() - self.states
            if stray:
                raise ReproError(
                    f"transition condition mentions non-states {sorted(stray)}"
                )
        stray = initial_condition.variables() - self.states
        if stray:
            raise ReproError(f"initial condition mentions non-states {sorted(stray)}")

    @classmethod
    def _from_validated(
        cls,
        states: frozenset,
        alphabet: frozenset,
        transitions: dict,
        initial_condition: pl.Formula,
        finals: frozenset,
    ) -> "AFA":
        """Construct without re-validating, for derived automata.

        ``__init__`` checks every transition formula against the state
        set — linear in the whole automaton, which defeats incremental
        construction (:func:`repro.core.pl_semantics.to_afa_incremental`
        splices a few recomputed rows into an already-validated base).
        Callers own the arguments: all five must already satisfy the
        ``__init__`` invariants, and the dicts/frozensets are stored
        as-is, not copied.
        """
        afa = object.__new__(cls)
        afa.states = states
        afa.alphabet = alphabet
        afa.transitions = transitions
        afa.initial_condition = initial_condition
        afa.finals = finals
        afa._engine_cache = None
        return afa

    def __getstate__(self) -> dict:
        # The compiled engine holds exec()-generated closures, which cannot
        # be pickled; drop it so automata round-trip through worker
        # processes (the receiver recompiles on first use).
        state = self.__dict__.copy()
        state["_engine_cache"] = None
        return state

    def _engine(self) -> _CompiledAFA:
        """The compiled engine, built on first use."""
        engine = self._engine_cache
        if engine is None:
            with span(
                "afa.compile",
                states=len(self.states),
                alphabet=len(self.alphabet),
            ) as sp:
                engine = _CompiledAFA(self)
                sp.set(symbol_classes=len(engine.reps))
            self._engine_cache = engine
        return engine

    def _symbol_order(self) -> list[Symbol]:
        """The full alphabet in canonical (hash-seed-independent) order."""
        return sorted(self.alphabet, key=symbol_sort_key)

    # -- backward semantics -----------------------------------------------------------

    def empty_word_vector(self) -> Vector:
        """``V_ε``: exactly the final states are true."""
        return frozenset(self.finals)

    def pre_step(self, vector: Vector, symbol: Symbol) -> Vector:
        """``V_{a·w}`` from ``V_w``: evaluate every transition condition."""
        if _USE_COMPILED:
            engine = self._engine()
            return engine.to_vector(engine.pre_step(engine.to_mask(vector), symbol))
        return self._pre_step_ast(vector, symbol)

    def _pre_step_ast(self, vector: Vector, symbol: Symbol) -> Vector:
        """Interpreted reference implementation (per-state AST recursion)."""
        STATS.pre_steps += 1
        return frozenset(
            state
            for state in self.states
            if self.transitions.get((state, symbol), pl.FALSE).evaluate(vector)
        )

    def vector_for(self, word: Sequence[Symbol]) -> Vector:
        """The valuation vector of a word (computed suffix-first)."""
        if _USE_COMPILED:
            engine = self._engine()
            mask = engine.to_mask(self.finals)
            for symbol in reversed(word):
                mask = engine.pre_step(mask, symbol)
            return engine.to_vector(mask)
        vector = self.empty_word_vector()
        for symbol in reversed(word):
            vector = self._pre_step_ast(vector, symbol)
        return vector

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Language membership."""
        if _USE_COMPILED:
            engine = self._engine()
            mask = engine.to_mask(self.finals)
            for symbol in reversed(word):
                mask = engine.pre_step(mask, symbol)
            return engine.initial_fn(mask)
        return self.initial_condition.evaluate(self.vector_for(word))

    # -- decision procedures -------------------------------------------------------------

    def reachable_vectors(self) -> dict[Vector, tuple[Symbol, ...]]:
        """All vectors reachable from ``V_ε``, with a witness suffix each.

        The witness of vector ``V`` is a word ``w`` with ``V_w = V``.  The
        search is breadth-first, so witnesses are shortest; only one symbol
        per transition-row class is explored (identical rows cannot reach
        new vectors), so witnesses use class representatives.
        """
        with span(
            "afa.reachable_vectors",
            compiled=_USE_COMPILED,
            states=len(self.states),
        ) as sp:
            vectors = self._reachable_vectors_impl()
            sp.set(vectors=len(vectors))
            return vectors

    def _reachable_vectors_impl(self) -> dict[Vector, tuple[Symbol, ...]]:
        ckpt = checkpoint_callable("afa.reachable_vectors")
        if _USE_COMPILED:
            engine = self._engine()
            parents, popped = engine.sweeper()(engine.to_mask(self.finals), ckpt)
            STATS.vectors_explored += popped
            STATS.pre_steps += popped * len(engine.reps)
            reps = engine.reps
            return {
                engine.to_vector(m): _reconstruct_classes(parents, m, reps)
                for m in parents
            }
        start = self.empty_word_vector()
        parents_v: dict[Vector, tuple[Symbol, Vector] | None] = {start: None}
        queue_v: deque[Vector] = deque([start])
        order = self._symbol_order()
        n = 0
        ckpt(0, queue_v, parents_v)
        while queue_v:
            vector = queue_v.popleft()
            STATS.vectors_explored += 1
            n += 1
            ckpt(n, queue_v, parents_v)
            for symbol in order:
                nxt = self._pre_step_ast(vector, symbol)
                if nxt not in parents_v:
                    parents_v[nxt] = (symbol, vector)
                    queue_v.append(nxt)
        return {v: _reconstruct(parents_v, v) for v in parents_v}

    def is_empty(self) -> bool:
        """Emptiness via vector reachability."""
        return self.accepting_witness() is None

    def accepting_witness(self) -> tuple[Symbol, ...] | None:
        """A word in the language, or ``None`` when empty.

        Explores vectors breadth-first and stops at the first vector that
        satisfies the initial condition, so the witness is of minimal
        length among the BFS layers explored.
        """
        return self._search_witness(accepting=True)

    def rejecting_witness(self) -> tuple[Symbol, ...] | None:
        """A word *not* in the language, or ``None`` when L = Σ*.

        The dual of :meth:`accepting_witness` over the same vector space;
        used by PL validation with output ``false``.
        """
        return self._search_witness(accepting=False)

    def _search_witness(self, accepting: bool) -> tuple[Symbol, ...] | None:
        with span(
            "afa.search_witness",
            accepting=accepting,
            compiled=_USE_COMPILED,
            states=len(self.states),
        ) as sp:
            witness = self._search_witness_impl(accepting)
            sp.set(
                found=witness is not None,
                witness_length=None if witness is None else len(witness),
            )
            return witness

    def _search_witness_impl(self, accepting: bool) -> tuple[Symbol, ...] | None:
        ckpt = checkpoint_callable("afa.search_witness")
        if _USE_COMPILED:
            engine = self._engine()
            start = engine.to_mask(self.finals)
            if engine.initial_fn(start) == accepting:
                return ()
            parents, hit, popped = engine.searcher()(
                start, accepting, engine.initial_fn, ckpt
            )
            STATS.vectors_explored += popped
            STATS.pre_steps += popped * len(engine.reps)
            if hit is None:
                return None
            return _reconstruct_classes(parents, hit, engine.reps)
        start = self.empty_word_vector()
        if self.initial_condition.evaluate(start) == accepting:
            return ()
        parents_v: dict[Vector, tuple[Symbol, Vector] | None] = {start: None}
        queue_v: deque[Vector] = deque([start])
        order = self._symbol_order()
        n = 0
        ckpt(0, queue_v, parents_v)
        while queue_v:
            vector = queue_v.popleft()
            STATS.vectors_explored += 1
            n += 1
            ckpt(n, queue_v, parents_v)
            for symbol in order:
                nxt = self._pre_step_ast(vector, symbol)
                if nxt in parents_v:
                    continue
                parents_v[nxt] = (symbol, vector)
                if self.initial_condition.evaluate(nxt) == accepting:
                    return _reconstruct(parents_v, nxt)
                queue_v.append(nxt)
        return None

    def to_dfa(self) -> DFA:
        """The *reverse-deterministic* DFA over valuation vectors.

        Vectors are states; reading symbol ``a`` maps ``V_w`` to ``V_{a·w}``
        — i.e. this DFA reads words **reversed**.  It accepts reverse(L):
        a word ``w`` is in L(self) iff ``reversed(w)`` is accepted here.
        The DFA stays over the *full* alphabet (every symbol of a collapsed
        class gets its representative's transitions).
        """
        witnesses = self.reachable_vectors()
        vectors = set(witnesses)
        transitions: dict[tuple[Vector, Symbol], Vector] = {}
        for vector in vectors:
            for symbol in self.alphabet:
                transitions[(vector, symbol)] = self.pre_step(vector, symbol)
        finals = {
            vector
            for vector in vectors
            if self.initial_condition.evaluate(vector)
        }
        return DFA(vectors, self.alphabet, transitions, self.empty_word_vector(), finals)

    def to_nfa(self) -> NFA:
        """An NFA for the (forward) language, via reversing :meth:`to_dfa`."""
        reverse_dfa = self.to_dfa()
        transitions: dict[tuple[Vector, Symbol | None], set[Vector]] = {}
        for (source, symbol), target in reverse_dfa.transitions.items():
            transitions.setdefault((target, symbol), set()).add(source)
        return NFA(
            reverse_dfa.states,
            reverse_dfa.alphabet,
            {k: frozenset(v) for k, v in transitions.items()},
            reverse_dfa.finals,
            {reverse_dfa.initial},
        )

    def equivalent_to(self, other: "AFA") -> bool:
        """Language equivalence via the product of vector spaces.

        Runs a joint BFS over pairs of vectors; the automata differ iff
        some reachable pair disagrees on the initial conditions.
        """
        if self.alphabet != other.alphabet:
            raise ReproError("equivalence requires identical alphabets")
        return self.difference_witness(other) is None

    def difference_witness(self, other: "AFA") -> tuple[Symbol, ...] | None:
        """A word accepted by exactly one of the two automata, or ``None``.

        Symbol dedup is *joint*: two symbols collapse only when they induce
        identical transition rows in both automata.
        """
        if self.alphabet != other.alphabet:
            raise ReproError("comparison requires identical alphabets")
        with span(
            "afa.difference_witness",
            compiled=_USE_COMPILED,
            states=len(self.states) + len(other.states),
        ) as sp:
            witness = self._difference_witness_impl(other)
            sp.set(
                found=witness is not None,
                witness_length=None if witness is None else len(witness),
            )
            return witness

    def _difference_witness_impl(self, other: "AFA") -> tuple[Symbol, ...] | None:
        ckpt = checkpoint_callable("afa.difference_witness")
        if _USE_COMPILED:
            mine_e, theirs_e = self._engine(), other._engine()
            dsearch, reps = mine_e.diff_searcher(theirs_e)
            start = (mine_e.to_mask(self.finals), theirs_e.to_mask(other.finals))
            parents, hit, popped = dsearch(
                start, mine_e.initial_fn, theirs_e.initial_fn, ckpt
            )
            STATS.vectors_explored += popped
            STATS.pre_steps += popped * 2 * len(reps)
            if hit is None:
                return None
            return _reconstruct_classes(parents, hit, reps)
        start_v = (self.empty_word_vector(), other.empty_word_vector())
        parents_v: dict[tuple[Vector, Vector], tuple | None] = {start_v: None}
        queue_v: deque[tuple[Vector, Vector]] = deque([start_v])
        order = self._symbol_order()
        n = 0
        ckpt(0, queue_v, parents_v)
        while queue_v:
            pair_v = queue_v.popleft()
            mine_v, theirs_v = pair_v
            STATS.vectors_explored += 1
            n += 1
            ckpt(n, queue_v, parents_v)
            if self.initial_condition.evaluate(mine_v) != other.initial_condition.evaluate(
                theirs_v
            ):
                return _reconstruct(parents_v, pair_v)
            for symbol in order:
                nxt_v = (
                    self._pre_step_ast(mine_v, symbol),
                    other._pre_step_ast(theirs_v, symbol),
                )
                if nxt_v not in parents_v:
                    parents_v[nxt_v] = (symbol, pair_v)
                    queue_v.append(nxt_v)
        return None

    @classmethod
    def from_nfa(cls, nfa: NFA) -> "AFA":
        """Encode an NFA as an AFA (disjunctive transition conditions).

        The NFA must be ε-free; eliminate ε-transitions by determinizing
        first if needed.
        """
        with span(
            "afa.from_nfa",
            nfa_states=len(nfa.states),
            alphabet=len(nfa.alphabet),
        ):
            return cls._from_nfa_impl(nfa)

    @classmethod
    def _from_nfa_impl(cls, nfa: NFA) -> "AFA":
        for (_state, symbol) in nfa.transitions:
            if symbol is None:
                raise ReproError("from_nfa requires an ε-free NFA")
        name = _canonical_state_name
        states = {name(s) for s in nfa.states}
        if len(states) != len(nfa.states):
            raise ReproError("NFA state names collide after str()")
        transitions: dict[tuple[State, Symbol], pl.Formula] = {}
        for (source, symbol), targets in nfa.transitions.items():
            transitions[(name(source), symbol)] = pl.disjoin(
                pl.Var(t) for t in sorted(name(t) for t in targets)
            )
        initial = pl.disjoin(pl.Var(s) for s in sorted(name(s) for s in nfa.initials))
        return cls(states, nfa.alphabet, transitions, initial, {name(s) for s in nfa.finals})

    def __repr__(self) -> str:
        return (
            f"AFA(states={len(self.states)}, alphabet={len(self.alphabet)}, "
            f"finals={len(self.finals)})"
        )


register_span(
    "afa.search_witness",
    "AFA accepting/rejecting-witness BFS over valuation vectors",
    "Theorem 4.1(3): SWS(PL, PL) non-emptiness/validation via AFA",
)
register_span(
    "afa.reachable_vectors",
    "AFA full vector-space sweep (to_dfa / reachable_vectors)",
    "Theorem 4.1(3): AFA reachability underlying the PL procedures",
)
register_span(
    "afa.difference_witness",
    "joint pair-BFS over two AFA vector spaces",
    "Theorem 4.1(3): PL equivalence via AFA difference",
)
