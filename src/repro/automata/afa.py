"""Alternating finite automata (boolean automata).

Theorem 4.1(3) ties SWS(PL, PL) to AFA: the PSPACE lower bound on
non-emptiness is by expressing AFA in SWS(PL, PL) "in ptime", and the
upper bound checks non-emptiness "along the same lines as AFA non-emptiness
checking".  This module implements AFA with arbitrary boolean transition
conditions (alternation *and* negation) and the backward valuation-vector
semantics that both AFA decision procedures and the SWS(PL, PL) procedures
in :mod:`repro.core.pl_semantics` share:

For a word ``w`` read *suffix-first*, the valuation vector ``V_w`` assigns
each state ``q`` the truth of "the run from q accepts w".  ``V_ε`` is the
final-state indicator; ``V_{a·w}(q) = δ(q, a)`` evaluated on ``V_w``.  The
automaton accepts ``w`` iff the initial condition evaluates to true on
``V_w``.  Reachability over the (finitely many) vectors decides emptiness
in exponential time / polynomial space — the classical AFA bound.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping, Sequence

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import ReproError
from repro.logic import pl

State = str
Symbol = Hashable

Vector = frozenset[State]
"""A valuation vector, represented as the set of states valued true."""


class AFA:
    """An alternating finite automaton with boolean transition conditions.

    ``transitions[(q, a)]`` is a propositional formula over state names;
    a missing entry means ``false`` (the run from ``q`` rejects on ``a``).
    ``initial_condition`` is a formula over state names evaluated on the
    full-word vector; for a conventional AFA it is a single state variable.
    """

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[tuple[State, Symbol], pl.Formula],
        initial_condition: pl.Formula,
        finals: Iterable[State],
    ) -> None:
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.transitions = dict(transitions)
        self.initial_condition = initial_condition
        self.finals = frozenset(finals)
        if not self.finals <= self.states:
            raise ReproError("final states must be states")
        for (state, symbol), formula in self.transitions.items():
            if state not in self.states:
                raise ReproError(f"transition from unknown state {state!r}")
            if symbol not in self.alphabet:
                raise ReproError(f"transition on unknown symbol {symbol!r}")
            stray = formula.variables() - self.states
            if stray:
                raise ReproError(
                    f"transition condition mentions non-states {sorted(stray)}"
                )
        stray = initial_condition.variables() - self.states
        if stray:
            raise ReproError(f"initial condition mentions non-states {sorted(stray)}")

    # -- backward semantics -----------------------------------------------------------

    def empty_word_vector(self) -> Vector:
        """``V_ε``: exactly the final states are true."""
        return frozenset(self.finals)

    def pre_step(self, vector: Vector, symbol: Symbol) -> Vector:
        """``V_{a·w}`` from ``V_w``: evaluate every transition condition."""
        return frozenset(
            state
            for state in self.states
            if self.transitions.get((state, symbol), pl.FALSE).evaluate(vector)
        )

    def vector_for(self, word: Sequence[Symbol]) -> Vector:
        """The valuation vector of a word (computed suffix-first)."""
        vector = self.empty_word_vector()
        for symbol in reversed(word):
            vector = self.pre_step(vector, symbol)
        return vector

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Language membership."""
        return self.initial_condition.evaluate(self.vector_for(word))

    # -- decision procedures -------------------------------------------------------------

    def reachable_vectors(self) -> dict[Vector, tuple[Symbol, ...]]:
        """All vectors reachable from ``V_ε``, with a witness suffix each.

        The witness of vector ``V`` is a word ``w`` with ``V_w = V``.  The
        search is breadth-first, so witnesses are shortest.
        """
        start = self.empty_word_vector()
        witnesses: dict[Vector, tuple[Symbol, ...]] = {start: ()}
        queue: deque[Vector] = deque([start])
        order = sorted(self.alphabet, key=repr)
        while queue:
            vector = queue.popleft()
            for symbol in order:
                nxt = self.pre_step(vector, symbol)
                if nxt not in witnesses:
                    witnesses[nxt] = (symbol,) + witnesses[vector]
                    queue.append(nxt)
        return witnesses

    def is_empty(self) -> bool:
        """Emptiness via vector reachability."""
        return self.accepting_witness() is None

    def accepting_witness(self) -> tuple[Symbol, ...] | None:
        """A word in the language, or ``None`` when empty.

        Explores vectors breadth-first and stops at the first vector that
        satisfies the initial condition, so the witness is of minimal
        length among the BFS layers explored.
        """
        start = self.empty_word_vector()
        if self.initial_condition.evaluate(start):
            return ()
        witnesses: dict[Vector, tuple[Symbol, ...]] = {start: ()}
        queue: deque[Vector] = deque([start])
        order = sorted(self.alphabet, key=repr)
        while queue:
            vector = queue.popleft()
            for symbol in order:
                nxt = self.pre_step(vector, symbol)
                if nxt in witnesses:
                    continue
                word = (symbol,) + witnesses[vector]
                if self.initial_condition.evaluate(nxt):
                    return word
                witnesses[nxt] = word
                queue.append(nxt)
        return None

    def to_dfa(self) -> DFA:
        """The *reverse-deterministic* DFA over valuation vectors.

        Vectors are states; reading symbol ``a`` maps ``V_w`` to ``V_{a·w}``
        — i.e. this DFA reads words **reversed**.  It accepts reverse(L):
        a word ``w`` is in L(self) iff ``reversed(w)`` is accepted here.
        """
        witnesses = self.reachable_vectors()
        vectors = set(witnesses)
        transitions: dict[tuple[Vector, Symbol], Vector] = {}
        for vector in vectors:
            for symbol in self.alphabet:
                transitions[(vector, symbol)] = self.pre_step(vector, symbol)
        finals = {
            vector
            for vector in vectors
            if self.initial_condition.evaluate(vector)
        }
        return DFA(vectors, self.alphabet, transitions, self.empty_word_vector(), finals)

    def to_nfa(self) -> NFA:
        """An NFA for the (forward) language, via reversing :meth:`to_dfa`."""
        reverse_dfa = self.to_dfa()
        transitions: dict[tuple[Vector, Symbol | None], set[Vector]] = {}
        for (source, symbol), target in reverse_dfa.transitions.items():
            transitions.setdefault((target, symbol), set()).add(source)
        return NFA(
            reverse_dfa.states,
            reverse_dfa.alphabet,
            {k: frozenset(v) for k, v in transitions.items()},
            reverse_dfa.finals,
            {reverse_dfa.initial},
        )

    def equivalent_to(self, other: "AFA") -> bool:
        """Language equivalence via the product of vector spaces.

        Runs a joint BFS over pairs of vectors; the automata differ iff
        some reachable pair disagrees on the initial conditions.
        """
        if self.alphabet != other.alphabet:
            raise ReproError("equivalence requires identical alphabets")
        return self.difference_witness(other) is None

    def difference_witness(self, other: "AFA") -> tuple[Symbol, ...] | None:
        """A word accepted by exactly one of the two automata, or ``None``."""
        if self.alphabet != other.alphabet:
            raise ReproError("comparison requires identical alphabets")
        start = (self.empty_word_vector(), other.empty_word_vector())
        seen: dict[tuple[Vector, Vector], tuple[Symbol, ...]] = {start: ()}
        queue: deque[tuple[Vector, Vector]] = deque([start])
        order = sorted(self.alphabet, key=repr)
        while queue:
            pair = queue.popleft()
            mine, theirs = pair
            word = seen[pair]
            if self.initial_condition.evaluate(mine) != other.initial_condition.evaluate(
                theirs
            ):
                return word
            for symbol in order:
                nxt = (self.pre_step(mine, symbol), other.pre_step(theirs, symbol))
                if nxt not in seen:
                    seen[nxt] = (symbol,) + word
                    queue.append(nxt)
        return None

    @classmethod
    def from_nfa(cls, nfa: NFA) -> "AFA":
        """Encode an NFA as an AFA (disjunctive transition conditions).

        The NFA must be ε-free; eliminate ε-transitions by determinizing
        first if needed.
        """
        for (_state, symbol) in nfa.transitions:
            if symbol is None:
                raise ReproError("from_nfa requires an ε-free NFA")
        states = {str(s) for s in nfa.states}
        if len(states) != len(nfa.states):
            raise ReproError("NFA state names collide after str()")
        transitions: dict[tuple[State, Symbol], pl.Formula] = {}
        for (source, symbol), targets in nfa.transitions.items():
            transitions[(str(source), symbol)] = pl.disjoin(
                pl.Var(str(t)) for t in sorted(targets, key=repr)
            )
        initial = pl.disjoin(pl.Var(str(s)) for s in sorted(nfa.initials, key=repr))
        return cls(states, nfa.alphabet, transitions, initial, {str(s) for s in nfa.finals})

    def __repr__(self) -> str:
        return (
            f"AFA(states={len(self.states)}, alphabet={len(self.alphabet)}, "
            f"finals={len(self.finals)})"
        )
