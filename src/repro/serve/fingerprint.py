"""Deterministic structural fingerprints for problem instances.

The answer cache and the in-flight deduplication of :mod:`repro.serve`
key on *what is being asked*: the decision procedure plus the structure
of its instance.  Python's builtin ``hash`` (and anything derived from
``repr`` of sets/dicts) varies with ``PYTHONHASHSEED`` and with
construction order, so fingerprints are computed over an explicit
canonical form instead:

* unordered containers (sets, dicts, ``DatabaseSchema``, SWS/mediator
  rule maps) are serialized in sorted order;
* ordered containers (tuples of transition targets, CQ atom lists,
  query heads) keep their order — position is semantics there (``A1``
  refers to the first successor);
* subset-valued automaton states reuse the canonical naming discipline
  of :func:`repro.automata.afa.symbol_sort_key` /
  ``_canonical_state_name`` from PR 1, so a determinized DFA fingerprints
  identically however its frozenset states were built;
* ``name`` attributes are **excluded** — they are labels, not structure,
  so renaming a service does not lose its cache entries.

The fingerprint is the SHA-256 of the canonical form, making collisions
between distinct instances negligible; equal fingerprints are treated as
"the same question" by the cache and scheduler.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Mapping

from repro.automata.afa import AFA
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.core.sws import SWS, SynthesisRule, TransitionRule
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import ReproError
from repro.guard import Budget
from repro.logic import fo, pl
from repro.logic.cq import Atom, Comparison, ConjunctiveQuery, LabeledNull
from repro.logic.terms import Constant, Variable
from repro.logic.ucq import UnionQuery
from repro.mediator.mediator import Mediator, MediatorTransitionRule

__all__ = [
    "FingerprintError",
    "SubFingerprints",
    "canonical",
    "fingerprint",
    "job_fingerprint",
    "sub_fingerprints",
]


class FingerprintError(ReproError):
    """Raised for values no canonical form is defined for."""


def _seq(items: Iterable[Any]) -> tuple:
    return tuple(canonical(item) for item in items)


def _sorted_set(items: Iterable[Any]) -> tuple:
    # Canonical forms are heterogeneous trees; repr gives them a total,
    # deterministic order where direct comparison would raise TypeError
    # (e.g. the ε transition label None next to string symbols).
    return tuple(sorted(_seq(items), key=repr))


def _sorted_map(mapping: Mapping[Any, Any]) -> tuple:
    return tuple(
        sorted(
            ((canonical(k), canonical(v)) for k, v in mapping.items()),
            key=repr,
        )
    )


#: Canonical forms of PL nodes, memoized.  Hash-consing makes formulas
#: DAGs with heavy sharing; a plain tree recursion re-expands every
#: shared subformula (exponentially, in the worst case), while the memo
#: keeps the walk linear in DAG size.  Interning also keeps the nodes
#: alive process-wide, so a bounded plain dict is the right cache shape.
_PL_CANON_MEMO: dict[pl.Formula, tuple] = {}
_PL_CANON_MEMO_LIMIT = 200_000


def _pl_formula(formula: pl.Formula) -> tuple:
    cached = _PL_CANON_MEMO.get(formula)
    if cached is not None:
        return cached
    if isinstance(formula, pl.Var):
        result = ("pl.var", formula.name)
    elif isinstance(formula, pl.Const):
        result = ("pl.const", formula.value)
    elif isinstance(formula, pl.Not):
        result = ("pl.not", _pl_formula(formula.operand))
    elif isinstance(formula, pl.And):
        result = ("pl.and", tuple(_pl_formula(op) for op in formula.operands))
    elif isinstance(formula, pl.Or):
        result = ("pl.or", tuple(_pl_formula(op) for op in formula.operands))
    else:
        raise FingerprintError(f"unknown PL node {type(formula).__name__}")
    if len(_PL_CANON_MEMO) >= _PL_CANON_MEMO_LIMIT:
        _PL_CANON_MEMO.clear()
    _PL_CANON_MEMO[formula] = result
    return result


def _fo_formula(formula: fo.FOFormula) -> tuple:
    if isinstance(formula, fo.RelAtom):
        return ("fo.atom", formula.atom.relation, _seq(formula.atom.terms))
    if isinstance(formula, fo.Equals):
        return ("fo.eq", canonical(formula.left), canonical(formula.right))
    if isinstance(formula, fo.NotF):
        return ("fo.not", _fo_formula(formula.operand))
    if isinstance(formula, fo.AndF):
        return ("fo.and", tuple(_fo_formula(op) for op in formula.operands))
    if isinstance(formula, fo.OrF):
        return ("fo.or", tuple(_fo_formula(op) for op in formula.operands))
    if isinstance(formula, (fo.Exists, fo.Forall)):
        tag = "fo.exists" if isinstance(formula, fo.Exists) else "fo.forall"
        return (tag, _seq(formula.variables), _fo_formula(formula.body))
    raise FingerprintError(f"unknown FO node {type(formula).__name__}")


def _transition_rule(rule: TransitionRule) -> tuple:
    # Target order is positional semantics (A1, A2, ... registers).
    return tuple((target, canonical(query)) for target, query in rule.targets)


def _sws(sws: SWS) -> tuple:
    return (
        "sws",
        sws.kind.value,
        _sorted_set(sws.states),
        sws.start,
        tuple(
            sorted(
                (state, _transition_rule(rule))
                for state, rule in sws.transitions.items()
            )
        ),
        tuple(
            sorted(
                (state, canonical(rule.query))
                for state, rule in sws.synthesis.items()
            )
        ),
        canonical(sws.db_schema),
        canonical(sws.input_schema),
        sws.output_arity,
    )


def _mediator(mediator: Mediator) -> tuple:
    return (
        "mediator",
        _sorted_set(mediator.states),
        mediator.start,
        tuple(
            sorted(
                (state, tuple(rule.targets))
                for state, rule in mediator.transitions.items()
            )
        ),
        tuple(
            sorted(
                (state, canonical(rule.query))
                for state, rule in mediator.synthesis.items()
            )
        ),
        tuple(
            sorted(
                (component, canonical(sws))
                for component, sws in mediator.components.items()
            )
        ),
    )


def _afa(afa: AFA) -> tuple:
    return (
        "afa",
        _sorted_set(afa.states),
        _sorted_set(afa.alphabet),
        tuple(
            sorted(
                (((canonical(state), canonical(symbol)), _pl_formula(formula))
                for (state, symbol), formula in afa.transitions.items()),
                key=repr,
            )
        ),
        _pl_formula(afa.initial_condition),
        _sorted_set(afa.finals),
    )


def _nfa(nfa: NFA) -> tuple:
    return (
        "nfa",
        _sorted_set(nfa.states),
        _sorted_set(nfa.alphabet),
        tuple(
            sorted(
                (((canonical(state), canonical(symbol)), _sorted_set(targets))
                for (state, symbol), targets in nfa.transitions.items()),
                key=repr,
            )
        ),
        _sorted_set(nfa.initials),
        _sorted_set(nfa.finals),
    )


def _dfa(dfa: DFA) -> tuple:
    return (
        "dfa",
        _sorted_set(dfa.states),
        _sorted_set(dfa.alphabet),
        tuple(
            sorted(
                (((canonical(state), canonical(symbol)), canonical(target))
                for (state, symbol), target in dfa.transitions.items()),
                key=repr,
            )
        ),
        canonical(dfa.initial),
        _sorted_set(dfa.finals),
    )


def _cq(query: ConjunctiveQuery) -> tuple:
    return (
        "cq",
        _seq(query.head),
        tuple(
            ("atom", atom.relation, _seq(atom.terms)) for atom in query.atoms
        ),
        tuple(
            ("neq" if c.negated else "eq", canonical(c.left), canonical(c.right))
            for c in query.comparisons
        ),
    )


def canonical(value: Any) -> Any:
    """The canonical, order- and hash-seed-independent form of ``value``.

    Returns a tree of primitives and tuples whose ``repr`` is
    deterministic; :func:`fingerprint` hashes that representation.
    Raises :class:`FingerprintError` for values with no defined form.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, (tuple, list)):
        return ("seq", _seq(value))
    if isinstance(value, (set, frozenset)):
        return ("set", _sorted_set(value))
    if isinstance(value, dict):
        return ("map", _sorted_map(value))
    if isinstance(value, pl.Formula):
        return _pl_formula(value)
    if isinstance(value, SWS):
        return _sws(value)
    if isinstance(value, Mediator):
        return _mediator(value)
    if isinstance(value, AFA):
        return _afa(value)
    if isinstance(value, NFA):
        return _nfa(value)
    if isinstance(value, DFA):
        return _dfa(value)
    if isinstance(value, ConjunctiveQuery):
        return _cq(value)
    if isinstance(value, UnionQuery):
        return ("ucq", value.arity, tuple(_cq(d) for d in value.disjuncts))
    if isinstance(value, fo.FOQuery):
        return ("fo.query", _seq(value.head), _fo_formula(value.formula))
    if isinstance(value, fo.FOFormula):
        return _fo_formula(value)
    if isinstance(value, Variable):
        return ("var", value.name)
    if isinstance(value, Constant):
        return ("const", type(value.value).__name__, repr(value.value))
    if isinstance(value, LabeledNull):
        return ("null", value.label)
    if isinstance(value, Atom):
        return ("atom", value.relation, _seq(value.terms))
    if isinstance(value, Comparison):
        return (
            "neq" if value.negated else "eq",
            canonical(value.left),
            canonical(value.right),
        )
    if isinstance(value, RelationSchema):
        return ("rschema", value.name, tuple(value.attributes))
    if isinstance(value, DatabaseSchema):
        return ("dschema", tuple(sorted((n, canonical(r)) for n, r in value.items())))
    if isinstance(value, Relation):
        return ("relation", canonical(value.schema), _sorted_set(value.rows))
    if isinstance(value, Database):
        return (
            "database",
            canonical(value.schema),
            tuple(sorted((n, canonical(value[n])) for n in value.schema)),
        )
    if isinstance(value, InputSequence):
        return (
            "input",
            canonical(value.schema),
            tuple(canonical(message) for message in value),
        )
    if isinstance(value, Budget):
        # Budgets never enter fingerprints (a decided answer does not
        # depend on the budget it was computed under), but give them a
        # canonical form so job *labels* can include them.
        return ("budget", tuple(sorted(value.as_dict().items())))
    raise FingerprintError(
        f"no canonical form for {type(value).__name__}; "
        "register one in repro.serve.fingerprint"
    )


def fingerprint(value: Any) -> str:
    """SHA-256 hex digest of ``value``'s canonical form."""
    return hashlib.sha256(repr(canonical(value)).encode("utf-8")).hexdigest()


#: Per-state digest memo.  ``TransitionRule``/``SynthesisRule`` are frozen
#: dataclasses over hash-consed formulas, so edited copies of a service
#: share rule *objects* for untouched states and their digests hash-match
#: here without re-canonicalizing the rules.
_STATE_DIGEST_MEMO: dict[tuple[TransitionRule, SynthesisRule], str] = {}
_STATE_DIGEST_MEMO_LIMIT = 100_000


def _digest(payload: Any) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


class SubFingerprints:
    """Merkle decomposition of an SWS fingerprint.

    ``states`` maps each state to the digest of its local rules
    (transition rule + synthesis rule); ``globals_digest`` covers
    everything that is not local to one state (kind, state set, start
    state, schemas, output arity).  ``root`` hashes the two layers
    together, so two instances have equal roots exactly when they have
    equal :func:`fingerprint`\\ s (up to SHA-256 collisions) — and a diff
    of two trees localizes *which* states changed without comparing
    canonical forms rule by rule.
    """

    __slots__ = ("root", "globals_digest", "states")

    def __init__(self, root: str, globals_digest: str, states: Mapping[str, str]):
        self.root = root
        self.globals_digest = globals_digest
        self.states = dict(states)

    def changed_states(self, other: "SubFingerprints") -> frozenset[str]:
        """States whose local digest differs (or exists on one side only)."""
        mine, theirs = self.states, other.states
        changed = {
            state
            for state in mine.keys() | theirs.keys()
            if mine.get(state) != theirs.get(state)
        }
        return frozenset(changed)


def sub_fingerprints(sws: SWS) -> SubFingerprints:
    """Per-state Merkle tree over ``sws``'s canonical form."""
    if not isinstance(sws, SWS):
        raise FingerprintError(
            f"sub_fingerprints is defined for SWS instances, not {type(sws).__name__}"
        )
    states: dict[str, str] = {}
    for state in sws.states:
        rule = sws.transitions[state]
        synth = sws.synthesis[state]
        key = (rule, synth)
        cached = _STATE_DIGEST_MEMO.get(key)
        if cached is None:
            cached = _digest(
                ("sws.state", _transition_rule(rule), canonical(synth.query))
            )
            if len(_STATE_DIGEST_MEMO) >= _STATE_DIGEST_MEMO_LIMIT:
                _STATE_DIGEST_MEMO.clear()
            _STATE_DIGEST_MEMO[key] = cached
        states[state] = cached
    globals_digest = _digest(
        (
            "sws.globals",
            sws.kind.value,
            _sorted_set(sws.states),
            sws.start,
            canonical(sws.db_schema),
            canonical(sws.input_schema),
            sws.output_arity,
        )
    )
    root = _digest(
        ("sws.root", globals_digest, tuple(sorted(states.items())))
    )
    return SubFingerprints(root, globals_digest, states)


def job_fingerprint(
    procedure: str, args: tuple = (), kwargs: Mapping[str, Any] | None = None
) -> str:
    """Fingerprint of a whole job: procedure name + instance arguments.

    Resource budgets are deliberately *not* part of the key: the
    procedures are sound, so any decided (YES/NO) answer is
    budget-independent, and guard-tripped UNKNOWN answers are never
    cached in the first place.  Procedure parameters that change the
    *question* (``max_session_length``, ``invocation_bound``, ...)
    arrive through ``args``/``kwargs`` and are included.
    """
    payload = (
        "job",
        procedure,
        _seq(args),
        tuple(sorted((k, canonical(v)) for k, v in (kwargs or {}).items())),
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()
