"""Fault-tolerance policies for the serving layer.

The decision procedures are EXPTIME/PSPACE-hard in the worst case, so a
serving tier *will* see jobs that exhaust budgets, stall workers, or
kill processes outright.  This module holds the policy objects
:class:`~repro.serve.scheduler.SolverService` composes to survive that
— each one optional, each independently testable:

* :class:`RetryPolicy` — bounded re-execution of guard-tripped jobs
  with **budget escalation** (multiply every set limit by
  ``budget_multiplier``, clamped to per-limit ceilings) and
  **decorrelated-jitter backoff** between attempts, so a fleet of
  retrying jobs does not re-converge into the thundering herd that
  tripped them.  Cancellation-aware: the scheduler polls handles during
  the backoff wait and resolves promptly instead of sleeping through it.
* :class:`AdmissionControl` — a max-queue-depth gate plus per-source
  token buckets on :meth:`SolverService.submit`.  An inadmissible job
  resolves immediately to a typed ``REJECTED`` outcome
  (:data:`REJECTED_DETAIL` UNKNOWN, ``handle.rejected`` true) instead
  of queueing without bound.  Cache hits and dedup joins bypass the
  gate — they add no work.
* :class:`DeadLetterQueue` — where jobs go when escalation is exhausted
  or a worker was lost too many times.  Persisted in the SQLite store's
  ``dlq`` table when the service has a disk tier (so
  ``python -m repro.serve dlq list|retry|purge`` can operate on it
  across processes), with an in-memory fallback otherwise.  Records
  carry the fingerprint, attempt count, full trip history, the last
  escalated budget, and a pickled ``(args, kwargs)`` payload so a later
  ``dlq retry`` can actually re-run the job.

The invariant all three defend: **every submitted job resolves** — to a
decided answer, a sound UNKNOWN, or a typed rejection — and a resolved
UNKNOWN never contradicts what an unfaulted run would answer.
"""

from __future__ import annotations

import pickle
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.guard import Budget

__all__ = [
    "AdmissionControl",
    "DeadLetterQueue",
    "DLQRecord",
    "REJECTED_DETAIL",
    "RETRYABLE_LIMITS",
    "RetryPolicy",
    "WORKER_LOST_DETAIL",
]

#: ``Answer.detail`` of jobs refused by admission control.
REJECTED_DETAIL = "rejected by admission control"

#: ``Answer.detail`` of jobs whose worker died more times than the
#: service's re-dispatch limit allows.
WORKER_LOST_DETAIL = "worker process lost mid-job"

#: Trip limits a retry can help with.  ``cancelled`` is excluded — the
#: caller asked for the job to stop; retrying would countermand them.
RETRYABLE_LIMITS = frozenset({"steps", "deadline", "memory"})


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded budget-escalation retry for guard-tripped jobs.

    ``max_attempts`` counts *executions* (1 disables retry).  Each retry
    multiplies every set budget limit by ``budget_multiplier``, clamping
    to the per-limit ceilings (``None`` ceiling = unclamped).  The wait
    between attempts is decorrelated jitter — ``sleep = min(cap,
    uniform(base, 3 * previous_sleep))`` — bounded by
    ``backoff_cap_s``; pass ``rng`` (e.g. ``random.Random(0)``) for
    deterministic tests.
    """

    max_attempts: int = 3
    budget_multiplier: float = 4.0
    deadline_ceiling_s: float | None = None
    step_ceiling: int | None = None
    memory_ceiling_mb: float | None = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    rng: random.Random = field(
        default_factory=random.Random, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.budget_multiplier < 1.0:
            raise ValueError("budget_multiplier must be >= 1.0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_cap_s")

    def retryable(self, result: Any) -> bool:
        """Whether ``result`` is a guard-tripped UNKNOWN a retry can fix.

        True only for resource trips (steps/deadline/memory — including
        injected ones, which model real exhaustion).  Decided answers,
        plain UNKNOWNs without a trip, and cancellations are final.
        """
        trip = getattr(result, "trip", None)
        return trip is not None and getattr(trip, "limit", None) in RETRYABLE_LIMITS

    def escalate(self, budget: Budget | None) -> Budget | None:
        """The next attempt's budget: every set limit scaled and clamped."""
        if budget is None:
            return None

        def scale(value, ceiling, cast):
            if value is None:
                return None
            grown = cast(value * self.budget_multiplier)
            return grown if ceiling is None else min(grown, cast(ceiling))

        return Budget(
            deadline_s=scale(budget.deadline_s, self.deadline_ceiling_s, float),
            step_budget=scale(budget.step_budget, self.step_ceiling, int),
            memory_ceiling_mb=scale(
                budget.memory_ceiling_mb, self.memory_ceiling_mb, float
            ),
        )

    def backoff_s(self, previous_s: float | None) -> float:
        """The next decorrelated-jitter wait given the previous one."""
        if self.backoff_cap_s == 0:
            return 0.0
        floor = self.backoff_base_s
        span = max(floor, 3.0 * (previous_s if previous_s else floor))
        return min(self.backoff_cap_s, self.rng.uniform(floor, span))


class AdmissionControl:
    """Queue-depth cap plus per-source token buckets for ``submit``.

    ``max_queue_depth`` rejects new work once that many distinct
    entries are already queued (``None`` = unbounded).  ``rate`` /
    ``burst`` configure one token bucket per ``source`` label (the
    submit-side tenant tag; ``None`` sources share one bucket): each
    admitted job spends a token, tokens refill at ``rate`` per second
    up to ``burst``.  ``rate=None`` disables the buckets.

    Thread-safe; decisions are O(1).
    """

    def __init__(
        self,
        max_queue_depth: int | None = None,
        rate: float | None = None,
        burst: int = 16,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.rate = rate
        self.burst = burst
        self._lock = threading.Lock()
        self._buckets: dict[str | None, tuple[float, float]] = {}
        self.rejected_depth = 0
        self.rejected_rate = 0

    def admit(self, source: str | None, queue_depth: int) -> str | None:
        """``None`` to admit, else the rejection reason (``"depth"``/``"rate"``)."""
        if (
            self.max_queue_depth is not None
            and queue_depth >= self.max_queue_depth
        ):
            with self._lock:
                self.rejected_depth += 1
            return "depth"
        if self.rate is None:
            return None
        now = time.monotonic()
        with self._lock:
            tokens, t_last = self._buckets.get(source, (float(self.burst), now))
            tokens = min(float(self.burst), tokens + (now - t_last) * self.rate)
            if tokens < 1.0:
                self._buckets[source] = (tokens, now)
                self.rejected_rate += 1
                return "rate"
            self._buckets[source] = (tokens - 1.0, now)
            return None


@dataclass
class DLQRecord:
    """One dead-lettered job.

    ``trips`` is the attempt-by-attempt history (each entry the trip's
    ``limit``/``site``/``steps`` or a worker-lost marker);
    ``last_budget`` is the final escalated budget as a
    :meth:`~repro.guard.Budget.as_dict` mapping.  ``payload`` is the
    pickled ``(args, kwargs)`` pair when the job's arguments pickle —
    what ``dlq retry`` re-runs — and ``None`` otherwise.
    """

    fingerprint: str
    procedure: str
    label: str
    reason: str
    attempts: int
    trips: list[dict] = field(default_factory=list)
    last_budget: dict | None = None
    payload: bytes | None = None
    updated_s: float = field(default_factory=time.time)

    def as_dict(self, with_payload: bool = False) -> dict[str, Any]:
        out: dict[str, Any] = {
            "fingerprint": self.fingerprint,
            "procedure": self.procedure,
            "label": self.label,
            "reason": self.reason,
            "attempts": self.attempts,
            "trips": self.trips,
            "last_budget": self.last_budget,
            "has_payload": self.payload is not None,
            "updated_s": self.updated_s,
        }
        if with_payload:
            out["payload"] = self.payload
        return out

    def job(self) -> tuple[tuple, dict] | None:
        """The ``(args, kwargs)`` pair for a retry, or ``None``."""
        if self.payload is None:
            return None
        try:
            args, kwargs = pickle.loads(self.payload)
            return tuple(args), dict(kwargs)
        except Exception:  # noqa: BLE001 - a stale payload is no payload
            return None

    @staticmethod
    def encode_job(args: tuple, kwargs: Mapping[str, Any]) -> bytes | None:
        try:
            return pickle.dumps(
                (tuple(args), dict(kwargs)), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:  # noqa: BLE001 - unpicklable args: record-only DLQ
            return None


class DeadLetterQueue:
    """Terminal parking lot for jobs the service could not decide.

    Backed by the SQLite store's ``dlq`` table when one is available
    (shared across processes, survives restarts, what the ``serve dlq``
    CLI reads) and an in-memory dict otherwise.  One record per
    fingerprint: re-dead-lettering the same job updates it in place.
    """

    def __init__(self, store: Any | None = None) -> None:
        self.store = store
        self._lock = threading.Lock()
        self._memory: dict[str, DLQRecord] = {}

    def add(self, record: DLQRecord) -> None:
        if self.store is not None:
            self.store.put_dlq(record)
            return
        with self._lock:
            self._memory[record.fingerprint] = record

    def get(self, fingerprint: str) -> DLQRecord | None:
        if self.store is not None:
            return self.store.get_dlq(fingerprint)
        with self._lock:
            return self._memory.get(fingerprint)

    def records(self) -> list[DLQRecord]:
        """All records, oldest first."""
        if self.store is not None:
            return self.store.list_dlq()
        with self._lock:
            return sorted(self._memory.values(), key=lambda r: r.updated_s)

    def remove(self, fingerprint: str) -> bool:
        if self.store is not None:
            return self.store.delete_dlq(fingerprint)
        with self._lock:
            return self._memory.pop(fingerprint, None) is not None

    def purge(self) -> int:
        """Delete every record; returns how many were dropped."""
        if self.store is not None:
            return self.store.purge_dlq()
        with self._lock:
            count = len(self._memory)
            self._memory.clear()
            return count

    def __len__(self) -> int:
        if self.store is not None:
            return self.store.dlq_count()
        with self._lock:
            return len(self._memory)
