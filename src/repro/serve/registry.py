"""Name → procedure registry for the serving layer.

The scheduler, worker pool, and ``python -m repro.serve`` all refer to
decision procedures by name: names are picklable (so jobs cross process
boundaries without shipping code objects), stable (so cache keys and
JSONL job files survive refactors of import paths), and enumerable (so
the CLI can list what the service answers).

Every registered procedure is one of the library's ``@guarded()``
entry points and therefore accepts a ``guard=`` keyword — the scheduler
uses it to attach the per-job :class:`~repro.guard.Budget` and
cancellation token.

``register_procedure`` lets tests and downstream users extend the
registry (e.g. with slow stubs for scheduler tests); names registered
this way resolve only in the registering process, so batch files meant
for the worker pool should stick to the built-ins.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Mapping

from repro import analysis, mediator
from repro.errors import ReproError

__all__ = [
    "UnknownProcedureError",
    "PROCEDURES",
    "get_procedure",
    "procedure_names",
    "register_procedure",
    "resolve_factory",
]


class UnknownProcedureError(ReproError):
    """Raised when a job names a procedure the registry does not know."""


def _builtin_procedures() -> dict[str, Callable[..., Any]]:
    table: dict[str, Callable[..., Any]] = {}
    for name in (
        # Table 1 — nonemptiness.
        "nonempty_pl",
        "nonempty_pl_nr_sat",
        "nonempty_cq",
        "nonempty_cq_nr",
        "nonempty_fo_bounded",
        # Table 1 — validation.
        "validate_pl",
        "validate_pl_nr_sat",
        "validate_cq_nr",
        # Table 1 — equivalence / containment.
        "equivalent_pl",
        "equivalent_cq",
        "equivalent_cq_nr",
        "equivalent_fo_bounded",
        "contained_pl",
        "contained_cq",
        "contained_cq_nr",
    ):
        table[name] = getattr(analysis, name)
    for name in (
        # Table 2 — mediator composition.
        "compose_pl_regular",
        "compose_pl_prefix",
        "compose_mdtb_pl",
        "compose_cq_nr",
        "compose_uc2rpq",
    ):
        table[name] = getattr(mediator, name)
    return table


#: The live registry.  Mutated only through :func:`register_procedure`.
PROCEDURES: dict[str, Callable[..., Any]] = _builtin_procedures()


def procedure_names() -> tuple[str, ...]:
    """Registered procedure names, sorted."""
    return tuple(sorted(PROCEDURES))


def get_procedure(name: str) -> Callable[..., Any]:
    """The registered procedure called ``name``."""
    try:
        return PROCEDURES[name]
    except KeyError:
        raise UnknownProcedureError(
            f"unknown procedure {name!r}; known: {', '.join(procedure_names())}"
        ) from None


def register_procedure(
    name: str, func: Callable[..., Any], *, replace: bool = False
) -> None:
    """Add ``func`` to the registry under ``name``.

    Registration is process-local; worker processes resolve names
    against their own copy of the registry, so custom procedures only
    work with the in-process executor unless the worker initializer
    re-registers them.
    """
    if name in PROCEDURES and not replace:
        raise ValueError(f"procedure {name!r} already registered")
    PROCEDURES[name] = func


#: Modules JSONL job files may draw instance factories from.  Kept to
#: the library's own workload generators so a job file names *which
#: benchmark instance* to build, not arbitrary code to run.
_FACTORY_MODULES = (
    "repro.workloads.scaling",
    "repro.workloads.pl_services",
    "repro.workloads.random_sws",
    "repro.workloads.travel",
    "repro.workloads.editing",
)


def resolve_factory(path: str) -> Callable[..., Any]:
    """Resolve a ``module:function`` instance factory for CLI job files.

    Only functions inside ``repro.workloads`` modules are allowed.
    """
    module_name, sep, func_name = path.partition(":")
    if not sep or not func_name:
        raise ValueError(f"factory {path!r} is not of the form 'module:function'")
    if module_name not in _FACTORY_MODULES:
        allowed = ", ".join(_FACTORY_MODULES)
        raise ValueError(
            f"factory module {module_name!r} not allowed; use one of: {allowed}"
        )
    module = importlib.import_module(module_name)
    func = getattr(module, func_name, None)
    if not callable(func):
        raise ValueError(f"{path!r} does not name a callable factory")
    return func
