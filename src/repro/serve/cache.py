"""Content-addressed answer cache for the serving layer.

Keys are job fingerprints (:mod:`repro.serve.fingerprint`); values are
the results the registered procedures return — usually
:class:`~repro.analysis.verdict.Answer`, but the composition results
(``PLCompositionResult``, ``MDTbResult``) cache the same way since they
carry a ``verdict`` too.

Semantics:

* **UNKNOWN is never cached.**  A guard-tripped (or budget-bounded)
  UNKNOWN says "ran out of resources", not "the answer is UNKNOWN";
  caching it would let one under-budgeted run poison every future,
  better-budgeted ask.  :meth:`AnswerCache.put` refuses such results and
  counts the refusal.
* The in-memory tier is a bounded LRU (gets refresh recency).
* The optional on-disk tier is a :class:`repro.serve.store.Store` — a
  WAL-mode SQLite database under a cache directory (``REPRO_CACHE_DIR``
  enables it for the default service).  Unlike the JSONL file it
  replaces, the store is safe for many concurrent reader/writer
  processes and also holds derived artifacts (compiled AFA searchers,
  symbol-class quotients, UCQ expansions) for cold-process warm starts.
  A legacy ``<namespace>.jsonl`` file in the directory is imported into
  the store on open (once per file version; store rows win).
* Hit/miss/store counters feed both a local :class:`CacheStats` and the
  process-wide ``repro.obs`` STATS block (``serve_cache_hits`` /
  ``serve_cache_misses``), so cache behaviour shows up in span counter
  deltas and ``python -m repro.obs report`` tables.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro import metrics
from repro._stats import STATS
from repro.serve.store import Store, StoreError

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"


def _verdict_name(result: Any) -> str | None:
    verdict = getattr(result, "verdict", None)
    value = getattr(verdict, "value", None)
    return value if isinstance(value, str) else None


def cacheable(result: Any) -> bool:
    """Whether ``result`` is a decided answer safe to memoize.

    Refuses UNKNOWN verdicts (budget artifacts, not facts about the
    instance) and anything carrying a guard :class:`~repro.guard.Trip`.
    Results without a ``verdict`` attribute are treated as decided —
    a procedure that returns a plain value decided it.
    """
    if _verdict_name(result) == "unknown":
        return False
    trip = getattr(result, "trip", None)
    if trip is not None and getattr(trip, "limit", None) is not None:
        return False
    return True


@dataclass
class CacheStats:
    """Counters for one :class:`AnswerCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    rejected_unknown: int = 0
    evictions: int = 0
    disk_loaded: int = 0
    disk_skipped: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "rejected_unknown": self.rejected_unknown,
            "evictions": self.evictions,
            "disk_loaded": self.disk_loaded,
            "disk_skipped": self.disk_skipped,
            "hit_rate": self.hit_rate(),
        }


class AnswerCache:
    """Two-tier (memory LRU + optional SQLite store) answer cache.

    Thread-safe: the scheduler consults it from the submitting thread
    while pool callbacks store results.  The disk tier is additionally
    safe across processes — any number of services may share one cache
    directory.
    """

    def __init__(
        self,
        capacity: int = 4096,
        directory: str | None = None,
        namespace: str = "answers",
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self.store: Store | None = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self.store = Store(os.path.join(directory, f"{namespace}.sqlite3"))
            self._migrate_legacy_jsonl(
                os.path.join(directory, f"{namespace}.jsonl")
            )
            self.stats.disk_loaded = self.store.answer_count()

    def _migrate_legacy_jsonl(self, legacy_path: str) -> None:
        """One-time import of a pre-store JSONL tier sharing the directory.

        Keyed on the file's (mtime, size) so an unchanged file is not
        re-read on every open, while a file extended by an old-version
        writer is picked up again.  Store rows win over imported ones —
        they are the newer generation.
        """
        assert self.store is not None
        if not os.path.exists(legacy_path):
            return
        stat = os.stat(legacy_path)
        marker = f"{stat.st_mtime_ns}:{stat.st_size}"
        meta_key = f"imported-jsonl:{os.path.basename(legacy_path)}"
        if self.store.get_meta(meta_key) == marker:
            return
        self.store.import_jsonl(legacy_path)
        self.store.set_meta(meta_key, marker)

    # -- the two tiers -----------------------------------------------------------

    def get(self, key: str, procedure: str | None = None) -> Any | None:
        """The cached result for ``key``, or ``None`` on a miss.

        ``procedure`` only annotates disk records for humans; the key
        already encodes it.
        """
        del procedure
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                STATS.serve_cache_hits += 1
                metrics.counter("serve.cache.hits", tier="memory").inc()
                return self._memory[key]
            if self.store is not None:
                result = self._store_io(lambda: self.store.get_answer(key))
                if result is not None:
                    self._remember(key, result)
                    self.stats.hits += 1
                    STATS.serve_cache_hits += 1
                    metrics.counter("serve.cache.hits", tier="disk").inc()
                    return result
            self.stats.misses += 1
            STATS.serve_cache_misses += 1
            metrics.counter("serve.cache.misses").inc()
            return None

    def put(self, key: str, result: Any, procedure: str | None = None) -> bool:
        """Store a decided result; True iff every configured tier holds it.

        UNKNOWN/tripped results are stored nowhere and return False.  A
        result the disk tier cannot pickle is kept memory-only: the call
        returns False and counts a ``disk_skipped`` so callers relying
        on cross-process persistence can tell the difference.
        """
        if not cacheable(result):
            with self._lock:
                self.stats.rejected_unknown += 1
            metrics.counter("serve.cache.rejected_unknown").inc()
            return False
        with self._lock:
            self._remember(key, result)
            self.stats.stores += 1
            metrics.counter("serve.cache.stores").inc()
            if self.store is not None and not self._store_io(
                lambda: self.store.put_answer(key, result, procedure),
                default=False,
            ):
                self.stats.disk_skipped += 1
                metrics.counter("serve.cache.disk_skipped").inc()
                return False
            return True

    def _store_io(self, operation, default: Any = None) -> Any:
        """Run a disk-tier operation, degrading on I/O failure.

        The store already retries transient lock errors internally; an
        error that still escapes (exhausted retries, a disk yanked
        mid-run, chaos-injected faults) must cost this process the disk
        tier for one call, never the answer — the memory tier and the
        procedure itself still serve it.  Failures are counted on
        ``serve.store.io_errors`` so a soak run can prove the
        degradation happened without a single job being lost.
        """
        try:
            return operation()
        except (sqlite3.Error, StoreError, OSError):
            metrics.counter("serve.store.io_errors").inc()
            return default

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
            return self.store is not None and self.store.has_answer(key)

    def __len__(self) -> int:
        """Distinct keys answerable from *any* tier (memory or disk).

        Consistent with ``in``: every key visible to ``__contains__``
        is counted, whether or not it is currently memory-resident.
        """
        with self._lock:
            if self.store is None:
                return len(self._memory)
            keys = set(self._memory)
            keys.update(self.store.answer_keys())
            return len(keys)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk records remain loadable)."""
        with self._lock:
            self._memory.clear()

    def close(self) -> None:
        """Close the disk tier (if any); the memory tier stays usable."""
        if self.store is not None:
            self.store.close()
            self.store = None

    def _remember(self, key: str, result: Any) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            metrics.counter("serve.cache.evictions").inc()


def default_cache_directory() -> str | None:
    """The ``REPRO_CACHE_DIR`` path, or ``None`` when unset/empty."""
    path = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    return path or None
