"""Content-addressed answer cache for the serving layer.

Keys are job fingerprints (:mod:`repro.serve.fingerprint`); values are
the results the registered procedures return — usually
:class:`~repro.analysis.verdict.Answer`, but the composition results
(``PLCompositionResult``, ``MDTbResult``) cache the same way since they
carry a ``verdict`` too.

Semantics:

* **UNKNOWN is never cached.**  A guard-tripped (or budget-bounded)
  UNKNOWN says "ran out of resources", not "the answer is UNKNOWN";
  caching it would let one under-budgeted run poison every future,
  better-budgeted ask.  :meth:`AnswerCache.put` refuses such results and
  counts the refusal.
* The in-memory tier is a bounded LRU (gets refresh recency).
* The optional on-disk tier is an append-only JSONL file under a cache
  directory (``REPRO_CACHE_DIR`` enables it for the default service):
  one record per stored answer, carrying the verdict/detail in plain
  JSON for inspection and the full result pickled (base64) for exact
  round-tripping.  On open, existing records are loaded into an index;
  later writers append, so concurrent batch runs extend rather than
  clobber (last record for a key wins on reload).
* Hit/miss/store counters feed both a local :class:`CacheStats` and the
  process-wide ``repro.obs`` STATS block (``serve_cache_hits`` /
  ``serve_cache_misses``), so cache behaviour shows up in span counter
  deltas and ``python -m repro.obs report`` tables.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro._stats import STATS

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: On-disk record format version.
CACHE_SCHEMA_VERSION = 1


def _verdict_name(result: Any) -> str | None:
    verdict = getattr(result, "verdict", None)
    value = getattr(verdict, "value", None)
    return value if isinstance(value, str) else None


def cacheable(result: Any) -> bool:
    """Whether ``result`` is a decided answer safe to memoize.

    Refuses UNKNOWN verdicts (budget artifacts, not facts about the
    instance) and anything carrying a guard :class:`~repro.guard.Trip`.
    Results without a ``verdict`` attribute are treated as decided —
    a procedure that returns a plain value decided it.
    """
    if _verdict_name(result) == "unknown":
        return False
    trip = getattr(result, "trip", None)
    if trip is not None and getattr(trip, "limit", None) is not None:
        return False
    return True


@dataclass
class CacheStats:
    """Counters for one :class:`AnswerCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    rejected_unknown: int = 0
    evictions: int = 0
    disk_loaded: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "rejected_unknown": self.rejected_unknown,
            "evictions": self.evictions,
            "disk_loaded": self.disk_loaded,
            "hit_rate": self.hit_rate(),
        }


class AnswerCache:
    """Two-tier (memory LRU + optional JSONL disk) answer store.

    Thread-safe: the scheduler consults it from the submitting thread
    while pool callbacks store results.
    """

    def __init__(
        self,
        capacity: int = 4096,
        directory: str | None = None,
        namespace: str = "answers",
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._disk_path: str | None = None
        self._disk_index: dict[str, dict[str, Any]] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._disk_path = os.path.join(directory, f"{namespace}.jsonl")
            self._load_disk()

    # -- the two tiers -----------------------------------------------------------

    def get(self, key: str, procedure: str | None = None) -> Any | None:
        """The cached result for ``key``, or ``None`` on a miss.

        ``procedure`` only annotates disk records for humans; the key
        already encodes it.
        """
        del procedure
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                STATS.serve_cache_hits += 1
                return self._memory[key]
            record = self._disk_index.get(key)
            if record is not None:
                try:
                    result = pickle.loads(base64.b64decode(record["pickle"]))
                except Exception:  # noqa: BLE001 - stale/corrupt record
                    self._disk_index.pop(key, None)
                else:
                    self._remember(key, result)
                    self.stats.hits += 1
                    STATS.serve_cache_hits += 1
                    return result
            self.stats.misses += 1
            STATS.serve_cache_misses += 1
            return None

    def put(self, key: str, result: Any, procedure: str | None = None) -> bool:
        """Store a decided result; returns False (and stores nothing) for
        UNKNOWN/tripped results or results that cannot be pickled."""
        if not cacheable(result):
            with self._lock:
                self.stats.rejected_unknown += 1
            return False
        with self._lock:
            self._remember(key, result)
            self.stats.stores += 1
            if self._disk_path is not None:
                self._append_disk(key, result, procedure)
            return True

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._memory or key in self._disk_index

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk records remain loadable)."""
        with self._lock:
            self._memory.clear()

    def _remember(self, key: str, result: Any) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # -- the disk tier -----------------------------------------------------------

    def _load_disk(self) -> None:
        assert self._disk_path is not None
        if not os.path.exists(self._disk_path):
            return
        with open(self._disk_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                key = record.get("key")
                if isinstance(key, str) and "pickle" in record:
                    self._disk_index[key] = record
                    self.stats.disk_loaded += 1

    def _append_disk(self, key: str, result: Any, procedure: str | None) -> None:
        assert self._disk_path is not None
        try:
            payload = base64.b64encode(pickle.dumps(result)).decode("ascii")
        except Exception:  # noqa: BLE001 - unpicklable result: memory-only
            return
        record: dict[str, Any] = {
            "v": CACHE_SCHEMA_VERSION,
            "key": key,
            "pickle": payload,
        }
        if procedure:
            record["procedure"] = procedure
        verdict = _verdict_name(result)
        if verdict is not None:
            record["verdict"] = verdict
        detail = getattr(result, "detail", None)
        if isinstance(detail, str) and detail:
            record["detail"] = detail
        self._disk_index[key] = record
        with open(self._disk_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def default_cache_directory() -> str | None:
    """The ``REPRO_CACHE_DIR`` path, or ``None`` when unset/empty."""
    path = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    return path or None
