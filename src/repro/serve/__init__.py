"""repro.serve — concurrent solver service for the decision procedures.

The paper's procedures answer one question at a time; this package turns
them into a *service*: a job scheduler with structural fingerprints, a
content-addressed answer cache, in-flight deduplication, per-job
resource budgets with cancellation, and a process-pool backend whose
workers re-emit their :mod:`repro.obs` spans into the parent trace.

Quickstart::

    from repro import serve
    from repro.guard import Budget
    from repro.workloads.scaling import pl_counter_sws

    sws = pl_counter_sws(8)
    handle = serve.submit("nonempty_pl", sws, budget=Budget(deadline_s=5))
    answer = handle.result()           # runs the pending work
    again = serve.submit("nonempty_pl", sws)
    assert again.from_cache            # same structure => cache hit

Batch mode (and ``python -m repro.serve run jobs.jsonl``) executes a
list of :class:`~repro.serve.scheduler.JobSpec` jobs::

    results = serve.run_batch([
        serve.JobSpec("nonempty_pl", (pl_counter_sws(n),)) for n in range(4, 10)
    ])

Components:

* :mod:`repro.serve.fingerprint` — hash-seed- and construction-order-
  independent structural fingerprints of problem instances.
* :mod:`repro.serve.store` — the WAL-mode SQLite answer + artifact
  store; safe for many concurrent reader/writer processes.
* :mod:`repro.serve.cache` — in-memory LRU over the optional store
  disk tier (``REPRO_CACHE_DIR``); never caches UNKNOWN.
* :mod:`repro.serve.scheduler` — :class:`SolverService`,
  :class:`JobHandle`, dedup and cancellation semantics.
* :mod:`repro.serve.resilience` — :class:`RetryPolicy` (budget
  escalation + decorrelated-jitter backoff), :class:`AdmissionControl`
  (queue-depth cap + per-source token buckets), and the store-backed
  :class:`DeadLetterQueue` (``python -m repro.serve dlq``).
* :mod:`repro.serve.pool` — worker processes + trace spool merging and
  in-place respawn after a worker death.
* :mod:`repro.serve.registry` — the name → procedure table.

See ``docs/SERVING.md`` for the full design.
"""

from repro.serve.cache import AnswerCache, CacheStats, cacheable
from repro.serve.store import Store, StoreArtifactProvider, StoreError
from repro.serve.fingerprint import (
    FingerprintError,
    canonical,
    fingerprint,
    job_fingerprint,
)
from repro.serve.pool import WorkerPool
from repro.serve.registry import (
    PROCEDURES,
    UnknownProcedureError,
    get_procedure,
    procedure_names,
    register_procedure,
)
from repro.serve.resilience import (
    REJECTED_DETAIL,
    RETRYABLE_LIMITS,
    WORKER_LOST_DETAIL,
    AdmissionControl,
    DeadLetterQueue,
    DLQRecord,
    RetryPolicy,
)
from repro.serve.scheduler import (
    BATCH_ABORTED_DETAIL,
    CANCELLED_DETAIL,
    JobHandle,
    JobSpec,
    SolverService,
)

__all__ = [
    "AdmissionControl",
    "AnswerCache",
    "BATCH_ABORTED_DETAIL",
    "CacheStats",
    "CANCELLED_DETAIL",
    "DeadLetterQueue",
    "DLQRecord",
    "FingerprintError",
    "JobHandle",
    "JobSpec",
    "PROCEDURES",
    "REJECTED_DETAIL",
    "RETRYABLE_LIMITS",
    "RetryPolicy",
    "SolverService",
    "Store",
    "StoreArtifactProvider",
    "StoreError",
    "UnknownProcedureError",
    "WORKER_LOST_DETAIL",
    "WorkerPool",
    "cacheable",
    "canonical",
    "default_service",
    "fingerprint",
    "get_procedure",
    "job_fingerprint",
    "procedure_names",
    "register_procedure",
    "reset_default_service",
    "run_batch",
    "submit",
]

_default_service: SolverService | None = None


def default_service() -> SolverService:
    """The process-wide service behind :func:`submit`/:func:`run_batch`.

    Created on first use: in-process execution, disk cache tier enabled
    iff ``REPRO_CACHE_DIR`` is set.
    """
    global _default_service
    if _default_service is None:
        _default_service = SolverService()
    return _default_service


def reset_default_service() -> None:
    """Discard the default service (tests; after env-var changes)."""
    global _default_service
    if _default_service is not None:
        _default_service.close()
    _default_service = None


def submit(procedure: str, *args, **kwargs) -> JobHandle:
    """Submit a job to the default service (see :meth:`SolverService.submit`)."""
    return default_service().submit(procedure, *args, **kwargs)


def run_batch(jobs) -> list:
    """Run a batch on the default service (see :meth:`SolverService.run_batch`)."""
    return default_service().run_batch(jobs)
