"""``python -m repro.serve top`` — live terminal view of a running batch.

Reads the JSONL snapshot file a metrics-enabled process exports
(``REPRO_METRICS=metrics.jsonl``, or ``--metrics`` on ``serve run``) and
refreshes a one-screen dashboard: throughput and completion totals,
queue depth / in-flight / worker utilization, cache hit rate, guard
trips, and a per-procedure latency table (count, p50, p90, p99, max) —
the percentiles, not averages, that heavy-tailed solve times demand.

Rendering is a pure function of (current snapshot, previous snapshot),
so it is testable without a terminal; the loop just tails the file.
``--once`` renders a single frame and exits (what CI smokes).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Mapping, Sequence

from repro import metrics

#: How many trailing bytes of the snapshot file the tail reader scans.
TAIL_BYTES = 256 * 1024


def tail_snapshot(path: str) -> dict[str, Any] | None:
    """The last metrics snapshot in ``path``, reading only the tail.

    Snapshot files grow one line per export interval; a long-running
    soak's file can be large, so seek to the last :data:`TAIL_BYTES`
    and parse backwards from the end.
    """
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            handle.seek(max(0, size - TAIL_BYTES))
            payload = handle.read().decode("utf-8", errors="replace")
    except OSError:
        return None
    for line in reversed(payload.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # truncated first line of the tail window, mid-write
        if record.get("event") == "metrics":
            return record
    return None


def _fmt_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}µs"


def _fmt_count(value: float) -> str:
    return str(int(value)) if value == int(value) else f"{value:.2f}"


def _counter_rate(
    snap: Mapping[str, Any], prev: Mapping[str, Any] | None, name: str
) -> float | None:
    """Per-second rate of a counter between two snapshots."""
    if prev is None:
        return None
    dt = snap.get("t_wall", 0.0) - prev.get("t_wall", 0.0)
    if dt <= 0:
        return None
    delta = metrics.counter_total(
        snap.get("counters") or {}, name
    ) - metrics.counter_total(prev.get("counters") or {}, name)
    return delta / dt


def render(
    snap: Mapping[str, Any], prev: Mapping[str, Any] | None = None
) -> str:
    """One dashboard frame for ``snap`` (rates need ``prev`` too)."""
    counters = snap.get("counters") or {}
    gauges = snap.get("gauges") or {}
    histograms = snap.get("histograms") or {}
    lines: list[str] = []
    age = time.time() - snap.get("t_wall", time.time())
    lines.append(
        f"repro.serve top — pid {snap.get('pid', '?')}  seq {snap.get('seq', '?')}"
        f"  snapshot age {age:.1f}s"
    )
    lines.append("")

    completed = metrics.counter_total(counters, "serve.jobs.completed")
    executed = metrics.counter_total(counters, "serve.jobs.executed")
    deduped = metrics.counter_total(counters, "serve.jobs.deduped")
    rate = _counter_rate(snap, prev, "serve.jobs.completed")
    rate_text = f"{rate:.1f}/s" if rate is not None else "-"
    lines.append(
        f"jobs        completed {_fmt_count(completed)}  "
        f"executed {_fmt_count(executed)}  deduped {_fmt_count(deduped)}  "
        f"throughput {rate_text}"
    )

    queue_depth = gauges.get("serve.queue.depth", 0.0)
    inflight = gauges.get("serve.inflight", 0.0)
    workers = gauges.get("serve.pool.workers", 0.0)
    busy = sum(
        value
        for key, value in gauges.items()
        if metrics.decode_key(key)[0] == "serve.worker.busy"
    )
    utilization = f"{busy / workers:.0%}" if workers else "-"
    lines.append(
        f"load        queue {_fmt_count(queue_depth)}  "
        f"in-flight {_fmt_count(inflight)}  "
        f"workers busy {_fmt_count(busy)}/{_fmt_count(workers)}  "
        f"utilization {utilization}"
    )

    hit_rate = metrics.cache_hit_rate(counters)
    hits = metrics.counter_total(counters, "serve.cache.hits")
    misses = metrics.counter_total(counters, "serve.cache.misses")
    rate_text = f"{hit_rate:.1%}" if hit_rate is not None else "-"
    lines.append(
        f"cache       hit rate {rate_text}  "
        f"hits {_fmt_count(hits)}  misses {_fmt_count(misses)}"
    )

    retried = metrics.counter_total(counters, "serve.retry.scheduled")
    exhausted = metrics.counter_total(counters, "serve.retry.exhausted")
    rejected = metrics.counter_total(counters, "serve.rejected")
    worker_lost = metrics.counter_total(counters, "serve.worker.lost")
    respawns = metrics.counter_total(counters, "serve.pool.respawns")
    dlq_added = metrics.counter_total(counters, "serve.dlq.added")
    dlq_depth = gauges.get("serve.dlq.depth", 0.0)
    if retried or exhausted or rejected or worker_lost or dlq_added or dlq_depth:
        lines.append(
            f"resilience  retried {_fmt_count(retried)}  "
            f"exhausted {_fmt_count(exhausted)}  "
            f"rejected {_fmt_count(rejected)}  "
            f"worker-lost {_fmt_count(worker_lost)} "
            f"(respawns {_fmt_count(respawns)})  "
            f"dlq {_fmt_count(dlq_depth)} (+{_fmt_count(dlq_added)})"
        )

    trips = {
        labels.get("limit", "?"): value
        for key, value in counters.items()
        for name, labels in (metrics.decode_key(key),)
        if name == "guard.trips"
    }
    if trips:
        breakdown = "  ".join(
            f"{limit}={_fmt_count(count)}" for limit, count in sorted(trips.items())
        )
        lines.append(f"guard trips {breakdown}")

    heartbeats = []
    for key, value in sorted(gauges.items()):
        name, labels = metrics.decode_key(key)
        if name == "serve.job.heartbeat_s" and value:
            heartbeats.append(f"{labels.get('procedure', '?')} {value:g}s")
    if heartbeats:
        lines.append(f"running     {'  '.join(heartbeats)}")

    progress_rows: dict[tuple[str, str], dict[str, float]] = {}
    for key, value in gauges.items():
        name, labels = metrics.decode_key(key)
        if not name.startswith("progress."):
            continue
        ident = (labels.get("site", "?"), labels.get("worker", "-"))
        progress_rows.setdefault(ident, {})[name[len("progress."):]] = value
    if progress_rows:
        lines.append("")
        site_width = max(
            len("search site"), max(len(site) for site, _ in progress_rows)
        )
        lines.append(
            f"{'search site':<{site_width}}  {'worker':>6}  {'steps':>10}  "
            f"{'frontier':>9}  {'steps/s':>10}"
        )
        lines.append("-" * len(lines[-1]))
        for (site, worker), fields in sorted(progress_rows.items()):
            steps_per_s = fields.get("steps_per_s")
            lines.append(
                f"{site:<{site_width}}  {worker:>6}  "
                f"{_fmt_count(fields.get('steps', 0.0)):>10}  "
                f"{_fmt_count(fields.get('frontier', 0.0)):>9}  "
                + (
                    f"{steps_per_s:>10.0f}"
                    if steps_per_s is not None
                    else f"{'-':>10}"
                )
            )

    latency_rows = []
    for key, dump in sorted(histograms.items()):
        name, labels = metrics.decode_key(key)
        if name != "serve.job.latency_s" or not dump.get("count"):
            continue
        readout = metrics.histogram_readout(dump)
        latency_rows.append((labels.get("procedure", key), readout))
    if latency_rows:
        lines.append("")
        width = max(len("procedure"), max(len(p) for p, _ in latency_rows))
        lines.append(
            f"{'procedure':<{width}}  {'count':>6}  {'p50':>9}  {'p90':>9}  "
            f"{'p99':>9}  {'max':>9}"
        )
        lines.append("-" * len(lines[-1]))
        for procedure, readout in latency_rows:
            lines.append(
                f"{procedure:<{width}}  {readout['count']:>6}  "
                f"{_fmt_seconds(readout['p50']):>9}  "
                f"{_fmt_seconds(readout['p90']):>9}  "
                f"{_fmt_seconds(readout['p99']):>9}  "
                f"{_fmt_seconds(readout['max']):>9}"
            )
    else:
        lines.append("")
        lines.append("no job latency samples yet")
    lines.append("")
    return "\n".join(lines)


def run_top(
    path: str,
    interval_s: float = 1.0,
    once: bool = False,
    clear: bool = True,
    out=None,
) -> int:
    """The dashboard loop; returns an exit code."""
    out = out if out is not None else sys.stdout
    prev: dict[str, Any] | None = None
    while True:
        snap = tail_snapshot(path)
        if snap is None:
            if once:
                print(f"{path}: no metrics snapshot yet", file=sys.stderr)
                return 1
            frame = f"waiting for metrics snapshots in {path} ...\n"
        else:
            frame = render(snap, prev)
            prev = snap
        if clear and not once:
            out.write("\x1b[2J\x1b[H")
        out.write(frame)
        out.flush()
        if once:
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


def add_parser(subparsers, common=None) -> None:
    """Register the ``top`` subcommand on the serve CLI."""
    top = subparsers.add_parser(
        "top", help="live dashboard over a metrics snapshot file"
    )
    top.add_argument(
        "metrics",
        nargs="?",
        default=os.environ.get(metrics.METRICS_ENV_VAR),
        help="metrics JSONL path (default: $REPRO_METRICS)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, help="refresh seconds"
    )
    top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    top.add_argument(
        "--no-clear", action="store_true", help="do not clear the screen"
    )
    top.set_defaults(func=_cmd_top)


def _cmd_top(args: argparse.Namespace) -> int:
    if not args.metrics:
        print(
            "no metrics file: pass a path or set REPRO_METRICS",
            file=sys.stderr,
        )
        return 2
    return run_top(
        args.metrics,
        interval_s=args.interval,
        once=args.once,
        clear=not args.no_clear,
    )


__all__: Sequence[str] = ["render", "run_top", "tail_snapshot", "add_parser"]
