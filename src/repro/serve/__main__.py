"""``python -m repro.serve`` — batch solver service CLI.

Subcommands:

* ``run JOBS.jsonl [--workers N] [--out RESULTS.jsonl] [--cache-dir D]
  [--repeat K] [--profile P.collapsed]`` — execute a JSONL job file and
  write one result record per job (in job order); ``--profile`` samples
  wall-clock stacks across the parent and every worker into one
  collapsed-stack file.
* ``procedures`` — list the registered decision procedures.
* ``fingerprint JOBS.jsonl`` — print each job's fingerprint without
  running anything (what the cache would key on).
* ``store stats|vacuum|import`` — inspect and maintain the SQLite
  answer + artifact store behind a cache directory (``stats`` prints a
  JSON summary; ``vacuum`` compacts the file; ``import`` folds a legacy
  JSONL answer file in, ``--replace`` letting its records win).
* ``top [METRICS.jsonl]`` — live dashboard over the snapshot file a
  metrics-enabled batch exports (``run --metrics`` or
  ``REPRO_METRICS``): throughput, queue depth, worker utilization,
  cache hit rate, per-procedure latency percentiles.

Job file format — one JSON object per line::

    {"procedure": "nonempty_pl",
     "instances": [{"factory": "repro.workloads.scaling:pl_counter_sws",
                    "args": [10]}],
     "kwargs": {},
     "budget": {"deadline_s": 5.0, "step_budget": 200000},
     "label": "counter-10"}

``instances`` build the procedure's positional arguments, each either a
``factory`` spec (``module:function`` restricted to ``repro.workloads``
modules, plus ``args``/``kwargs`` for it) or an inline ``pickle``
(base64) of a prebuilt instance.  ``budget`` uses the
:meth:`repro.guard.Budget.as_dict` fields.  Lines starting with ``#``
and blank lines are skipped.

Result records carry the job's label, procedure, fingerprint, verdict
summary (via ``Answer.as_dict`` when available), whether it was served
from cache, and the batch-level stats as a trailing ``_summary`` record.
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import pickle
import sys
import time
from typing import Any

from repro import metrics
from repro.guard import Budget
from repro.obs import profile as _profile
from repro.serve import top as _top
from repro.serve.cache import AnswerCache
from repro.serve.fingerprint import job_fingerprint
from repro.serve.registry import procedure_names, resolve_factory
from repro.serve.scheduler import JobSpec, SolverService
from repro.serve.store import Store


def _build_instance(spec: Any) -> Any:
    if isinstance(spec, dict) and "factory" in spec:
        factory = resolve_factory(spec["factory"])
        return factory(*spec.get("args", ()), **spec.get("kwargs", {}))
    if isinstance(spec, dict) and "pickle" in spec:
        return pickle.loads(base64.b64decode(spec["pickle"]))
    if isinstance(spec, (str, int, float, bool)) or spec is None:
        return spec
    raise ValueError(
        "instance spec must be a factory/pickle object or a JSON scalar, "
        f"got {spec!r}"
    )


def _load_jobs(path: str) -> list[JobSpec]:
    jobs: list[JobSpec] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(f"{path}:{lineno}: bad JSON: {error}") from None
            try:
                procedure = record["procedure"]
                args = tuple(
                    _build_instance(spec) for spec in record.get("instances", ())
                )
                kwargs = dict(record.get("kwargs", {}))
                budget_spec = record.get("budget")
                budget = Budget.from_dict(budget_spec) if budget_spec else None
                label = record.get("label") or f"{procedure}#{lineno}"
            except (KeyError, ValueError, TypeError) as error:
                raise SystemExit(f"{path}:{lineno}: bad job: {error}") from None
            jobs.append(JobSpec(procedure, args, kwargs, budget, label))
    return jobs


def _result_record(job: JobSpec, handle: Any, result: Any) -> dict[str, Any]:
    record: dict[str, Any] = {
        "label": job.label,
        "procedure": job.procedure,
        "fingerprint": handle.fingerprint,
        "from_cache": handle.from_cache,
        "deduped": handle.deduped,
    }
    if hasattr(result, "as_dict"):
        record.update(result.as_dict())
    elif hasattr(result, "verdict"):
        record["verdict"] = getattr(result.verdict, "value", str(result.verdict))
    else:
        record["result"] = repr(result)
    return record


def _cmd_run(args: argparse.Namespace) -> int:
    jobs = _load_jobs(args.jobs)
    if not jobs:
        print(f"{args.jobs}: no jobs", file=sys.stderr)
        return 1
    if args.metrics:
        # Truncate: one batch, one snapshot stream (watch it live with
        # ``python -m repro.serve top <path>``).
        metrics.configure(path=args.metrics, mode="w")
    if args.profile:
        # Start before the service so the worker pool sees profiling
        # enabled and sets up per-pid spools for its children.
        _profile.configure(path=args.profile, hz=args.profile_hz)
    cache = AnswerCache(directory=args.cache_dir) if args.cache_dir else None
    service = SolverService(workers=args.workers, cache=cache)
    started = time.perf_counter()
    try:
        # Each repeat round drains before the next submits, so rounds
        # after the first hit the warm answer cache instead of deduping
        # inside one batch — `--repeat 2` demos the cache tier for real.
        handles = []
        rounds = max(1, args.repeat)
        for _ in range(rounds):
            handles.extend(
                service.submit(
                    job.procedure,
                    *job.args,
                    budget=job.budget,
                    label=job.label,
                    **job.kwargs,
                )
                for job in jobs
            )
            service.drain()
        jobs = jobs * rounds
        records = [
            _result_record(job, handle, handle.result())
            for job, handle in zip(jobs, handles)
        ]
    finally:
        service.close()
        if cache is not None:
            cache.close()
        if args.metrics:
            metrics.write_snapshot()  # final frame for serve top / obs check
        if args.profile:
            # service.close() already merged the worker spools.
            _profile.configure(enabled=False)
            written = _profile.write_collapsed()
            if written:
                print(
                    f"profile: {written} "
                    f"(render with `python -m repro.obs flame {written}`)",
                    file=sys.stderr,
                )
    elapsed = time.perf_counter() - started
    summary = {"_summary": service.stats(), "elapsed_s": round(elapsed, 6)}
    out = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout
    try:
        for record in records:
            out.write(json.dumps(record, sort_keys=True) + "\n")
        out.write(json.dumps(summary, sort_keys=True) + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    stats = service.stats()
    print(
        f"{len(jobs)} jobs: {stats['jobs_executed']} executed, "
        f"{stats['jobs_deduped']} deduped, "
        f"{stats['cache']['hits']} cache hits, "
        f"{elapsed:.3f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_procedures(_args: argparse.Namespace) -> int:
    for name in procedure_names():
        print(name)
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    for job in _load_jobs(args.jobs):
        key = job_fingerprint(job.procedure, job.args, job.kwargs)
        print(f"{key}  {job.label}")
    return 0


def _open_store(args: argparse.Namespace) -> Store:
    path = os.path.join(args.cache_dir, f"{args.namespace}.sqlite3")
    if not os.path.exists(path):
        raise SystemExit(f"{path}: no store file")
    return Store(path)


def _cmd_store_stats(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_store_vacuum(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        before = store.stats()["file_bytes"]
        store.vacuum()
        after = store.stats()["file_bytes"]
    print(f"vacuumed: {before} -> {after} bytes", file=sys.stderr)
    return 0


def _cmd_store_import(args: argparse.Namespace) -> int:
    os.makedirs(args.cache_dir, exist_ok=True)
    path = os.path.join(args.cache_dir, f"{args.namespace}.sqlite3")
    with Store(path) as store:
        imported = store.import_jsonl(args.jsonl, replace=args.replace)
        total = store.answer_count()
    print(f"imported {imported} records from {args.jsonl}; store holds {total}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Batch solver service over the repro decision procedures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a JSONL job file")
    run.add_argument("jobs", help="JSONL job file")
    run.add_argument("--workers", type=int, default=0, help="worker processes (0 = in-process)")
    run.add_argument("--out", default=None, help="results JSONL path (default: stdout)")
    run.add_argument("--cache-dir", default=None, help="on-disk answer cache directory")
    run.add_argument("--repeat", type=int, default=1, help="submit the job list K times (cache/dedup demo)")
    run.add_argument(
        "--metrics",
        default=None,
        help="export metrics snapshots to this JSONL path (watch with `top`)",
    )
    run.add_argument(
        "--profile",
        default=None,
        help="sample wall-clock stacks (parent and workers) into this "
        "collapsed-stack file (render with `python -m repro.obs flame`)",
    )
    run.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        help=f"sampling rate for --profile (default {_profile.DEFAULT_HZ})",
    )
    run.set_defaults(func=_cmd_run)

    procs = sub.add_parser("procedures", help="list registered procedures")
    procs.set_defaults(func=_cmd_procedures)

    fp = sub.add_parser("fingerprint", help="print job fingerprints without running")
    fp.add_argument("jobs", help="JSONL job file")
    fp.set_defaults(func=_cmd_fingerprint)

    store = sub.add_parser("store", help="inspect/maintain the answer+artifact store")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    def _store_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("cache_dir", help="cache directory holding the store")
        p.add_argument(
            "--namespace", default="answers", help="store namespace (file stem)"
        )

    st = store_sub.add_parser("stats", help="print a JSON store summary")
    _store_common(st)
    st.set_defaults(func=_cmd_store_stats)

    vac = store_sub.add_parser("vacuum", help="compact the store file")
    _store_common(vac)
    vac.set_defaults(func=_cmd_store_vacuum)

    imp = store_sub.add_parser("import", help="import a legacy JSONL answer file")
    _store_common(imp)
    imp.add_argument("jsonl", help="legacy JSONL answer file")
    imp.add_argument(
        "--replace",
        action="store_true",
        help="imported records replace existing store rows",
    )
    imp.set_defaults(func=_cmd_store_import)

    _top.add_parser(sub)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
