"""``python -m repro.serve`` — batch solver service CLI.

Subcommands:

* ``run JOBS.jsonl [--workers N] [--out RESULTS.jsonl] [--cache-dir D]
  [--repeat K] [--profile P.collapsed] [--retries K] [--strict]`` —
  execute a JSONL job file and write one result record per job (in job
  order); ``--profile`` samples wall-clock stacks across the parent and
  every worker into one collapsed-stack file.  ``--retries``/
  ``--budget-multiplier`` turn on budget-escalation retry for tripped
  jobs; ``--max-queue-depth``/``--admit-rate`` turn on admission
  control.  The run always prints a per-outcome summary line; the exit
  status is nonzero when any job was dead-lettered, and ``--strict``
  extends that to any UNKNOWN result.
* ``dlq list|retry|purge CACHE_DIR`` — inspect the dead-letter queue
  behind a cache directory, re-run its payload-bearing records (decided
  answers leave the queue), or drop every record.
* ``procedures`` — list the registered decision procedures.
* ``fingerprint JOBS.jsonl`` — print each job's fingerprint without
  running anything (what the cache would key on).
* ``store stats|vacuum|import`` — inspect and maintain the SQLite
  answer + artifact store behind a cache directory (``stats`` prints a
  JSON summary; ``vacuum`` compacts the file; ``import`` folds a legacy
  JSONL answer file in, ``--replace`` letting its records win).
* ``top [METRICS.jsonl]`` — live dashboard over the snapshot file a
  metrics-enabled batch exports (``run --metrics`` or
  ``REPRO_METRICS``): throughput, queue depth, worker utilization,
  cache hit rate, per-procedure latency percentiles.

Job file format — one JSON object per line::

    {"procedure": "nonempty_pl",
     "instances": [{"factory": "repro.workloads.scaling:pl_counter_sws",
                    "args": [10]}],
     "kwargs": {},
     "budget": {"deadline_s": 5.0, "step_budget": 200000},
     "label": "counter-10"}

``instances`` build the procedure's positional arguments, each either a
``factory`` spec (``module:function`` restricted to ``repro.workloads``
modules, plus ``args``/``kwargs`` for it) or an inline ``pickle``
(base64) of a prebuilt instance.  ``budget`` uses the
:meth:`repro.guard.Budget.as_dict` fields.  Lines starting with ``#``
and blank lines are skipped.

With ``--repeat K``, factory arguments equal to the string ``"@round"``
are replaced by the round index, so each round can build an *edited*
version of the instance.  PL nonempty/validate jobs then reuse one
:class:`repro.delta.Session` per fingerprint across rounds — re-checks
run incrementally (cached / replay / warm) instead of resubmitting, and
the summary reports the per-mode counts.

Result records carry the job's label, procedure, fingerprint, verdict
summary (via ``Answer.as_dict`` when available), whether it was served
from cache, and the batch-level stats as a trailing ``_summary`` record.
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import pickle
import sys
import time
from typing import Any

from repro import metrics
from repro.guard import Budget
from repro.obs import profile as _profile
from repro.serve import top as _top
from repro.serve.cache import AnswerCache
from repro.serve.fingerprint import job_fingerprint
from repro.serve.registry import procedure_names, resolve_factory
from repro.serve.resilience import AdmissionControl, DeadLetterQueue, RetryPolicy
from repro.serve.scheduler import JobSpec, SolverService
from repro.serve.store import Store


def _substitute_round(spec: Any, round_index: int) -> Any:
    """Replace ``"@round"`` placeholders in a factory spec's arguments.

    Lets a job file describe an *edited* instance per repeat round, e.g.
    ``{"factory": "repro.workloads.editing:edited_menu", "kwargs":
    {"step": "@round"}}`` — round 0 builds the base version, later
    rounds its successive edits, so ``--repeat`` exercises the delta
    path instead of resubmitting one frozen instance.
    """
    if not (isinstance(spec, dict) and "factory" in spec):
        return spec
    sub = lambda v: round_index if v == "@round" else v  # noqa: E731
    out = dict(spec)
    out["args"] = [sub(v) for v in spec.get("args", ())]
    out["kwargs"] = {k: sub(v) for k, v in spec.get("kwargs", {}).items()}
    return out


def _build_instance(spec: Any, round_index: int = 0) -> Any:
    spec = _substitute_round(spec, round_index)
    if isinstance(spec, dict) and "factory" in spec:
        factory = resolve_factory(spec["factory"])
        return factory(*spec.get("args", ()), **spec.get("kwargs", {}))
    if isinstance(spec, dict) and "pickle" in spec:
        return pickle.loads(base64.b64decode(spec["pickle"]))
    if isinstance(spec, (str, int, float, bool)) or spec is None:
        return spec
    raise ValueError(
        "instance spec must be a factory/pickle object or a JSON scalar, "
        f"got {spec!r}"
    )


class _RawJob:
    """A parsed job line whose instances rebuild per repeat round."""

    def __init__(
        self,
        procedure: str,
        specs: tuple[Any, ...],
        kwargs: dict[str, Any],
        budget: Budget | None,
        label: str,
    ) -> None:
        self.procedure = procedure
        self.specs = specs
        self.kwargs = kwargs
        self.budget = budget
        self.label = label

    def build(self, round_index: int = 0) -> JobSpec:
        try:
            args = tuple(
                _build_instance(spec, round_index) for spec in self.specs
            )
        except (ValueError, TypeError) as error:
            raise SystemExit(f"job {self.label!r}: {error}") from None
        return JobSpec(self.procedure, args, self.kwargs, self.budget, self.label)


def _load_jobs(path: str) -> list[_RawJob]:
    jobs: list[_RawJob] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(f"{path}:{lineno}: bad JSON: {error}") from None
            try:
                procedure = record["procedure"]
                specs = tuple(record.get("instances", ()))
                kwargs = dict(record.get("kwargs", {}))
                budget_spec = record.get("budget")
                budget = Budget.from_dict(budget_spec) if budget_spec else None
                label = record.get("label") or f"{procedure}#{lineno}"
            except (KeyError, ValueError, TypeError) as error:
                raise SystemExit(f"{path}:{lineno}: bad job: {error}") from None
            jobs.append(_RawJob(procedure, specs, kwargs, budget, label))
    return jobs


def _result_record(job: JobSpec, handle: Any, result: Any) -> dict[str, Any]:
    record: dict[str, Any] = {
        "label": job.label,
        "procedure": job.procedure,
        "fingerprint": handle.fingerprint,
        "from_cache": handle.from_cache,
        "deduped": handle.deduped,
        "outcome": _outcome(handle, result),
        "attempts": handle.attempts,
    }
    if hasattr(result, "as_dict"):
        record.update(result.as_dict())
    elif hasattr(result, "verdict"):
        record["verdict"] = getattr(result.verdict, "value", str(result.verdict))
    else:
        record["result"] = repr(result)
    return record


def _outcome(handle: Any, result: Any) -> str:
    """One word for the summary line: how this job's handle resolved."""
    if getattr(handle, "rejected", False):
        return "rejected"
    if getattr(handle, "dead_lettered", False):
        return "dead_lettered"
    verdict = getattr(getattr(result, "verdict", None), "value", None)
    return "unknown" if verdict == "unknown" else "decided"


def _session_record(
    job: JobSpec, session: Any, answer: Any, mode: str
) -> dict[str, Any]:
    """A result record for a job served inline by a delta Session."""
    verdict = getattr(getattr(answer, "verdict", None), "value", None)
    record: dict[str, Any] = {
        "label": job.label,
        "procedure": job.procedure,
        "fingerprint": session.fingerprint,
        "from_cache": mode == "cached",
        "deduped": False,
        "outcome": "unknown" if verdict == "unknown" else "decided",
        "attempts": 1,
        "delta_mode": mode,
    }
    if hasattr(answer, "as_dict"):
        record.update(answer.as_dict())
    return record


def _build_resilience(
    args: argparse.Namespace,
) -> tuple[RetryPolicy | None, AdmissionControl | None]:
    retry = None
    if args.retries > 1:
        retry = RetryPolicy(
            max_attempts=args.retries, budget_multiplier=args.budget_multiplier
        )
    admission = None
    if args.max_queue_depth is not None or args.admit_rate is not None:
        admission = AdmissionControl(
            max_queue_depth=args.max_queue_depth, rate=args.admit_rate
        )
    return retry, admission


def _cmd_run(args: argparse.Namespace) -> int:
    raw_jobs = _load_jobs(args.jobs)
    if not raw_jobs:
        print(f"{args.jobs}: no jobs", file=sys.stderr)
        return 1
    if args.metrics:
        # Truncate: one batch, one snapshot stream (watch it live with
        # ``python -m repro.serve top <path>``).
        metrics.configure(path=args.metrics, mode="w")
    if args.profile:
        # Start before the service so the worker pool sees profiling
        # enabled and sets up per-pid spools for its children.
        _profile.configure(path=args.profile, hz=args.profile_hz)
    cache = AnswerCache(directory=args.cache_dir) if args.cache_dir else None
    retry_policy, admission = _build_resilience(args)
    service = SolverService(
        workers=args.workers,
        cache=cache,
        retry_policy=retry_policy,
        admission=admission,
    )
    started = time.perf_counter()
    rounds = max(1, args.repeat)
    sessions: dict[str, Any] = {}
    line_keys: dict[int, str] = {}
    jobs: list[JobSpec] = []
    records: list[dict[str, Any]] = []
    if rounds > 1:
        # `--repeat` opens one delta Session per job fingerprint: rounds
        # after the first go through edit/recheck (incremental when the
        # spec only moved a little — see `"@round"` factory substitution)
        # instead of resubmitting against the answer cache.
        from repro.core.sws import SWS
        from repro.delta.engine import SUPPORTED_PROCEDURES
        from repro.delta.session import Session
    try:
        for rnd in range(rounds):
            # Each repeat round drains before the next submits, so
            # non-session rounds after the first hit the warm answer
            # cache instead of deduping inside one batch.
            entries: list[tuple[JobSpec, Any]] = []
            for idx, raw in enumerate(raw_jobs):
                job = raw.build(rnd)
                jobs.append(job)
                eligible = (
                    rounds > 1
                    and job.procedure in SUPPORTED_PROCEDURES
                    and len(job.args) == 1
                    and isinstance(job.args[0], SWS)
                )
                if not eligible:
                    entries.append(
                        (
                            job,
                            service.submit(
                                job.procedure,
                                *job.args,
                                budget=job.budget,
                                label=job.label,
                                **job.kwargs,
                            ),
                        )
                    )
                    continue
                if idx not in line_keys:
                    key = job_fingerprint(job.procedure, job.args, job.kwargs)
                    line_keys[idx] = key
                else:
                    key = line_keys[idx]
                session = sessions.get(key)
                if session is None:
                    session = Session(
                        job.args[0],
                        job.procedure,
                        cache=cache,
                        budget=job.budget,
                        **job.kwargs,
                    )
                    sessions[key] = session
                    answer = session.check()
                    entries.append(
                        (job, _session_record(job, session, answer, "solve"))
                    )
                else:
                    session.edit(job.args[0])
                    result = session.recheck(job.budget)
                    entries.append(
                        (
                            job,
                            _session_record(
                                job, session, result.answer, result.mode
                            ),
                        )
                    )
            service.drain()
            for job, item in entries:
                if isinstance(item, dict):
                    records.append(item)
                else:
                    records.append(_result_record(job, item, item.result()))
    finally:
        service.close()
        if cache is not None:
            cache.close()
        if args.metrics:
            metrics.write_snapshot()  # final frame for serve top / obs check
        if args.profile:
            # service.close() already merged the worker spools.
            _profile.configure(enabled=False)
            written = _profile.write_collapsed()
            if written:
                print(
                    f"profile: {written} "
                    f"(render with `python -m repro.obs flame {written}`)",
                    file=sys.stderr,
                )
    elapsed = time.perf_counter() - started
    summary = {"_summary": service.stats(), "elapsed_s": round(elapsed, 6)}
    if sessions:
        modes: dict[str, int] = {}
        rechecks = 0
        for session in sessions.values():
            rechecks += session.rechecks
            for mode, count in session.modes.items():
                modes[mode] = modes.get(mode, 0) + count
        summary["delta"] = {
            "sessions": len(sessions),
            "rechecks": rechecks,
            "modes": dict(sorted(modes.items())),
        }
    out = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout
    try:
        for record in records:
            out.write(json.dumps(record, sort_keys=True) + "\n")
        out.write(json.dumps(summary, sort_keys=True) + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    stats = service.stats()
    print(
        f"{len(jobs)} jobs: {stats['jobs_executed']} executed, "
        f"{stats['jobs_deduped']} deduped, "
        f"{stats['cache']['hits']} cache hits, "
        f"{elapsed:.3f}s",
        file=sys.stderr,
    )
    outcomes = {"decided": 0, "unknown": 0, "rejected": 0, "dead_lettered": 0}
    for record in records:
        outcomes[record["outcome"]] += 1
    if sessions:
        delta_stats = summary["delta"]
        print(
            f"delta: {delta_stats['sessions']} session(s), "
            f"{delta_stats['rechecks']} recheck(s): "
            + (
                ", ".join(
                    f"{count} {mode}"
                    for mode, count in delta_stats["modes"].items()
                )
                or "none"
            ),
            file=sys.stderr,
        )
    resilience = stats["resilience"]
    print(
        "outcomes: "
        + ", ".join(f"{count} {name}" for name, count in outcomes.items())
        + f"; {resilience['retried']} retried, "
        f"{resilience['worker_lost']} worker-lost, "
        f"{resilience['dlq_depth']} in dlq",
        file=sys.stderr,
    )
    if outcomes["dead_lettered"]:
        print(
            f"FAIL: {outcomes['dead_lettered']} job(s) dead-lettered "
            "(inspect with `python -m repro.serve dlq list <cache-dir>`)",
            file=sys.stderr,
        )
        return 1
    if args.strict and (outcomes["unknown"] or outcomes["rejected"]):
        print(
            f"FAIL (--strict): {outcomes['unknown']} unknown, "
            f"{outcomes['rejected']} rejected",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_procedures(_args: argparse.Namespace) -> int:
    for name in procedure_names():
        print(name)
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    for raw in _load_jobs(args.jobs):
        job = raw.build()
        key = job_fingerprint(job.procedure, job.args, job.kwargs)
        print(f"{key}  {job.label}")
    return 0


def _open_store(args: argparse.Namespace) -> Store:
    path = os.path.join(args.cache_dir, f"{args.namespace}.sqlite3")
    if not os.path.exists(path):
        raise SystemExit(f"{path}: no store file")
    return Store(path)


def _cmd_store_stats(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_store_vacuum(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        before = store.stats()["file_bytes"]
        store.vacuum()
        after = store.stats()["file_bytes"]
    print(f"vacuumed: {before} -> {after} bytes", file=sys.stderr)
    return 0


def _cmd_store_import(args: argparse.Namespace) -> int:
    os.makedirs(args.cache_dir, exist_ok=True)
    path = os.path.join(args.cache_dir, f"{args.namespace}.sqlite3")
    with Store(path) as store:
        imported = store.import_jsonl(args.jsonl, replace=args.replace)
        total = store.answer_count()
    print(f"imported {imported} records from {args.jsonl}; store holds {total}")
    return 0


def _cmd_dlq_list(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        records = store.list_dlq()
        if args.json:
            for record in records:
                print(json.dumps(record.as_dict(), sort_keys=True))
        else:
            if not records:
                print("dlq: empty", file=sys.stderr)
            for record in records:
                last_trip = record.trips[-1] if record.trips else {}
                print(
                    f"{record.fingerprint[:16]}  {record.procedure:<24} "
                    f"{record.label:<24} attempts={record.attempts} "
                    f"reason={record.reason!r} last_trip={last_trip}"
                )
    return 0


def _cmd_dlq_retry(args: argparse.Namespace) -> int:
    """Re-run dead-lettered jobs; decided answers leave the queue.

    Only payload-bearing records can re-run (the payload is the pickled
    ``(args, kwargs)``).  Each retry starts from the record's last
    escalated budget — optionally re-escalated ``--retries`` more times.
    """
    cache = AnswerCache(directory=args.cache_dir, namespace=args.namespace)
    retry_policy = (
        RetryPolicy(
            max_attempts=args.retries, budget_multiplier=args.budget_multiplier
        )
        if args.retries > 1
        else None
    )
    service = SolverService(
        workers=args.workers, cache=cache, retry_policy=retry_policy
    )
    dlq = DeadLetterQueue(cache.store)
    recovered = skipped = still_dead = 0
    try:
        records = dlq.records()
        if args.fingerprint:
            records = [
                r for r in records if r.fingerprint.startswith(args.fingerprint)
            ]
        handles = []
        for record in records:
            job = record.job()
            if job is None:
                skipped += 1
                print(
                    f"skip {record.fingerprint[:16]}: no runnable payload",
                    file=sys.stderr,
                )
                continue
            job_args, job_kwargs = job
            budget = (
                Budget.from_dict(record.last_budget)
                if record.last_budget
                else None
            )
            handles.append(
                (
                    record,
                    service.submit(
                        record.procedure,
                        *job_args,
                        budget=budget,
                        label=record.label,
                        **job_kwargs,
                    ),
                )
            )
        service.drain()
        for record, handle in handles:
            result = handle.result()
            verdict = getattr(getattr(result, "verdict", None), "value", None)
            if verdict != "unknown":
                dlq.remove(record.fingerprint)
                recovered += 1
                print(f"recovered {record.fingerprint[:16]}: {verdict}")
            else:
                still_dead += 1
                detail = getattr(result, "detail", None)
                print(
                    f"still unknown {record.fingerprint[:16]}: {detail}",
                    file=sys.stderr,
                )
    finally:
        service.close()
        cache.close()
    print(
        f"dlq retry: {recovered} recovered, {still_dead} still dead, "
        f"{skipped} skipped",
        file=sys.stderr,
    )
    return 0 if still_dead == 0 else 1


def _cmd_dlq_purge(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        dropped = store.purge_dlq()
    print(f"dlq: purged {dropped} record(s)", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Batch solver service over the repro decision procedures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a JSONL job file")
    run.add_argument("jobs", help="JSONL job file")
    run.add_argument("--workers", type=int, default=0, help="worker processes (0 = in-process)")
    run.add_argument("--out", default=None, help="results JSONL path (default: stdout)")
    run.add_argument("--cache-dir", default=None, help="on-disk answer cache directory")
    run.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the job list K rounds; PL nonempty/validate jobs reuse "
        'one delta Session per fingerprint ("@round" factory args build '
        "an edited instance per round)",
    )
    run.add_argument(
        "--metrics",
        default=None,
        help="export metrics snapshots to this JSONL path (watch with `top`)",
    )
    run.add_argument(
        "--profile",
        default=None,
        help="sample wall-clock stacks (parent and workers) into this "
        "collapsed-stack file (render with `python -m repro.obs flame`)",
    )
    run.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        help=f"sampling rate for --profile (default {_profile.DEFAULT_HZ})",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=1,
        help="max executions per tripped job (>1 enables budget-escalation retry)",
    )
    run.add_argument(
        "--budget-multiplier",
        type=float,
        default=4.0,
        help="budget growth factor per retry (with --retries)",
    )
    run.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="reject submissions once this many jobs are queued",
    )
    run.add_argument(
        "--admit-rate",
        type=float,
        default=None,
        help="token-bucket admission rate (jobs/s) per source",
    )
    run.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on any UNKNOWN or rejected result "
        "(dead-lettered jobs always fail the run)",
    )
    run.set_defaults(func=_cmd_run)

    procs = sub.add_parser("procedures", help="list registered procedures")
    procs.set_defaults(func=_cmd_procedures)

    fp = sub.add_parser("fingerprint", help="print job fingerprints without running")
    fp.add_argument("jobs", help="JSONL job file")
    fp.set_defaults(func=_cmd_fingerprint)

    store = sub.add_parser("store", help="inspect/maintain the answer+artifact store")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    def _store_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("cache_dir", help="cache directory holding the store")
        p.add_argument(
            "--namespace", default="answers", help="store namespace (file stem)"
        )

    st = store_sub.add_parser("stats", help="print a JSON store summary")
    _store_common(st)
    st.set_defaults(func=_cmd_store_stats)

    vac = store_sub.add_parser("vacuum", help="compact the store file")
    _store_common(vac)
    vac.set_defaults(func=_cmd_store_vacuum)

    imp = store_sub.add_parser("import", help="import a legacy JSONL answer file")
    _store_common(imp)
    imp.add_argument("jsonl", help="legacy JSONL answer file")
    imp.add_argument(
        "--replace",
        action="store_true",
        help="imported records replace existing store rows",
    )
    imp.set_defaults(func=_cmd_store_import)

    dlq = sub.add_parser("dlq", help="inspect/re-run/purge the dead-letter queue")
    dlq_sub = dlq.add_subparsers(dest="dlq_command", required=True)

    dl = dlq_sub.add_parser("list", help="print dead-lettered jobs")
    _store_common(dl)
    dl.add_argument("--json", action="store_true", help="one JSON object per record")
    dl.set_defaults(func=_cmd_dlq_list)

    dr = dlq_sub.add_parser("retry", help="re-run payload-bearing DLQ records")
    _store_common(dr)
    dr.add_argument("--fingerprint", default=None, help="only records with this fingerprint prefix")
    dr.add_argument("--workers", type=int, default=0, help="worker processes (0 = in-process)")
    dr.add_argument("--retries", type=int, default=1, help="max executions per job (>1 re-escalates budgets)")
    dr.add_argument("--budget-multiplier", type=float, default=4.0, help="budget growth factor per retry")
    dr.set_defaults(func=_cmd_dlq_retry)

    dp = dlq_sub.add_parser("purge", help="drop every DLQ record")
    _store_common(dp)
    dp.set_defaults(func=_cmd_dlq_purge)

    _top.add_parser(sub)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
