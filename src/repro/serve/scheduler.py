"""Job scheduler: dedup, caching, budgets, and cancellation.

:class:`SolverService` is the front door of the serving layer.  Callers
:meth:`~SolverService.submit` decision-procedure jobs and get
:class:`JobHandle` futures back; :meth:`~SolverService.drain` (or
``handle.result()``) runs everything that is still pending.

The pipeline per submission:

1. **Fingerprint.**  The job is keyed by
   :func:`repro.serve.fingerprint.job_fingerprint` — procedure name plus
   the canonical form of its arguments.  Budgets are not part of the
   key (decided answers are budget-independent; UNKNOWN is never
   cached).
2. **Cache probe.**  A hit resolves the handle immediately
   (``handle.from_cache`` is true) without queueing anything.
3. **In-flight dedup.**  If an un-drained entry with the same
   fingerprint exists, the new handle joins it — one computation, many
   handles (``handle.deduped`` is true for the joiners).
4. **Queue.**  Otherwise a new entry is queued.  Nothing executes until
   a drain, so a whole batch dedups before any work starts and a queued
   job can still be cancelled.

Execution happens either in-process (``workers=0``, the default — jobs
run sequentially in the draining thread) or on a
:class:`repro.serve.pool.WorkerPool` (``workers>=1`` — jobs are
dispatched to worker processes and drained concurrently).

Cancellation: ``handle.cancel()`` or a fired
:class:`~repro.guard.CancelToken` passed at submit time.  An entry whose
handles are all cancelled before dispatch is **skipped** — the
procedure is never called — and resolves to an UNKNOWN answer with
detail :data:`CANCELLED_DETAIL`.  In-process entries additionally get a
service-side token wired into their :class:`~repro.guard.Guard`, so
cancelling mid-run trips the procedure cooperatively at its next
checkpoint.

Fault tolerance (all opt-in, composed from
:mod:`repro.serve.resilience`):

* A :class:`~repro.serve.resilience.RetryPolicy` re-queues
  guard-tripped entries with escalated budgets; the drain loop waits
  out each backoff (cancellation-aware) and re-runs them.  Entries stay
  dedup-visible across attempts — a second ``submit`` of a retrying
  fingerprint joins it, it never forks a parallel computation.
* An :class:`~repro.serve.resilience.AdmissionControl` gates ``submit``:
  inadmissible jobs resolve immediately to
  :data:`~repro.serve.resilience.REJECTED_DETAIL` UNKNOWN with
  ``handle.rejected`` set.  Cache hits and dedup joins bypass the gate.
* A worker that dies abruptly (OOM kill, segfault, chaos ``os._exit``)
  breaks the whole :class:`ProcessPoolExecutor`; the drain catches
  :class:`BrokenProcessPool`, **respawns the pool in place**, and
  re-dispatches the lost entries (each loss re-draws its chaos fate via
  a fresh attempt number).  An entry lost more than
  ``worker_redispatch_limit`` times resolves to
  :data:`~repro.serve.resilience.WORKER_LOST_DETAIL` UNKNOWN and is
  dead-lettered.
* Jobs that exhaust escalation, or die too often, land in the
  :class:`~repro.serve.resilience.DeadLetterQueue` (persisted in the
  SQLite store when the cache has a disk tier) for
  ``python -m repro.serve dlq list|retry|purge``.

The drain invariant is unchanged and now fault-proof: **every handle
resolves** — decided, UNKNOWN (tripped / cancelled / worker-lost /
batch-aborted), or rejected — no matter which workers died.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent import futures as _futures
from typing import Any, Iterable, Mapping, Sequence

from repro import artifacts, metrics
from repro._stats import STATS
from repro.analysis.verdict import Answer
from repro.guard import Budget, CancelToken, Guard
from repro.serve.cache import AnswerCache, default_cache_directory
from repro.serve.fingerprint import job_fingerprint
from repro.serve.pool import BrokenProcessPool, WorkerPool
from repro.serve.registry import get_procedure
from repro.serve.resilience import (
    REJECTED_DETAIL,
    WORKER_LOST_DETAIL,
    AdmissionControl,
    DeadLetterQueue,
    DLQRecord,
    RetryPolicy,
)
from repro.serve.store import StoreArtifactProvider

__all__ = [
    "BATCH_ABORTED_DETAIL",
    "CANCELLED_DETAIL",
    "JobHandle",
    "JobSpec",
    "SolverService",
]

#: Sentinel ``_await_pooled`` returns when the entry's worker died and
#: broke the pool — the caller must respawn and decide re-dispatch.
_WORKER_LOST = object()

#: ``Answer.detail`` of jobs cancelled before execution.
CANCELLED_DETAIL = "cancelled before execution"

#: ``Answer.detail`` of jobs stranded when an earlier job in the same
#: drain raised: they resolve to UNKNOWN instead of hanging their handles.
BATCH_ABORTED_DETAIL = "batch aborted: an earlier job's procedure raised"

#: While a pooled job runs, the awaiting drain merges worker spools this
#: often so ``serve top`` shows live progress instead of a silent gap.
HEARTBEAT_INTERVAL_S = 1.0


class JobSpec:
    """A declarative job for :meth:`SolverService.run_batch`."""

    __slots__ = ("procedure", "args", "kwargs", "budget", "label")

    def __init__(
        self,
        procedure: str,
        args: Sequence[Any] = (),
        kwargs: Mapping[str, Any] | None = None,
        budget: Budget | None = None,
        label: str | None = None,
    ) -> None:
        self.procedure = procedure
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})
        self.budget = budget
        self.label = label or procedure


class _EntryToken(CancelToken):
    """The service-side token wired into an entry's :class:`Guard`.

    Besides the explicitly-fired flag (set by ``handle.cancel()`` via
    ``_on_handle_cancelled``), it *polls the entry's handles*: a handle
    whose submit-time :class:`CancelToken` fires mid-run never calls
    back into the service, so the guard checkpoint consulting this
    token is the only place that can observe it.  Once every handle is
    cancelled the flag latches and the running procedure trips at its
    next checkpoint.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: "_Entry") -> None:
        super().__init__()
        self._entry = entry

    def cancelled(self) -> bool:
        if super().cancelled():
            return True
        handles = self._entry.handles
        if handles and all(h.cancelled for h in handles):
            self.cancel()  # latch, so later checks skip the handle scan
            return True
        return False


class _Entry:
    """One unique computation; possibly shared by several handles."""

    __slots__ = (
        "key",
        "procedure",
        "args",
        "kwargs",
        "budget",
        "handles",
        "done",
        "result",
        "dispatched",
        "skipped",
        "token",
        "future",
        "t_submitted",
        "t_dispatched",
        "attempts",
        "dispatch_seq",
        "worker_lost",
        "trips",
        "not_before",
        "last_backoff_s",
        "dead_lettered",
    )

    def __init__(
        self,
        key: str,
        procedure: str,
        args: tuple,
        kwargs: dict,
        budget: Budget | None,
    ) -> None:
        self.key = key
        self.procedure = procedure
        self.args = args
        self.kwargs = kwargs
        self.budget = budget
        self.handles: list[JobHandle] = []
        self.done = threading.Event()
        self.result: Any = None
        self.dispatched = False
        self.skipped = False
        # Service-side token: fires when every handle cancels — whether
        # via handle.cancel() or a submit-time token firing mid-run — so
        # an in-process run trips cooperatively at its next checkpoint.
        self.token = _EntryToken(self)
        self.future: Any = None
        self.t_submitted = time.perf_counter()
        self.t_dispatched: float | None = None
        # Resilience bookkeeping.  ``attempts`` counts completed
        # executions (what RetryPolicy.max_attempts bounds);
        # ``dispatch_seq`` counts pool dispatches including worker-lost
        # re-dispatches — it feeds the chaos key so a re-dispatched job
        # re-draws its fate instead of dying forever.
        self.attempts = 0
        self.dispatch_seq = 0
        self.worker_lost = 0
        self.trips: list[dict] = []
        self.not_before: float | None = None
        self.last_backoff_s: float = 0.0
        self.dead_lettered = False

    def all_cancelled(self) -> bool:
        return bool(self.handles) and all(h.cancelled for h in self.handles)

    def resolve(self, result: Any) -> None:
        self.result = result
        self.done.set()

    @property
    def label(self) -> str:
        return self.handles[0].label if self.handles else self.procedure


class JobHandle:
    """Future-like handle for one submitted job."""

    def __init__(
        self,
        service: "SolverService",
        entry: _Entry,
        *,
        label: str,
        cancel_token: CancelToken | None,
        from_cache: bool,
        deduped: bool,
        rejected: bool = False,
    ) -> None:
        self._service = service
        self._entry = entry
        self._cancelled = False
        self._cancel_token = cancel_token
        self.label = label
        self.from_cache = from_cache
        self.deduped = deduped
        self.rejected = rejected

    @property
    def fingerprint(self) -> str:
        return self._entry.key

    @property
    def procedure(self) -> str:
        return self._entry.procedure

    @property
    def attempts(self) -> int:
        """How many times the job executed (>1 = it was retried)."""
        return self._entry.attempts

    @property
    def dead_lettered(self) -> bool:
        """Whether the job exhausted its retries and landed in the DLQ."""
        return self._entry.dead_lettered

    @property
    def cancelled(self) -> bool:
        """Whether this handle asked for cancellation (directly or via token)."""
        if self._cancelled:
            return True
        token = self._cancel_token
        return token is not None and token.cancelled()

    def cancel(self) -> bool:
        """Request cancellation; returns True if the job had not finished.

        A queued entry whose handles are all cancelled is skipped at the
        next drain without ever calling the procedure.  For an entry
        already running in-process, the service token trips it at its
        next guard checkpoint; a pool job already running in a worker
        completes (bounded by its budget) but this handle still reports
        ``cancelled``.
        """
        if self._entry.done.is_set():
            return False
        self._cancelled = True
        self._service._on_handle_cancelled(self._entry)
        return True

    def done(self) -> bool:
        return self._entry.done.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """The job's result, draining the service if still pending."""
        if not self._entry.done.is_set():
            self._service.drain()
        if not self._entry.done.wait(timeout):
            raise TimeoutError(f"job {self.label!r} did not finish in {timeout}s")
        return self._entry.result


class SolverService:
    """Concurrent solver front end with caching, dedup, and recovery.

    ``workers=0`` executes in-process; ``workers>=1`` uses a process
    pool.  ``cache_dir`` (default: ``$REPRO_CACHE_DIR`` if set) enables
    the on-disk cache tier.  ``retry_policy`` / ``admission`` opt into
    budget-escalation retry and submit-side admission control;
    ``worker_redispatch_limit`` bounds how many times one entry may
    lose its worker before it is dead-lettered (the DLQ defaults to one
    backed by the cache's store when a disk tier exists).
    """

    def __init__(
        self,
        workers: int = 0,
        cache: AnswerCache | None = None,
        cache_dir: str | None = None,
        cache_capacity: int = 4096,
        retry_policy: RetryPolicy | None = None,
        admission: AdmissionControl | None = None,
        dlq: DeadLetterQueue | None = None,
        worker_redispatch_limit: int = 2,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if worker_redispatch_limit < 0:
            raise ValueError("worker_redispatch_limit must be >= 0")
        self.workers = workers
        self._owns_cache = cache is None
        if cache is None:
            cache = AnswerCache(
                capacity=cache_capacity,
                directory=cache_dir if cache_dir is not None else default_cache_directory(),
            )
        self.cache = cache
        self.retry_policy = retry_policy
        self.admission = admission
        self.dlq = dlq if dlq is not None else DeadLetterQueue(self.cache.store)
        self.worker_redispatch_limit = worker_redispatch_limit
        self._lock = threading.Lock()
        self._pending: OrderedDict[str, _Entry] = OrderedDict()
        self._inflight: dict[str, _Entry] = {}
        # Lifetime pool-dispatch count per fingerprint.  Feeds the
        # chaos-injection attempt key, so a job re-submitted after an
        # earlier entry resolved (e.g. its UNKNOWN was never cached)
        # keeps drawing *fresh* chaos fates instead of deterministically
        # replaying its first entry's kills forever.
        self._dispatch_history: dict[str, int] = {}
        self._pool: WorkerPool | None = None
        self.jobs_executed = 0
        self.jobs_deduped = 0
        self.jobs_skipped = 0
        self.jobs_retried = 0
        self.jobs_rejected = 0
        self.jobs_redispatched = 0
        self.jobs_worker_lost = 0
        self.jobs_dead_lettered = 0

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        procedure: str,
        *args: Any,
        budget: Budget | None = None,
        cancel_token: CancelToken | None = None,
        label: str | None = None,
        source: str | None = None,
        **kwargs: Any,
    ) -> JobHandle:
        """Queue one job; returns a :class:`JobHandle`.

        ``budget`` bounds the execution (per job, not per handle — on a
        dedup join the *first* submission's budget applies).
        ``cancel_token`` marks this handle cancelled once fired; fired
        before the drain dispatches the entry, the procedure never runs.
        ``source`` is the admission-control tenant tag: each source gets
        its own token bucket when the service has an
        :class:`~repro.serve.resilience.AdmissionControl`.  An
        inadmissible job comes back already resolved
        (:data:`~repro.serve.resilience.REJECTED_DETAIL` UNKNOWN,
        ``handle.rejected``); cache hits and dedup joins are never
        rejected — they add no work.
        """
        get_procedure(procedure)  # fail fast on unknown names
        key = job_fingerprint(procedure, args, kwargs)
        label = label or procedure
        with self._lock:
            entry = self._pending.get(key) or self._inflight.get(key)
            if entry is not None:
                handle = JobHandle(
                    self,
                    entry,
                    label=label,
                    cancel_token=cancel_token,
                    from_cache=False,
                    deduped=True,
                )
                entry.handles.append(handle)
                self.jobs_deduped += 1
                STATS.serve_jobs_deduped += 1
                metrics.counter("serve.jobs.deduped").inc()
                return handle
        cached = self.cache.get(key, procedure)
        if cached is not None:
            entry = _Entry(key, procedure, args, dict(kwargs), budget)
            entry.resolve(cached)
            metrics.counter("serve.jobs.completed", outcome="cached").inc()
            return JobHandle(
                self,
                entry,
                label=label,
                cancel_token=cancel_token,
                from_cache=True,
                deduped=False,
            )
        with self._lock:
            # Re-check: another thread may have queued the same key
            # while we probed the cache.
            entry = self._pending.get(key) or self._inflight.get(key)
            if entry is None:
                if self.admission is not None:
                    reason = self.admission.admit(source, len(self._pending))
                    if reason is not None:
                        return self._reject(
                            key, procedure, args, kwargs, budget,
                            label=label, cancel_token=cancel_token,
                            reason=reason,
                        )
                entry = _Entry(key, procedure, args, dict(kwargs), budget)
                self._pending[key] = entry
                deduped = False
            else:
                deduped = True
                self.jobs_deduped += 1
                STATS.serve_jobs_deduped += 1
                metrics.counter("serve.jobs.deduped").inc()
            metrics.gauge("serve.queue.depth").set(len(self._pending))
            handle = JobHandle(
                self,
                entry,
                label=label,
                cancel_token=cancel_token,
                from_cache=False,
                deduped=deduped,
            )
            entry.handles.append(handle)
            return handle

    def session(
        self,
        instance: Any,
        procedure: str = "nonempty_pl",
        *,
        budget: Budget | None = None,
        **kwargs: Any,
    ) -> Any:
        """An incremental editing session wired into this service.

        Returns a :class:`repro.delta.session.Session` sharing this
        service's answer cache (so decided re-check answers are visible
        to later ``submit`` calls under the same delta-aware job
        fingerprints) and its store (so ``SearchState`` snapshots
        persist in the ``search_states`` table across processes).  The
        session solves inline on the caller's thread — edits are
        latency-sensitive, not throughput work for the pool.
        """
        from repro.delta.session import Session

        return Session(
            instance,
            procedure,
            cache=self.cache,
            store=self.cache.store,
            budget=budget,
            **kwargs,
        )

    def _reject(
        self,
        key: str,
        procedure: str,
        args: tuple,
        kwargs: Mapping[str, Any],
        budget: Budget | None,
        *,
        label: str,
        cancel_token: CancelToken | None,
        reason: str,
    ) -> JobHandle:
        """An already-resolved REJECTED handle (admission said no)."""
        self.jobs_rejected += 1
        metrics.counter("serve.rejected", reason=reason).inc()
        entry = _Entry(key, procedure, args, dict(kwargs), budget)
        entry.resolve(Answer.unknown(detail=REJECTED_DETAIL))
        return JobHandle(
            self,
            entry,
            label=label,
            cancel_token=cancel_token,
            from_cache=False,
            deduped=False,
            rejected=True,
        )

    # -- execution ---------------------------------------------------------------

    def drain(self) -> int:
        """Run every pending job to completion; returns how many entries ran.

        With workers, all pending entries are dispatched before any is
        awaited, so distinct jobs overlap across worker processes.

        Runs in *rounds*: entries a :class:`RetryPolicy` re-queued with a
        backoff deadline are picked up by a later round once their wait
        elapses (the wait polls for cancellation, so cancelling every
        handle of a backing-off entry resolves it promptly).  The drain
        returns only when nothing is pending — every entry resolved,
        retried to resolution, or dead-lettered.
        """
        executed = 0
        while True:
            with self._lock:
                now = time.monotonic()
                ready = [
                    entry
                    for entry in self._pending.values()
                    if entry.not_before is None or entry.not_before <= now
                ]
                for entry in ready:
                    del self._pending[entry.key]
                    self._inflight[entry.key] = entry
                remaining = len(self._pending)
                metrics.gauge("serve.queue.depth").set(remaining)
            if not ready:
                if remaining == 0:
                    break
                self._await_retry_ready()
                continue
            try:
                if self.workers == 0:
                    for entry in ready:
                        executed += self._run_entry_inline(entry)
                else:
                    executed += self._run_batch_pooled(ready)
            finally:
                # A procedure exception aborts the rest of the round;
                # resolve every stranded entry (UNKNOWN, "batch
                # aborted") before propagating so no JobHandle.result()
                # can block forever.  Entries the retry policy re-queued
                # are in _pending again — they are not stranded.
                with self._lock:
                    for entry in ready:
                        if entry.done.is_set():
                            self._inflight.pop(entry.key, None)
                        elif entry.key not in self._pending:
                            entry.resolve(
                                Answer.unknown(detail=BATCH_ABORTED_DETAIL)
                            )
                            self._inflight.pop(entry.key, None)
                metrics.gauge("serve.inflight").set(0)
        return executed

    def _await_retry_ready(self) -> None:
        """Wait until a backing-off entry is ready (or all are gone).

        Polls in small increments so a retry wait never blocks
        cancellation: an entry whose handles all cancel while it waits
        is skipped immediately (:data:`CANCELLED_DETAIL`), exactly as if
        it had been cancelled in the queue.
        """
        while True:
            cancelled: list[_Entry] = []
            with self._lock:
                now = time.monotonic()
                for entry in list(self._pending.values()):
                    if entry.all_cancelled():
                        del self._pending[entry.key]
                        cancelled.append(entry)
                waiting = list(self._pending.values())
                deadlines = [e.not_before or now for e in waiting]
            for entry in cancelled:
                self._skip(entry)
            if not waiting or min(deadlines) <= now:
                return
            time.sleep(min(0.02, max(0.001, min(deadlines) - now)))

    def run_batch(
        self, jobs: Iterable[JobSpec | Mapping[str, Any]]
    ) -> list[Any]:
        """Submit every job, drain, and return results in job order."""
        handles = []
        for job in jobs:
            if isinstance(job, Mapping):
                job = JobSpec(
                    procedure=job["procedure"],
                    args=job.get("args", ()),
                    kwargs=job.get("kwargs"),
                    budget=job.get("budget"),
                    label=job.get("label"),
                )
            handles.append(
                self.submit(
                    job.procedure,
                    *job.args,
                    budget=job.budget,
                    label=job.label,
                    **job.kwargs,
                )
            )
        self.drain()
        return [handle.result() for handle in handles]

    def _skip(self, entry: _Entry) -> None:
        entry.skipped = True
        self.jobs_skipped += 1
        metrics.counter("serve.jobs.completed", outcome="skipped").inc()
        entry.resolve(Answer.unknown(detail=CANCELLED_DETAIL))

    def _artifact_provider(self) -> StoreArtifactProvider | None:
        """The dispatch-time artifact provider (read-through to the store)."""
        store = self.cache.store
        return StoreArtifactProvider(store) if store is not None else None

    def _run_entry_inline(self, entry: _Entry) -> int:
        if entry.all_cancelled():
            self._skip(entry)
            return 0
        entry.dispatched = True
        entry.t_dispatched = time.perf_counter()
        entry.attempts += 1
        metrics.observe(
            "serve.job.queue_wait_s",
            entry.t_dispatched - entry.t_submitted,
            procedure=entry.procedure,
        )
        procedure = get_procedure(entry.procedure)
        guard = Guard(budget=entry.budget, cancel_token=entry.token)
        self.jobs_executed += 1
        STATS.serve_jobs_executed += 1
        metrics.counter("serve.jobs.executed").inc()
        metrics.gauge("serve.inflight").inc()
        try:
            with artifacts.scope(self._artifact_provider(), entry.key):
                result = procedure(*entry.args, guard=guard, **entry.kwargs)
        except Exception as error:  # noqa: BLE001 - resolve waiters, then raise
            metrics.counter("serve.jobs.completed", outcome="error").inc()
            entry.resolve(
                Answer.unknown(detail=f"procedure raised {type(error).__name__}")
            )
            raise
        finally:
            metrics.gauge("serve.inflight").dec()
            metrics.observe(
                "serve.job.latency_s",
                time.perf_counter() - entry.t_dispatched,
                procedure=entry.procedure,
            )
        if self._maybe_schedule_retry(entry, result):
            metrics.counter("serve.jobs.completed", outcome="retry").inc()
            return 1
        metrics.counter("serve.jobs.completed", outcome="executed").inc()
        self.cache.put(entry.key, result, entry.procedure)
        entry.resolve(result)
        return 1

    def _run_batch_pooled(self, batch: list[_Entry]) -> int:
        pool = self._ensure_pool()
        store = self.cache.store
        store_path = store.path if store is not None else None
        to_dispatch: list[_Entry] = []
        for entry in batch:
            if entry.all_cancelled():
                self._skip(entry)
                continue
            entry.dispatched = True
            entry.t_dispatched = time.perf_counter()
            metrics.observe(
                "serve.job.queue_wait_s",
                entry.t_dispatched - entry.t_submitted,
                procedure=entry.procedure,
            )
            self.jobs_executed += 1
            STATS.serve_jobs_executed += 1
            metrics.counter("serve.jobs.executed").inc()
            to_dispatch.append(entry)
        executed = len(to_dispatch)
        inflight = metrics.gauge("serve.inflight")
        # Dispatch/await in waves: a worker death breaks every
        # outstanding future at once, so the first wave ends early with
        # the lost entries collected; the pool is respawned in place and
        # the survivors re-dispatched (fresh attempt number, fresh chaos
        # draw) until every entry resolves or exceeds the re-dispatch
        # limit.
        while to_dispatch:
            for entry in to_dispatch:
                entry.attempts += 1
                seq = self._dispatch_history.get(entry.key, 0)
                self._dispatch_history[entry.key] = seq + 1
                entry.dispatch_seq = seq + 1
                entry.future = pool.submit(
                    entry.procedure,
                    entry.args,
                    entry.kwargs,
                    entry.budget,
                    store_path=store_path,
                    job_key=entry.key,
                    attempt=seq,
                )
            inflight.set(len(to_dispatch))
            lost: list[_Entry] = []
            for entry in to_dispatch:
                result = self._await_pooled(entry)
                inflight.dec()
                if result is _WORKER_LOST:
                    entry.attempts -= 1  # it never ran to completion
                    lost.append(entry)
                    continue
                if result is None:
                    continue  # resolved inside (error or cancelled-in-queue)
                metrics.observe(
                    "serve.job.turnaround_s",
                    time.perf_counter() - entry.t_dispatched,
                    procedure=entry.procedure,
                )
                if self._maybe_schedule_retry(entry, result):
                    metrics.counter("serve.jobs.completed", outcome="retry").inc()
                    continue
                metrics.counter("serve.jobs.completed", outcome="executed").inc()
                self.cache.put(entry.key, result, entry.procedure)
                entry.resolve(result)
            to_dispatch = self._recover_worker_loss(pool, lost) if lost else []
        pool.merge_traces()
        pool.merge_metrics()
        pool.merge_profiles()
        return executed

    def _recover_worker_loss(
        self, pool: WorkerPool, lost: list[_Entry]
    ) -> list[_Entry]:
        """Respawn the broken pool and decide each lost entry's fate.

        Returns the entries to re-dispatch on the fresh pool.  Entries
        past ``worker_redispatch_limit`` resolve to
        :data:`WORKER_LOST_DETAIL` UNKNOWN and are dead-lettered;
        entries whose handles all cancelled while the pool was down are
        skipped (prompt :data:`CANCELLED_DETAIL`, no re-dispatch).
        """
        pool.respawn()
        redispatch: list[_Entry] = []
        for entry in lost:
            entry.worker_lost += 1
            self.jobs_worker_lost += 1
            metrics.counter("serve.worker.lost", procedure=entry.procedure).inc()
            entry.trips.append(
                {"worker_lost": True, "dispatch": entry.dispatch_seq}
            )
            if entry.all_cancelled():
                self._skip(entry)
                continue
            if entry.worker_lost > self.worker_redispatch_limit:
                self._dead_letter(
                    entry,
                    reason=(
                        f"worker lost {entry.worker_lost}x "
                        f"(re-dispatch limit {self.worker_redispatch_limit})"
                    ),
                )
                metrics.counter(
                    "serve.jobs.completed", outcome="worker_lost"
                ).inc()
                entry.resolve(Answer.unknown(detail=WORKER_LOST_DETAIL))
                continue
            self.jobs_redispatched += 1
            metrics.counter("serve.jobs.redispatched").inc()
            redispatch.append(entry)
        return redispatch

    def _maybe_schedule_retry(self, entry: _Entry, result: Any) -> bool:
        """Re-queue a guard-tripped entry with an escalated budget.

        True iff the entry was re-queued — the caller must then *not*
        cache or resolve ``result``.  Exhausted retries dead-letter the
        entry and return False (the trip UNKNOWN resolves as-is, with
        ``handle.dead_lettered`` set).  Cancellation always wins: a
        fully-cancelled entry is never re-queued.
        """
        policy = self.retry_policy
        trip = getattr(result, "trip", None)
        if trip is not None and getattr(trip, "limit", None) is not None:
            entry.trips.append(
                {
                    "limit": trip.limit,
                    "site": trip.site,
                    "steps": trip.steps,
                    "injected": bool(getattr(trip, "injected", False)),
                }
            )
        if policy is None or not policy.retryable(result):
            return False
        if entry.all_cancelled():
            return False
        if entry.attempts >= policy.max_attempts:
            metrics.counter(
                "serve.retry.exhausted", procedure=entry.procedure
            ).inc()
            self._dead_letter(
                entry,
                reason=f"retries exhausted after {entry.attempts} attempts",
            )
            return False
        entry.budget = policy.escalate(entry.budget)
        entry.last_backoff_s = policy.backoff_s(entry.last_backoff_s or None)
        entry.not_before = time.monotonic() + entry.last_backoff_s
        entry.future = None
        self.jobs_retried += 1
        metrics.counter("serve.retry.scheduled", procedure=entry.procedure).inc()
        metrics.observe("serve.retry.backoff_s", entry.last_backoff_s)
        with self._lock:
            self._inflight.pop(entry.key, None)
            self._pending[entry.key] = entry
        return True

    def _dead_letter(self, entry: _Entry, reason: str) -> None:
        """Park an undecidable entry in the DLQ (store-backed if possible)."""
        entry.dead_lettered = True
        self.jobs_dead_lettered += 1
        metrics.counter("serve.dlq.added", procedure=entry.procedure).inc()
        record = DLQRecord(
            fingerprint=entry.key,
            procedure=entry.procedure,
            label=entry.label,
            reason=reason,
            attempts=entry.attempts,
            trips=list(entry.trips),
            last_budget=entry.budget.as_dict() if entry.budget is not None else None,
            payload=DLQRecord.encode_job(entry.args, entry.kwargs),
        )
        try:
            self.dlq.add(record)
            metrics.gauge("serve.dlq.depth").set(len(self.dlq))
        except Exception:  # noqa: BLE001 - the DLQ must never lose the job's resolve
            metrics.counter("serve.dlq.errors").inc()

    def _heartbeat(self, entry: _Entry) -> None:
        """Surface a long-running pooled job's progress while it runs.

        Folds the worker spools into the parent (so ``serve top`` sees
        fresh ``progress.*`` gauges and the parent trace grows) and
        stamps how long this entry has been running.
        """
        pool = self._pool
        if pool is not None:
            pool.merge_metrics()
            pool.merge_traces()
        if entry.t_dispatched is not None:
            metrics.gauge(
                "serve.job.heartbeat_s", procedure=entry.procedure
            ).set(round(time.perf_counter() - entry.t_dispatched, 3))
        metrics.write_snapshot()

    def _await_pooled(self, entry: _Entry) -> Any | None:
        """Await one pool future, polling for token-fired cancellation.

        A job still queued behind busy workers whose handles have all
        cancelled (e.g. their submit-time tokens fired after dispatch)
        is withdrawn from the pool instead of executed.  A job already
        running in a worker completes — cross-process cooperative
        cancellation would need a shared token — bounded by its budget.
        While waiting, a heartbeat every :data:`HEARTBEAT_INTERVAL_S`
        merges worker telemetry so progress stays visible mid-job.
        Resolves the entry and returns ``None`` on error/cancellation;
        returns :data:`_WORKER_LOST` when the worker died and broke the
        pool (the caller respawns and re-dispatches); otherwise returns
        the result for the caller to cache + resolve.
        """
        last_heartbeat = time.perf_counter()
        while True:
            try:
                return entry.future.result(timeout=0.05)
            except _futures.TimeoutError:
                if entry.all_cancelled() and entry.future.cancel():
                    self._skip(entry)
                    return None
                now = time.perf_counter()
                if now - last_heartbeat >= HEARTBEAT_INTERVAL_S:
                    last_heartbeat = now
                    self._heartbeat(entry)
            except _futures.CancelledError:
                self._skip(entry)
                return None
            except BrokenProcessPool:
                return _WORKER_LOST
            except Exception as error:  # noqa: BLE001
                metrics.counter("serve.jobs.completed", outcome="error").inc()
                entry.resolve(
                    Answer.unknown(detail=f"worker raised {type(error).__name__}")
                )
                return None

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.workers)
        return self._pool

    def _on_handle_cancelled(self, entry: _Entry) -> None:
        if entry.all_cancelled():
            # Trips an in-process run at its next checkpoint; for a pool
            # job, best-effort cancel of a not-yet-started future.
            entry.token.cancel()
            future = entry.future
            if future is not None:
                future.cancel()

    # -- lifecycle / introspection -----------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Service + cache + resilience counters, JSON-friendly."""
        try:
            dlq_depth = len(self.dlq)
        except Exception:  # noqa: BLE001 - stats after close(): store is gone
            dlq_depth = self.jobs_dead_lettered
        return {
            "workers": self.workers,
            "jobs_executed": self.jobs_executed,
            "jobs_deduped": self.jobs_deduped,
            "jobs_skipped": self.jobs_skipped,
            "cache": self.cache.stats.as_dict(),
            "resilience": {
                "retried": self.jobs_retried,
                "rejected": self.jobs_rejected,
                "redispatched": self.jobs_redispatched,
                "worker_lost": self.jobs_worker_lost,
                "dead_lettered": self.jobs_dead_lettered,
                "pool_respawns": self._pool.respawns if self._pool else 0,
                "dlq_depth": dlq_depth,
            },
        }

    def close(self) -> None:
        """Shut down the worker pool and any cache this service created."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._owns_cache:
            self.cache.close()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
