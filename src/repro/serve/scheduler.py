"""Job scheduler: dedup, caching, budgets, and cancellation.

:class:`SolverService` is the front door of the serving layer.  Callers
:meth:`~SolverService.submit` decision-procedure jobs and get
:class:`JobHandle` futures back; :meth:`~SolverService.drain` (or
``handle.result()``) runs everything that is still pending.

The pipeline per submission:

1. **Fingerprint.**  The job is keyed by
   :func:`repro.serve.fingerprint.job_fingerprint` — procedure name plus
   the canonical form of its arguments.  Budgets are not part of the
   key (decided answers are budget-independent; UNKNOWN is never
   cached).
2. **Cache probe.**  A hit resolves the handle immediately
   (``handle.from_cache`` is true) without queueing anything.
3. **In-flight dedup.**  If an un-drained entry with the same
   fingerprint exists, the new handle joins it — one computation, many
   handles (``handle.deduped`` is true for the joiners).
4. **Queue.**  Otherwise a new entry is queued.  Nothing executes until
   a drain, so a whole batch dedups before any work starts and a queued
   job can still be cancelled.

Execution happens either in-process (``workers=0``, the default — jobs
run sequentially in the draining thread) or on a
:class:`repro.serve.pool.WorkerPool` (``workers>=1`` — jobs are
dispatched to worker processes and drained concurrently).

Cancellation: ``handle.cancel()`` or a fired
:class:`~repro.guard.CancelToken` passed at submit time.  An entry whose
handles are all cancelled before dispatch is **skipped** — the
procedure is never called — and resolves to an UNKNOWN answer with
detail :data:`CANCELLED_DETAIL`.  In-process entries additionally get a
service-side token wired into their :class:`~repro.guard.Guard`, so
cancelling mid-run trips the procedure cooperatively at its next
checkpoint.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent import futures as _futures
from typing import Any, Iterable, Mapping, Sequence

from repro import artifacts, metrics
from repro._stats import STATS
from repro.analysis.verdict import Answer
from repro.guard import Budget, CancelToken, Guard
from repro.serve.cache import AnswerCache, default_cache_directory
from repro.serve.fingerprint import job_fingerprint
from repro.serve.pool import WorkerPool
from repro.serve.registry import get_procedure
from repro.serve.store import StoreArtifactProvider

__all__ = [
    "BATCH_ABORTED_DETAIL",
    "CANCELLED_DETAIL",
    "JobHandle",
    "JobSpec",
    "SolverService",
]

#: ``Answer.detail`` of jobs cancelled before execution.
CANCELLED_DETAIL = "cancelled before execution"

#: ``Answer.detail`` of jobs stranded when an earlier job in the same
#: drain raised: they resolve to UNKNOWN instead of hanging their handles.
BATCH_ABORTED_DETAIL = "batch aborted: an earlier job's procedure raised"

#: While a pooled job runs, the awaiting drain merges worker spools this
#: often so ``serve top`` shows live progress instead of a silent gap.
HEARTBEAT_INTERVAL_S = 1.0


class JobSpec:
    """A declarative job for :meth:`SolverService.run_batch`."""

    __slots__ = ("procedure", "args", "kwargs", "budget", "label")

    def __init__(
        self,
        procedure: str,
        args: Sequence[Any] = (),
        kwargs: Mapping[str, Any] | None = None,
        budget: Budget | None = None,
        label: str | None = None,
    ) -> None:
        self.procedure = procedure
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})
        self.budget = budget
        self.label = label or procedure


class _EntryToken(CancelToken):
    """The service-side token wired into an entry's :class:`Guard`.

    Besides the explicitly-fired flag (set by ``handle.cancel()`` via
    ``_on_handle_cancelled``), it *polls the entry's handles*: a handle
    whose submit-time :class:`CancelToken` fires mid-run never calls
    back into the service, so the guard checkpoint consulting this
    token is the only place that can observe it.  Once every handle is
    cancelled the flag latches and the running procedure trips at its
    next checkpoint.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: "_Entry") -> None:
        super().__init__()
        self._entry = entry

    def cancelled(self) -> bool:
        if super().cancelled():
            return True
        handles = self._entry.handles
        if handles and all(h.cancelled for h in handles):
            self.cancel()  # latch, so later checks skip the handle scan
            return True
        return False


class _Entry:
    """One unique computation; possibly shared by several handles."""

    __slots__ = (
        "key",
        "procedure",
        "args",
        "kwargs",
        "budget",
        "handles",
        "done",
        "result",
        "dispatched",
        "skipped",
        "token",
        "future",
        "t_submitted",
        "t_dispatched",
    )

    def __init__(
        self,
        key: str,
        procedure: str,
        args: tuple,
        kwargs: dict,
        budget: Budget | None,
    ) -> None:
        self.key = key
        self.procedure = procedure
        self.args = args
        self.kwargs = kwargs
        self.budget = budget
        self.handles: list[JobHandle] = []
        self.done = threading.Event()
        self.result: Any = None
        self.dispatched = False
        self.skipped = False
        # Service-side token: fires when every handle cancels — whether
        # via handle.cancel() or a submit-time token firing mid-run — so
        # an in-process run trips cooperatively at its next checkpoint.
        self.token = _EntryToken(self)
        self.future: Any = None
        self.t_submitted = time.perf_counter()
        self.t_dispatched: float | None = None

    def all_cancelled(self) -> bool:
        return bool(self.handles) and all(h.cancelled for h in self.handles)

    def resolve(self, result: Any) -> None:
        self.result = result
        self.done.set()


class JobHandle:
    """Future-like handle for one submitted job."""

    def __init__(
        self,
        service: "SolverService",
        entry: _Entry,
        *,
        label: str,
        cancel_token: CancelToken | None,
        from_cache: bool,
        deduped: bool,
    ) -> None:
        self._service = service
        self._entry = entry
        self._cancelled = False
        self._cancel_token = cancel_token
        self.label = label
        self.from_cache = from_cache
        self.deduped = deduped

    @property
    def fingerprint(self) -> str:
        return self._entry.key

    @property
    def procedure(self) -> str:
        return self._entry.procedure

    @property
    def cancelled(self) -> bool:
        """Whether this handle asked for cancellation (directly or via token)."""
        if self._cancelled:
            return True
        token = self._cancel_token
        return token is not None and token.cancelled()

    def cancel(self) -> bool:
        """Request cancellation; returns True if the job had not finished.

        A queued entry whose handles are all cancelled is skipped at the
        next drain without ever calling the procedure.  For an entry
        already running in-process, the service token trips it at its
        next guard checkpoint; a pool job already running in a worker
        completes (bounded by its budget) but this handle still reports
        ``cancelled``.
        """
        if self._entry.done.is_set():
            return False
        self._cancelled = True
        self._service._on_handle_cancelled(self._entry)
        return True

    def done(self) -> bool:
        return self._entry.done.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """The job's result, draining the service if still pending."""
        if not self._entry.done.is_set():
            self._service.drain()
        if not self._entry.done.wait(timeout):
            raise TimeoutError(f"job {self.label!r} did not finish in {timeout}s")
        return self._entry.result


class SolverService:
    """Concurrent solver front end with caching and dedup.

    ``workers=0`` executes in-process; ``workers>=1`` uses a process
    pool.  ``cache_dir`` (default: ``$REPRO_CACHE_DIR`` if set) enables
    the on-disk cache tier.
    """

    def __init__(
        self,
        workers: int = 0,
        cache: AnswerCache | None = None,
        cache_dir: str | None = None,
        cache_capacity: int = 4096,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self._owns_cache = cache is None
        if cache is None:
            cache = AnswerCache(
                capacity=cache_capacity,
                directory=cache_dir if cache_dir is not None else default_cache_directory(),
            )
        self.cache = cache
        self._lock = threading.Lock()
        self._pending: OrderedDict[str, _Entry] = OrderedDict()
        self._inflight: dict[str, _Entry] = {}
        self._pool: WorkerPool | None = None
        self.jobs_executed = 0
        self.jobs_deduped = 0
        self.jobs_skipped = 0

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        procedure: str,
        *args: Any,
        budget: Budget | None = None,
        cancel_token: CancelToken | None = None,
        label: str | None = None,
        **kwargs: Any,
    ) -> JobHandle:
        """Queue one job; returns a :class:`JobHandle`.

        ``budget`` bounds the execution (per job, not per handle — on a
        dedup join the *first* submission's budget applies).
        ``cancel_token`` marks this handle cancelled once fired; fired
        before the drain dispatches the entry, the procedure never runs.
        """
        get_procedure(procedure)  # fail fast on unknown names
        key = job_fingerprint(procedure, args, kwargs)
        label = label or procedure
        with self._lock:
            entry = self._pending.get(key) or self._inflight.get(key)
            if entry is not None:
                handle = JobHandle(
                    self,
                    entry,
                    label=label,
                    cancel_token=cancel_token,
                    from_cache=False,
                    deduped=True,
                )
                entry.handles.append(handle)
                self.jobs_deduped += 1
                STATS.serve_jobs_deduped += 1
                metrics.counter("serve.jobs.deduped").inc()
                return handle
        cached = self.cache.get(key, procedure)
        if cached is not None:
            entry = _Entry(key, procedure, args, dict(kwargs), budget)
            entry.resolve(cached)
            metrics.counter("serve.jobs.completed", outcome="cached").inc()
            return JobHandle(
                self,
                entry,
                label=label,
                cancel_token=cancel_token,
                from_cache=True,
                deduped=False,
            )
        with self._lock:
            # Re-check: another thread may have queued the same key
            # while we probed the cache.
            entry = self._pending.get(key) or self._inflight.get(key)
            if entry is None:
                entry = _Entry(key, procedure, args, dict(kwargs), budget)
                self._pending[key] = entry
                deduped = False
            else:
                deduped = True
                self.jobs_deduped += 1
                STATS.serve_jobs_deduped += 1
                metrics.counter("serve.jobs.deduped").inc()
            metrics.gauge("serve.queue.depth").set(len(self._pending))
            handle = JobHandle(
                self,
                entry,
                label=label,
                cancel_token=cancel_token,
                from_cache=False,
                deduped=deduped,
            )
            entry.handles.append(handle)
            return handle

    # -- execution ---------------------------------------------------------------

    def drain(self) -> int:
        """Run every pending job to completion; returns how many entries ran.

        With workers, all pending entries are dispatched before any is
        awaited, so distinct jobs overlap across worker processes.
        """
        with self._lock:
            batch = list(self._pending.values())
            self._pending.clear()
            for entry in batch:
                self._inflight[entry.key] = entry
            metrics.gauge("serve.queue.depth").set(0)
        executed = 0
        try:
            if self.workers == 0:
                for entry in batch:
                    executed += self._run_entry_inline(entry)
            else:
                executed += self._run_batch_pooled(batch)
        finally:
            # A procedure exception aborts the rest of the batch; resolve
            # every stranded entry (UNKNOWN, "batch aborted") before
            # propagating so no JobHandle.result() can block forever.
            with self._lock:
                for entry in batch:
                    if not entry.done.is_set():
                        entry.resolve(Answer.unknown(detail=BATCH_ABORTED_DETAIL))
                    self._inflight.pop(entry.key, None)
            metrics.gauge("serve.inflight").set(0)
        return executed

    def run_batch(
        self, jobs: Iterable[JobSpec | Mapping[str, Any]]
    ) -> list[Any]:
        """Submit every job, drain, and return results in job order."""
        handles = []
        for job in jobs:
            if isinstance(job, Mapping):
                job = JobSpec(
                    procedure=job["procedure"],
                    args=job.get("args", ()),
                    kwargs=job.get("kwargs"),
                    budget=job.get("budget"),
                    label=job.get("label"),
                )
            handles.append(
                self.submit(
                    job.procedure,
                    *job.args,
                    budget=job.budget,
                    label=job.label,
                    **job.kwargs,
                )
            )
        self.drain()
        return [handle.result() for handle in handles]

    def _skip(self, entry: _Entry) -> None:
        entry.skipped = True
        self.jobs_skipped += 1
        metrics.counter("serve.jobs.completed", outcome="skipped").inc()
        entry.resolve(Answer.unknown(detail=CANCELLED_DETAIL))

    def _artifact_provider(self) -> StoreArtifactProvider | None:
        """The dispatch-time artifact provider (read-through to the store)."""
        store = self.cache.store
        return StoreArtifactProvider(store) if store is not None else None

    def _run_entry_inline(self, entry: _Entry) -> int:
        if entry.all_cancelled():
            self._skip(entry)
            return 0
        entry.dispatched = True
        entry.t_dispatched = time.perf_counter()
        metrics.observe(
            "serve.job.queue_wait_s",
            entry.t_dispatched - entry.t_submitted,
            procedure=entry.procedure,
        )
        procedure = get_procedure(entry.procedure)
        guard = Guard(budget=entry.budget, cancel_token=entry.token)
        self.jobs_executed += 1
        STATS.serve_jobs_executed += 1
        metrics.counter("serve.jobs.executed").inc()
        metrics.gauge("serve.inflight").inc()
        try:
            with artifacts.scope(self._artifact_provider(), entry.key):
                result = procedure(*entry.args, guard=guard, **entry.kwargs)
        except Exception as error:  # noqa: BLE001 - resolve waiters, then raise
            metrics.counter("serve.jobs.completed", outcome="error").inc()
            entry.resolve(
                Answer.unknown(detail=f"procedure raised {type(error).__name__}")
            )
            raise
        finally:
            metrics.gauge("serve.inflight").dec()
            metrics.observe(
                "serve.job.latency_s",
                time.perf_counter() - entry.t_dispatched,
                procedure=entry.procedure,
            )
        metrics.counter("serve.jobs.completed", outcome="executed").inc()
        self.cache.put(entry.key, result, entry.procedure)
        entry.resolve(result)
        return 1

    def _run_batch_pooled(self, batch: list[_Entry]) -> int:
        pool = self._ensure_pool()
        store = self.cache.store
        store_path = store.path if store is not None else None
        dispatched: list[_Entry] = []
        for entry in batch:
            if entry.all_cancelled():
                self._skip(entry)
                continue
            entry.dispatched = True
            entry.t_dispatched = time.perf_counter()
            metrics.observe(
                "serve.job.queue_wait_s",
                entry.t_dispatched - entry.t_submitted,
                procedure=entry.procedure,
            )
            entry.future = pool.submit(
                entry.procedure,
                entry.args,
                entry.kwargs,
                entry.budget,
                store_path=store_path,
                job_key=entry.key,
            )
            self.jobs_executed += 1
            STATS.serve_jobs_executed += 1
            metrics.counter("serve.jobs.executed").inc()
            dispatched.append(entry)
        inflight = metrics.gauge("serve.inflight")
        inflight.set(len(dispatched))
        for entry in dispatched:
            result = self._await_pooled(entry)
            inflight.dec()
            if result is None:
                continue  # resolved inside (error or cancelled-in-queue)
            metrics.observe(
                "serve.job.turnaround_s",
                time.perf_counter() - entry.t_dispatched,
                procedure=entry.procedure,
            )
            metrics.counter("serve.jobs.completed", outcome="executed").inc()
            self.cache.put(entry.key, result, entry.procedure)
            entry.resolve(result)
        pool.merge_traces()
        pool.merge_metrics()
        pool.merge_profiles()
        return len(dispatched)

    def _heartbeat(self, entry: _Entry) -> None:
        """Surface a long-running pooled job's progress while it runs.

        Folds the worker spools into the parent (so ``serve top`` sees
        fresh ``progress.*`` gauges and the parent trace grows) and
        stamps how long this entry has been running.
        """
        pool = self._pool
        if pool is not None:
            pool.merge_metrics()
            pool.merge_traces()
        if entry.t_dispatched is not None:
            metrics.gauge(
                "serve.job.heartbeat_s", procedure=entry.procedure
            ).set(round(time.perf_counter() - entry.t_dispatched, 3))
        metrics.write_snapshot()

    def _await_pooled(self, entry: _Entry) -> Any | None:
        """Await one pool future, polling for token-fired cancellation.

        A job still queued behind busy workers whose handles have all
        cancelled (e.g. their submit-time tokens fired after dispatch)
        is withdrawn from the pool instead of executed.  A job already
        running in a worker completes — cross-process cooperative
        cancellation would need a shared token — bounded by its budget.
        While waiting, a heartbeat every :data:`HEARTBEAT_INTERVAL_S`
        merges worker telemetry so progress stays visible mid-job.
        Resolves the entry and returns ``None`` on error/cancellation;
        otherwise returns the result for the caller to cache + resolve.
        """
        last_heartbeat = time.perf_counter()
        while True:
            try:
                return entry.future.result(timeout=0.05)
            except _futures.TimeoutError:
                if entry.all_cancelled() and entry.future.cancel():
                    self._skip(entry)
                    return None
                now = time.perf_counter()
                if now - last_heartbeat >= HEARTBEAT_INTERVAL_S:
                    last_heartbeat = now
                    self._heartbeat(entry)
            except _futures.CancelledError:
                self._skip(entry)
                return None
            except Exception as error:  # noqa: BLE001
                metrics.counter("serve.jobs.completed", outcome="error").inc()
                entry.resolve(
                    Answer.unknown(detail=f"worker raised {type(error).__name__}")
                )
                return None

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.workers)
        return self._pool

    def _on_handle_cancelled(self, entry: _Entry) -> None:
        if entry.all_cancelled():
            # Trips an in-process run at its next checkpoint; for a pool
            # job, best-effort cancel of a not-yet-started future.
            entry.token.cancel()
            future = entry.future
            if future is not None:
                future.cancel()

    # -- lifecycle / introspection -----------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Service + cache counters, JSON-friendly."""
        return {
            "workers": self.workers,
            "jobs_executed": self.jobs_executed,
            "jobs_deduped": self.jobs_deduped,
            "jobs_skipped": self.jobs_skipped,
            "cache": self.cache.stats.as_dict(),
        }

    def close(self) -> None:
        """Shut down the worker pool and any cache this service created."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._owns_cache:
            self.cache.close()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
