"""SQLite-backed answer + artifact store for the serving layer.

The disk tier behind :class:`repro.serve.cache.AnswerCache` used to be
an append-only JSONL file.  That was fine for one process, but records
carrying base64 pickles routinely exceed the kernel's atomic-append
threshold, so several worker or batch processes appending at once could
interleave bytes mid-line and corrupt the file.  This module replaces it
with a single SQLite database that many reader/writer processes share
safely:

* **WAL journal mode** — readers never block the (single) writer and
  vice versa; commits are atomic whatever the record size.
* **Tuned pragmas** — 4 KiB pages, an 8 MiB page cache, ``NORMAL``
  synchronous (a WAL commit survives process crashes; the OS-crash
  window is acceptable for a cache), memory temp store.
* **Busy-timeout plus bounded retries** — concurrent writers queue on
  SQLite's own lock with :data:`BUSY_TIMEOUT_MS`, and the few
  operational errors that still surface (e.g. over NFS) are retried
  with backoff before giving up.
* **``schema_version`` table** — layout changes are detectable; opening
  a newer-versioned store raises instead of corrupting it.
* **Indexed fingerprint lookups** — answers key on the structural job
  fingerprint (primary key = the index); artifacts on ``(kind, key)``.

Besides decided answers the store persists *derived artifacts* —
compiled AFA searcher source, symbol-class quotients, UCQ expansions —
published through the :mod:`repro.artifacts` hook, so a cold process
warm-starts from what earlier runs already derived.

Legacy ``answers.jsonl`` files migrate via :meth:`Store.import_jsonl`
(the cache calls it automatically on open; re-imports only when the
file changes, and existing store rows win over imported ones).
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import random
import sqlite3
import threading
import time
from typing import Any, Callable, Iterator

from repro import metrics
from repro.errors import ReproError
from repro.guard import inject as _inject
from repro.serve.resilience import DLQRecord

__all__ = [
    "Store",
    "StoreArtifactProvider",
    "StoreError",
    "STORE_SCHEMA_VERSION",
    "retry_backoff_s",
]

#: Version of the on-disk schema; bump on incompatible layout changes.
#: v2 added the ``dlq`` dead-letter table; v3 the ``search_states``
#: table for :mod:`repro.delta` snapshots (older stores upgrade in
#: place on open — the new tables are simply created).
STORE_SCHEMA_VERSION = 3

#: How long a writer waits on SQLite's lock before erroring (ms).
BUSY_TIMEOUT_MS = 10_000

_PAGE_SIZE = 4096
_CACHE_KIB = 8192  # 8 MiB page cache
_RETRIES = 5
_RETRY_BASE_SLEEP_S = 0.05
_RETRY_CAP_SLEEP_S = 1.0


def retry_backoff_s(
    previous_s: float | None, rng: random.Random | None = None
) -> float:
    """The next retry wait: decorrelated jitter, not lockstep doubling.

    The old schedule was ``base * 2**attempt`` — deterministic, so N
    worker processes that hit ``busy_timeout`` on the same contended
    write retried *in phase* and collided again on every attempt.
    Decorrelated jitter (``min(cap, uniform(base, 3 * previous))``)
    spreads the herd: each process draws its own wait from a widening
    window.  ``rng`` is injectable for deterministic tests.
    """
    draw = (rng or random).uniform
    span = max(_RETRY_BASE_SLEEP_S, 3.0 * (previous_s or _RETRY_BASE_SLEEP_S))
    return min(_RETRY_CAP_SLEEP_S, draw(_RETRY_BASE_SLEEP_S, span))

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS schema_version (version INTEGER NOT NULL)",
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS answers (
        fingerprint TEXT PRIMARY KEY,
        procedure   TEXT,
        verdict     TEXT,
        detail      TEXT,
        payload     BLOB NOT NULL,
        updated_s   REAL NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS answers_by_procedure ON answers (procedure)",
    """
    CREATE TABLE IF NOT EXISTS artifacts (
        kind        TEXT NOT NULL,
        fingerprint TEXT NOT NULL,
        payload     BLOB NOT NULL,
        meta        TEXT,
        updated_s   REAL NOT NULL,
        PRIMARY KEY (kind, fingerprint)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS dlq (
        fingerprint TEXT PRIMARY KEY,
        procedure   TEXT,
        label       TEXT,
        reason      TEXT,
        attempts    INTEGER NOT NULL,
        trips       TEXT,
        last_budget TEXT,
        payload     BLOB,
        updated_s   REAL NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS search_states (
        procedure   TEXT NOT NULL,
        fingerprint TEXT NOT NULL,
        payload     BLOB NOT NULL,
        meta        TEXT,
        updated_s   REAL NOT NULL,
        PRIMARY KEY (procedure, fingerprint)
    )
    """,
)


class StoreError(ReproError):
    """Raised for unusable store files (bad schema version, closed store)."""


def _verdict_name(result: Any) -> str | None:
    verdict = getattr(result, "verdict", None)
    value = getattr(verdict, "value", None)
    return value if isinstance(value, str) else None


class Store:
    """One SQLite answer + artifact database, safe across processes.

    Thread-safe within a process (one connection per thread) and
    multi-process-safe across processes (WAL + busy timeout).  Forked
    children must not reuse the parent's connections; connections are
    therefore keyed by pid as well and silently reopened after a fork.
    """

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._local = threading.local()
        self._closed = False
        self._lock = threading.Lock()
        with self._connection() as conn:
            self._init_schema(conn)

    # -- connections -------------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        if self._closed:
            raise StoreError(f"store {self.path} is closed")
        conn = getattr(self._local, "conn", None)
        if conn is not None and self._local.pid == os.getpid():
            return conn
        conn = sqlite3.connect(
            self.path,
            timeout=BUSY_TIMEOUT_MS / 1000.0,
            isolation_level=None,  # autocommit; single statements are atomic
        )
        cursor = conn.cursor()
        # page_size only takes effect before the first table is created;
        # on an existing database it is a no-op, which is what we want.
        cursor.execute(f"PRAGMA page_size={_PAGE_SIZE}")
        cursor.execute("PRAGMA journal_mode=WAL")
        cursor.execute("PRAGMA synchronous=NORMAL")
        cursor.execute(f"PRAGMA cache_size={-_CACHE_KIB}")
        cursor.execute("PRAGMA temp_store=MEMORY")
        cursor.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        cursor.close()
        self._local.conn = conn
        self._local.pid = os.getpid()
        return conn

    def _init_schema(self, conn: sqlite3.Connection) -> None:
        with self._lock:
            for statement in _SCHEMA:
                self._retry(lambda s=statement: conn.execute(s))
            row = conn.execute("SELECT version FROM schema_version").fetchone()
            if row is None:
                self._retry(
                    lambda: conn.execute(
                        "INSERT INTO schema_version (version) VALUES (?)",
                        (STORE_SCHEMA_VERSION,),
                    )
                )
            elif row[0] > STORE_SCHEMA_VERSION:
                raise StoreError(
                    f"store {self.path} has schema version {row[0]}, newer than "
                    f"this library's {STORE_SCHEMA_VERSION}; refusing to touch it"
                )
            elif row[0] < STORE_SCHEMA_VERSION:
                # Older store: the CREATE IF NOT EXISTS pass above already
                # added any new tables (all version bumps so far are purely
                # additive); stamp the new version.
                self._retry(
                    lambda: conn.execute(
                        "UPDATE schema_version SET version = ?",
                        (STORE_SCHEMA_VERSION,),
                    )
                )

    @staticmethod
    def _retry(operation: Callable[[], Any]) -> Any:
        """Run ``operation``, retrying transient 'database is locked' errors.

        The busy timeout handles almost all contention; the retry loop
        backstops the cases SQLite still reports (lock escalation under
        WAL, some network filesystems) with decorrelated-jitter waits
        (:func:`retry_backoff_s`) so concurrent writers do not retry in
        phase.  The chaos harness (:mod:`repro.guard.inject`) may force
        a first attempt to fail with a transient error, exercising
        exactly this path.
        """
        backoff: float | None = None
        for attempt in range(_RETRIES):
            try:
                if _inject.store_fault_due(attempt):
                    raise sqlite3.OperationalError(
                        "database is locked [chaos injected]"
                    )
                return operation()
            except sqlite3.OperationalError as error:
                message = str(error).lower()
                transient = "locked" in message or "busy" in message
                if not transient or attempt == _RETRIES - 1:
                    raise
                metrics.counter("serve.store.retries").inc()
                backoff = retry_backoff_s(backoff)
                time.sleep(backoff)

    def close(self) -> None:
        """Close this thread's connection and refuse further use."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - best-effort close
                pass
            self._local.conn = None
        self._closed = True

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- answers -----------------------------------------------------------------

    def put_answer(self, key: str, result: Any, procedure: str | None = None) -> bool:
        """Persist ``result`` under fingerprint ``key``.

        Returns False (storing nothing) when the result cannot be
        pickled.  A later put for the same key replaces the record.
        """
        try:
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - unpicklable results stay memory-only
            metrics.counter("serve.store.answer_skips").inc()
            return False
        detail = getattr(result, "detail", None)
        conn = self._connection()
        self._retry(
            lambda: conn.execute(
                "INSERT OR REPLACE INTO answers "
                "(fingerprint, procedure, verdict, detail, payload, updated_s) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    key,
                    procedure,
                    _verdict_name(result),
                    detail if isinstance(detail, str) else None,
                    payload,
                    time.time(),
                ),
            )
        )
        metrics.counter("serve.store.answer_stores").inc()
        return True

    def get_answer(self, key: str) -> Any | None:
        """The stored result for ``key``, or ``None`` (absent or corrupt)."""
        conn = self._connection()
        row = self._retry(
            lambda: conn.execute(
                "SELECT payload FROM answers WHERE fingerprint = ?", (key,)
            ).fetchone()
        )
        if row is None:
            metrics.counter("serve.store.answer_misses").inc()
            return None
        try:
            result = pickle.loads(row[0])
        except Exception:  # noqa: BLE001 - stale/corrupt record: drop it
            self._retry(
                lambda: conn.execute(
                    "DELETE FROM answers WHERE fingerprint = ?", (key,)
                )
            )
            metrics.counter("serve.store.answer_misses").inc()
            return None
        metrics.counter("serve.store.answer_hits").inc()
        return result

    def has_answer(self, key: str) -> bool:
        conn = self._connection()
        row = self._retry(
            lambda: conn.execute(
                "SELECT 1 FROM answers WHERE fingerprint = ?", (key,)
            ).fetchone()
        )
        return row is not None

    def answer_count(self) -> int:
        conn = self._connection()
        return self._retry(
            lambda: conn.execute("SELECT COUNT(*) FROM answers").fetchone()
        )[0]

    def answer_keys(self) -> Iterator[str]:
        conn = self._connection()
        for (key,) in self._retry(
            lambda: conn.execute("SELECT fingerprint FROM answers").fetchall()
        ):
            yield key

    # -- artifacts ---------------------------------------------------------------

    def put_artifact(
        self, kind: str, key: str, value: Any, meta: dict | None = None
    ) -> bool:
        """Persist a derived artifact; False when the value cannot pickle."""
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001
            return False
        conn = self._connection()
        self._retry(
            lambda: conn.execute(
                "INSERT OR REPLACE INTO artifacts "
                "(kind, fingerprint, payload, meta, updated_s) VALUES (?, ?, ?, ?, ?)",
                (
                    kind,
                    key,
                    payload,
                    json.dumps(meta, sort_keys=True) if meta else None,
                    time.time(),
                ),
            )
        )
        return True

    def get_artifact(self, kind: str, key: str) -> Any | None:
        conn = self._connection()
        row = self._retry(
            lambda: conn.execute(
                "SELECT payload FROM artifacts WHERE kind = ? AND fingerprint = ?",
                (kind, key),
            ).fetchone()
        )
        if row is None:
            return None
        try:
            return pickle.loads(row[0])
        except Exception:  # noqa: BLE001
            self._retry(
                lambda: conn.execute(
                    "DELETE FROM artifacts WHERE kind = ? AND fingerprint = ?",
                    (kind, key),
                )
            )
            return None

    def artifact_counts(self) -> dict[str, int]:
        """Stored artifacts per kind."""
        conn = self._connection()
        rows = self._retry(
            lambda: conn.execute(
                "SELECT kind, COUNT(*) FROM artifacts GROUP BY kind ORDER BY kind"
            ).fetchall()
        )
        return dict(rows)

    # -- dead-letter queue -------------------------------------------------------

    def put_dlq(self, record: DLQRecord) -> None:
        """Upsert one dead-letter record (keyed by fingerprint)."""
        conn = self._connection()
        self._retry(
            lambda: conn.execute(
                "INSERT OR REPLACE INTO dlq "
                "(fingerprint, procedure, label, reason, attempts, trips, "
                "last_budget, payload, updated_s) VALUES (?,?,?,?,?,?,?,?,?)",
                (
                    record.fingerprint,
                    record.procedure,
                    record.label,
                    record.reason,
                    record.attempts,
                    json.dumps(record.trips, sort_keys=True),
                    json.dumps(record.last_budget, sort_keys=True)
                    if record.last_budget is not None
                    else None,
                    record.payload,
                    record.updated_s,
                ),
            )
        )

    @staticmethod
    def _dlq_record(row: tuple) -> DLQRecord:
        def loads(text, default):
            if text is None:
                return default
            try:
                return json.loads(text)
            except json.JSONDecodeError:
                return default

        return DLQRecord(
            fingerprint=row[0],
            procedure=row[1] or "",
            label=row[2] or "",
            reason=row[3] or "",
            attempts=row[4],
            trips=loads(row[5], []),
            last_budget=loads(row[6], None),
            payload=row[7],
            updated_s=row[8],
        )

    _DLQ_COLUMNS = (
        "fingerprint, procedure, label, reason, attempts, trips, "
        "last_budget, payload, updated_s"
    )

    def get_dlq(self, fingerprint: str) -> DLQRecord | None:
        conn = self._connection()
        row = self._retry(
            lambda: conn.execute(
                f"SELECT {self._DLQ_COLUMNS} FROM dlq WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
        )
        return self._dlq_record(row) if row else None

    def list_dlq(self) -> list[DLQRecord]:
        """Every dead-letter record, oldest first."""
        conn = self._connection()
        rows = self._retry(
            lambda: conn.execute(
                f"SELECT {self._DLQ_COLUMNS} FROM dlq "
                "ORDER BY updated_s, fingerprint"
            ).fetchall()
        )
        return [self._dlq_record(row) for row in rows]

    def delete_dlq(self, fingerprint: str) -> bool:
        conn = self._connection()
        cursor = self._retry(
            lambda: conn.execute(
                "DELETE FROM dlq WHERE fingerprint = ?", (fingerprint,)
            )
        )
        return cursor.rowcount > 0

    def purge_dlq(self) -> int:
        conn = self._connection()
        cursor = self._retry(lambda: conn.execute("DELETE FROM dlq"))
        return max(cursor.rowcount, 0)

    def dlq_count(self) -> int:
        conn = self._connection()
        return self._retry(
            lambda: conn.execute("SELECT COUNT(*) FROM dlq").fetchone()
        )[0]

    # -- search-state snapshots (repro.delta) ------------------------------------

    def put_search_state(
        self,
        procedure: str,
        fingerprint: str,
        state: Any,
        meta: dict | None = None,
    ) -> bool:
        """Persist a :mod:`repro.delta` snapshot; False when unpicklable."""
        try:
            payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - unpicklable snapshots stay memory-only
            return False
        conn = self._connection()
        self._retry(
            lambda: conn.execute(
                "INSERT OR REPLACE INTO search_states "
                "(procedure, fingerprint, payload, meta, updated_s) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    procedure,
                    fingerprint,
                    payload,
                    json.dumps(meta, sort_keys=True) if meta else None,
                    time.time(),
                ),
            )
        )
        return True

    def get_search_state(self, procedure: str, fingerprint: str) -> Any | None:
        conn = self._connection()
        row = self._retry(
            lambda: conn.execute(
                "SELECT payload FROM search_states "
                "WHERE procedure = ? AND fingerprint = ?",
                (procedure, fingerprint),
            ).fetchone()
        )
        if row is None:
            return None
        try:
            return pickle.loads(row[0])
        except Exception:  # noqa: BLE001 - stale/corrupt snapshot: drop it
            self._retry(
                lambda: conn.execute(
                    "DELETE FROM search_states "
                    "WHERE procedure = ? AND fingerprint = ?",
                    (procedure, fingerprint),
                )
            )
            return None

    def delete_search_state(self, procedure: str, fingerprint: str) -> bool:
        conn = self._connection()
        cursor = self._retry(
            lambda: conn.execute(
                "DELETE FROM search_states "
                "WHERE procedure = ? AND fingerprint = ?",
                (procedure, fingerprint),
            )
        )
        return cursor.rowcount > 0

    def search_state_count(self) -> int:
        conn = self._connection()
        return self._retry(
            lambda: conn.execute(
                "SELECT COUNT(*) FROM search_states"
            ).fetchone()
        )[0]

    # -- meta / maintenance ------------------------------------------------------

    def get_meta(self, key: str) -> str | None:
        conn = self._connection()
        row = self._retry(
            lambda: conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
        )
        return row[0] if row else None

    def set_meta(self, key: str, value: str) -> None:
        conn = self._connection()
        self._retry(
            lambda: conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, value),
            )
        )

    def import_jsonl(self, path: str, *, replace: bool = False) -> int:
        """Import a legacy JSONL answer file; returns records imported.

        Unreadable lines and records without a pickle payload are
        skipped (the JSONL tier always tolerated garbage).  By default
        existing store rows win (``INSERT OR IGNORE``) — the store is
        the newer generation; ``replace=True`` inverts that for
        explicit CLI re-imports.
        """
        if not os.path.exists(path):
            return 0
        conn = self._connection()
        action = "REPLACE" if replace else "IGNORE"
        imported = 0
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                key = record.get("key")
                encoded = record.get("pickle")
                if not isinstance(key, str) or not isinstance(encoded, str):
                    continue
                try:
                    payload = base64.b64decode(encoded)
                    pickle.loads(payload)  # refuse records that cannot load
                except Exception:  # noqa: BLE001
                    continue
                cursor = self._retry(
                    lambda k=key, p=payload, r=record: conn.execute(
                        f"INSERT OR {action} INTO answers "
                        "(fingerprint, procedure, verdict, detail, payload, updated_s) "
                        "VALUES (?, ?, ?, ?, ?, ?)",
                        (
                            k,
                            r.get("procedure"),
                            r.get("verdict"),
                            r.get("detail"),
                            p,
                            time.time(),
                        ),
                    )
                )
                imported += cursor.rowcount if cursor.rowcount > 0 else 0
        return imported

    def stats(self) -> dict[str, Any]:
        """Counts, schema version, pragmas, and file size — JSON-friendly."""
        conn = self._connection()
        pragma = lambda name: conn.execute(f"PRAGMA {name}").fetchone()[0]  # noqa: E731
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return {
            "path": self.path,
            "schema_version": conn.execute(
                "SELECT version FROM schema_version"
            ).fetchone()[0],
            "answers": self.answer_count(),
            "artifacts": self.artifact_counts(),
            "dlq": self.dlq_count(),
            "search_states": self.search_state_count(),
            "file_bytes": size,
            "journal_mode": pragma("journal_mode"),
            "page_size": pragma("page_size"),
            "cache_size": pragma("cache_size"),
            "busy_timeout_ms": pragma("busy_timeout"),
        }

    def vacuum(self) -> None:
        """Compact the database file (reclaims deleted-record space)."""
        conn = self._connection()
        self._retry(lambda: conn.execute("PRAGMA wal_checkpoint(TRUNCATE)"))
        self._retry(lambda: conn.execute("VACUUM"))

    def __repr__(self) -> str:
        return f"Store({self.path!r})"


class StoreArtifactProvider:
    """Adapter installing a :class:`Store` behind :mod:`repro.artifacts`.

    Producers hand over key material that is either an explicit string
    (used verbatim — e.g. the job-scoped slot keys) or a structure to
    fingerprint with :func:`repro.serve.fingerprint.fingerprint` (which
    already canonicalizes PL formulas, queries, automata, and plain
    containers).
    """

    __slots__ = ("store",)

    def __init__(self, store: Store) -> None:
        self.store = store

    def _key(self, key: Any) -> str | None:
        if isinstance(key, str):
            return key
        # Imported lazily: fingerprint sits above the automata/logic
        # modules that call into repro.artifacts.
        from repro.serve.fingerprint import FingerprintError, fingerprint

        try:
            return fingerprint(key)
        except FingerprintError:
            return None

    def load_artifact(self, kind: str, key: Any) -> Any | None:
        resolved = self._key(key)
        if resolved is None:
            return None
        return self.store.get_artifact(kind, resolved)

    def store_artifact(
        self, kind: str, key: Any, value: Any, meta: dict | None = None
    ) -> bool:
        resolved = self._key(key)
        if resolved is None:
            return False
        return self.store.put_artifact(kind, resolved, value, meta)
