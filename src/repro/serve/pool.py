"""Process-pool execution of solver jobs.

Workers receive *names*, not code: a job crosses the process boundary
as ``(procedure_name, args, kwargs, budget_spec)`` where the procedure
name resolves against :mod:`repro.serve.registry` inside the worker and
the budget travels as the plain dict from
:meth:`repro.guard.Budget.as_dict`.  The instance arguments themselves
pickle thanks to the model types' round-trip support (interned PL
formulas re-intern on load; compiled AFA engines are dropped and
rebuilt on first use).

Tracing across the boundary: when the parent has :mod:`repro.obs`
enabled, each worker is initialized with its own JSONL trace file under
a spool directory (``worker-<pid>.jsonl``).  The parent periodically
merges those files — re-emitting each span event into its own sink via
:func:`repro.obs.reemit` with a ``worker_pid`` attribute — so one
parent trace tells the whole story.  Merging tracks per-file byte
offsets, so it is incremental and idempotent.

Metrics cross the boundary the same way: when the parent has
:mod:`repro.metrics` enabled, each worker records into its own registry
(zeroed after the fork — the parent owns the pre-fork counts) and
spools one *cumulative* snapshot per completed job
(``metrics-<pid>.json``, atomic rename).  :meth:`WorkerPool.merge_metrics`
folds the spools into the parent registry delta-wise, so parent-side
histograms include worker-recorded samples and repeated merges never
double-count.

Cancellation: a queued job's future can still be cancelled; a job
already running in a worker runs to completion (its budget's deadline
still bounds it).  Cross-process cooperative cancellation would need a
shared token; the scheduler therefore checks tokens before dispatch.

Worker loss: an abruptly dead worker (OOM kill, segfault, chaos
``os._exit``) breaks the whole :class:`ProcessPoolExecutor` — every
in-flight future raises :class:`BrokenProcessPool`.  :meth:`WorkerPool.respawn`
rebuilds the executor in place (same spool directories, same merge
offsets, so no telemetry is lost) and the scheduler re-dispatches or
resolves the stranded jobs; the pool itself never leaks a hung future.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Mapping

from repro import metrics, obs
from repro.guard import Budget
from repro.guard import inject as _inject
from repro.obs import profile as _obs_profile
from repro.obs import progress as _obs_progress

__all__ = ["BrokenProcessPool", "WorkerPool"]

#: Module-level so the fork/spawn child can import it by qualified name.
_WORKER_TRACE_DIR: str | None = None


def _worker_init(
    trace_dir: str | None,
    metrics_dir: str | None,
    profile_dir: str | None = None,
) -> None:
    """Per-worker initializer: give the worker its own trace/metrics sinks."""
    global _WORKER_TRACE_DIR
    _WORKER_TRACE_DIR = trace_dir
    if trace_dir is not None:
        path = os.path.join(trace_dir, f"worker-{os.getpid()}.jsonl")
        # "a": a recycled pid (or a fork that inherited an open sink)
        # must not truncate events the parent has not merged yet.
        obs.configure(path=path, mode="a")
    else:
        # A forked worker inherits the parent's open sink; writing to it
        # from two processes would interleave half-lines.  Detach.
        if obs.is_enabled():
            obs.configure(enabled=False)
    # The fork also inherits the parent's metrics registry and sink:
    # zero the registry (the parent owns those counts) and spool
    # cumulative snapshots for the parent to merge delta-wise.
    spool = (
        os.path.join(metrics_dir, f"metrics-{os.getpid()}.json")
        if metrics_dir is not None
        else None
    )
    metrics.reset_after_fork(spool)
    # Progress telemetry: the inherited tracker state belongs to the
    # parent; re-arm a fresh one (keeps enablement + interval).
    _obs_progress.reset()
    # Sampling profiler: the sampler thread did not survive the fork —
    # restart it against the worker's per-pid collapsed spool.
    _obs_profile.reset_after_fork(
        os.path.join(profile_dir, f"profile-{os.getpid()}.collapsed")
        if profile_dir is not None
        else None
    )


#: Worker-side cache of open stores, keyed by (path, pid) — a forked
#: worker must not reuse a store object created before the fork.
_WORKER_STORES: dict[tuple[str, int], Any] = {}


def _worker_artifact_provider(store_path: str | None):
    """The worker's artifact provider for ``store_path`` (or ``None``).

    Each worker process opens its own connection to the shared SQLite
    store — that is the multi-process contract the store is built for.
    A store that fails to open degrades to no artifact cache.
    """
    if store_path is None:
        return None
    from repro.serve.store import Store, StoreArtifactProvider

    key = (store_path, os.getpid())
    store = _WORKER_STORES.get(key)
    if store is None:
        try:
            store = Store(store_path)
        except Exception:  # noqa: BLE001 - degrade, don't fail the job
            return None
        _WORKER_STORES[key] = store
    return StoreArtifactProvider(store)


def _run_job(
    name: str,
    args: tuple,
    kwargs: Mapping[str, Any],
    budget_spec: Mapping[str, Any] | None,
    store_path: str | None = None,
    job_key: str | None = None,
    attempt: int = 0,
) -> Any:
    """Worker-side job body: resolve the procedure by name and run it.

    ``attempt`` is the parent's dispatch count for this entry (retries
    and post-crash re-dispatches increment it); it only feeds the chaos
    harness's per-dispatch fault decisions.
    """
    from repro import artifacts
    from repro.serve.registry import get_procedure

    procedure = get_procedure(name)
    guard = Budget.from_dict(budget_spec) if budget_spec else None
    # Chaos (if armed via install_chaos before the fork, or REPRO_CHAOS):
    # this dispatch may draw a mid-search kill, an injected trip, or a
    # pre-execution stall.
    stall_s = _inject.apply_job_chaos(job_key or name, attempt)
    if stall_s > 0:
        time.sleep(stall_s)
    metrics.gauge("serve.worker.busy").set(1)
    t0 = time.perf_counter()
    try:
        with artifacts.scope(_worker_artifact_provider(store_path), job_key):
            if guard is not None:
                return procedure(*args, guard=guard, **dict(kwargs))
            return procedure(*args, **dict(kwargs))
    finally:
        _inject.clear_job_chaos()
        elapsed = time.perf_counter() - t0
        metrics.observe("serve.job.latency_s", elapsed, procedure=name)
        metrics.counter("serve.worker.jobs").inc()
        metrics.counter("serve.worker.busy_s").inc(elapsed)
        metrics.gauge("serve.worker.busy").set(0)
        # Cumulative spool write per job: the parent can merge at any
        # point and always sees one complete snapshot.  Same contract
        # for the profiler's collapsed-stack spool.
        metrics.write_snapshot()
        _obs_profile.write_collapsed()


class WorkerPool:
    """A :class:`ProcessPoolExecutor` wired for solver jobs and tracing."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least one worker")
        self.workers = workers
        self._trace_dir: str | None = None
        self._metrics_dir: str | None = None
        self._profile_dir: str | None = None
        self._merge_offsets: dict[str, int] = {}
        if obs.is_enabled():
            self._trace_dir = tempfile.mkdtemp(prefix="repro-serve-trace-")
        if metrics.is_enabled():
            self._metrics_dir = tempfile.mkdtemp(prefix="repro-serve-metrics-")
            metrics.gauge("serve.pool.workers").set(workers)
        if _obs_profile.is_enabled():
            self._profile_dir = tempfile.mkdtemp(prefix="repro-serve-profile-")
        self.respawns = 0
        self._executor = self._spawn_executor()

    def _spawn_executor(self) -> ProcessPoolExecutor:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(self._trace_dir, self._metrics_dir, self._profile_dir),
        )

    def respawn(self) -> None:
        """Replace a broken executor with a fresh one, in place.

        Called after a worker died abruptly and broke the pool.  The
        dead executor is shut down without waiting (its workers are
        gone); spool directories and merge offsets survive, so worker
        telemetry from before the crash still merges.  Any telemetry
        the surviving spool files hold is folded in first — the dead
        workers will never write again.
        """
        self.merge_traces()
        self.merge_metrics()
        self.merge_profiles()
        try:
            self._executor.shutdown(wait=False)
        except Exception:  # noqa: BLE001 - a broken executor may refuse
            pass
        self.respawns += 1
        metrics.counter("serve.pool.respawns").inc()
        self._executor = self._spawn_executor()

    def submit(
        self,
        name: str,
        args: tuple,
        kwargs: Mapping[str, Any],
        budget: Budget | None,
        store_path: str | None = None,
        job_key: str | None = None,
        attempt: int = 0,
    ) -> Future:
        spec = budget.as_dict() if budget is not None else None
        return self._executor.submit(
            _run_job, name, args, dict(kwargs), spec, store_path, job_key, attempt
        )

    # -- trace spool merging -----------------------------------------------------

    def merge_traces(self) -> int:
        """Fold new worker span events into the parent sink.

        Returns the number of events merged.  Safe to call repeatedly;
        each call only reads bytes appended since the last one.
        """
        if self._trace_dir is None or not obs.is_enabled():
            return 0
        merged = 0
        try:
            names = sorted(os.listdir(self._trace_dir))
        except OSError:
            return 0
        for fname in names:
            if not fname.endswith(".jsonl"):
                continue
            path = os.path.join(self._trace_dir, fname)
            offset = self._merge_offsets.get(path, 0)
            try:
                with open(path, encoding="utf-8") as handle:
                    handle.seek(offset)
                    payload = handle.read()
                    self._merge_offsets[path] = handle.tell()
            except OSError:
                continue
            pid = fname[len("worker-") : -len(".jsonl")]
            for line in payload.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                obs.reemit(event, worker_pid=pid)
                merged += 1
        return merged

    # -- metrics spool merging ---------------------------------------------------

    def merge_metrics(self) -> int:
        """Fold worker metrics spools into the parent registry.

        Each spool file is one cumulative snapshot per worker; the
        registry merges delta-wise per source, so calling this
        repeatedly (mid-batch, post-batch, at shutdown) never
        double-counts.  Returns the number of spools merged.
        """
        if self._metrics_dir is None or not metrics.is_enabled():
            return 0
        merged = 0
        try:
            names = sorted(os.listdir(self._metrics_dir))
        except OSError:
            return 0
        for fname in names:
            if not fname.startswith("metrics-") or not fname.endswith(".json"):
                continue
            path = os.path.join(self._metrics_dir, fname)
            try:
                with open(path, encoding="utf-8") as handle:
                    snap = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            pid = fname[len("metrics-") : -len(".json")]
            metrics.REGISTRY.merge_snapshot(snap, source=pid)
            merged += 1
        return merged

    # -- profile spool merging ---------------------------------------------------

    def merge_profiles(self) -> int:
        """Fold worker profiler spools into the parent's sample table.

        Each spool is one *cumulative* collapsed-stack file per worker;
        the profiler absorbs them replace-wise per source pid, so
        repeated merges never double-count.  Returns the number of
        samples currently attributed to worker spools.
        """
        if self._profile_dir is None or not _obs_profile.is_enabled():
            return 0
        absorbed = 0
        try:
            names = sorted(os.listdir(self._profile_dir))
        except OSError:
            return 0
        for fname in names:
            if not fname.startswith("profile-") or not fname.endswith(".collapsed"):
                continue
            path = os.path.join(self._profile_dir, fname)
            pid = fname[len("profile-") : -len(".collapsed")]
            absorbed += _obs_profile.absorb_spool(path, source=pid)
        return absorbed

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)
        self.merge_traces()
        self.merge_metrics()
        self.merge_profiles()
        for attr in ("_trace_dir", "_metrics_dir", "_profile_dir"):
            directory = getattr(self, attr)
            if directory is not None:
                try:
                    for fname in os.listdir(directory):
                        os.unlink(os.path.join(directory, fname))
                    os.rmdir(directory)
                except OSError:
                    pass
                setattr(self, attr, None)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
