"""Incremental re-check of an edited instance against its snapshot.

Five re-check modes, cheapest first; each is *sound* — soundness never
depends on the edit being small, only the cost does:

* ``cached`` — the delta is empty (identical or rename-only version):
  the stored decided answer is returned as-is.
* ``resume`` — empty delta but the stored answer is a budget-tripped
  UNKNOWN: the BFS continues from the snapshot's captured
  ``(parents, frontier)`` instead of restarting at ``V_ε``.
* ``replay`` — local edit, and the previous witness still drives the
  edited automaton to the expected verdict; re-validated in
  O(|witness| · |classes|) pre-steps, so the old answer is *proved*
  still correct rather than assumed.
* ``warm`` — local edit: the AFA is rebuilt only for the edited states
  (:func:`repro.core.pl_semantics.to_afa_incremental`), the compiled
  engine is row-patched (:func:`repro.automata.afa.patch_engine` —
  clean states' row bits reuse the previous closures, the symbol
  quotient refines instead of recomputing), and the BFS runs afresh
  over the patched rows.  The frontier is *not* reused here: reached
  vectors are a whole-instance property (global support), and a local
  edit invalidates them — reusing them would be unsound precisely in
  the YES→NO flip case.
* ``full`` — global edit (states added/removed, alphabet grew, start
  moved): everything is invalidated and the registry procedure runs
  from scratch, capturing a fresh snapshot.

The warm/resume searches checkpoint through the ordinary guard site
``delta.recheck``, so budgets, fault injection, and progress telemetry
apply to incremental re-checks exactly as to full solves.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import metrics
from repro.analysis.verdict import Answer
from repro.automata.afa import (
    AFA,
    _CompiledAFA,
    _reconstruct_classes,
    generic_search,
    patch_engine,
)
from repro.core.pl_semantics import pair_states, to_afa, to_afa_incremental
from repro.core.sws import SWS
from repro.delta.diff import InstanceDelta, compute_delta
from repro.delta.snapshot import SearchState
from repro.errors import ReproError
from repro.guard import (
    GuardTrip,
    capture_search_state,
    checkpoint_callable,
    ensure_guard,
    register_span,
)
from repro.serve.fingerprint import (
    SubFingerprints,
    job_fingerprint,
    sub_fingerprints,
)

__all__ = ["DeltaError", "RecheckResult", "SUPPORTED_PROCEDURES", "recheck"]

register_span(
    "delta.recheck",
    "repro.delta.engine",
    "warm/resumed BFS over patched transition rows",
)

#: Maximum vectors persisted in a snapshot; beyond this the parents map
#: is dropped (the answer/witness still snapshot — only resume degrades
#: to a fresh search).
MAX_SNAPSHOT_VECTORS = 50_000


class DeltaError(ReproError):
    """Raised for instances or procedures the delta engine cannot serve."""


def _accepting_for(procedure: str, kwargs: dict) -> bool:
    if procedure == "nonempty_pl":
        return True
    if procedure == "validate_pl":
        return bool(kwargs.get("output", True))
    raise DeltaError(
        f"procedure {procedure!r} has no incremental re-check "
        f"(supported: {', '.join(sorted(SUPPORTED_PROCEDURES))})"
    )


#: Procedures the engine can re-check incrementally.  Both reduce to one
#: AFA witness search; ``accepting`` is the polarity of the search.
SUPPORTED_PROCEDURES = frozenset({"nonempty_pl", "validate_pl"})


@dataclass
class RecheckResult:
    """One re-check's outcome plus where its work went."""

    answer: Answer
    mode: str
    delta: InstanceDelta
    elapsed_s: float
    pops: int = 0
    rows_patched: int = 0
    rows_reused: int = 0
    surviving: frozenset[str] = field(default_factory=frozenset)

    def as_dict(self) -> dict:
        return {
            "verdict": self.answer.verdict.value,
            "mode": self.mode,
            "elapsed_s": self.elapsed_s,
            "pops": self.pops,
            "rows_patched": self.rows_patched,
            "rows_reused": self.rows_reused,
            "surviving": sorted(self.surviving),
            "delta": self.delta.as_dict(),
        }


class _Capture:
    """Holds the live (queue, parents) refs the guard sink hands out."""

    def __init__(self) -> None:
        self.queue: Any = None
        self.parents: Any = None

    def __call__(self, site: str, n: int, queue: Any, visited: Any) -> None:
        if queue is not None:
            self.queue = queue
        if visited is not None:
            self.parents = visited


def _snapshot_from_capture(
    procedure: str,
    fingerprint: str,
    tree: SubFingerprints,
    answer: Answer,
    capture: _Capture,
    order: tuple[str, ...],
) -> SearchState:
    """Build a snapshot from a solve's answer + captured search refs.

    The compiled searchers mutate one ``parents``/``queue`` pair in
    place, so the entry-checkpoint references hold the final state —
    complete on a decided answer, the surviving frontier on a trip.
    Only int-mask searches snapshot (the AST fallback's frozenset
    vectors are cross-validation surface, not serving state).
    """
    parents = capture.parents if isinstance(capture.parents, dict) else None
    if parents is not None and (
        len(parents) > MAX_SNAPSHOT_VECTORS
        or any(not isinstance(k, int) for k in parents)
    ):
        parents = None
    frontier: tuple[int, ...] = ()
    if parents is not None and answer.is_unknown:
        # The generated searchers checkpoint *between* pop and expansion,
        # so the in-flight vector's expansions are lost on a trip and the
        # captured queue alone under-covers the frontier.  Re-expanding
        # every reached vector is sound (all are already tested members
        # of `parents`; only genuinely new successors get explored) and
        # still skips the re-discovery work a cold restart would pay.
        frontier = tuple(parents)
    witness = None
    if answer.witness is not None:
        witness = tuple(answer.witness)
    return SearchState(
        procedure=procedure,
        fingerprint=fingerprint,
        root=tree.root,
        state_digests=dict(tree.states),
        answer=answer,
        witness=witness,
        parents=parents,
        frontier=frontier,
        order=order,
        pops=len(parents) if parents is not None else 0,
    )


def solve_fresh(
    procedure_fn: Callable[..., Answer],
    procedure: str,
    sws: SWS,
    kwargs: dict,
    budget: Any = None,
    tree: SubFingerprints | None = None,
) -> tuple[SearchState, Answer]:
    """Run the registry procedure from scratch, capturing a snapshot.

    The capture rides the *existing* guard checkpoints: installing a
    sink upgrades the search's no-op checkpoint into one that shares its
    live queue/parents references, with no change to the procedure.
    """
    if tree is None:
        tree = sub_fingerprints(sws)
    fp = job_fingerprint(procedure, (sws,), kwargs)
    capture = _Capture()
    with capture_search_state(capture):
        answer = procedure_fn(sws, guard=budget, **kwargs)
    order = tuple(sorted(pair for s in sws.states for pair in pair_states(s)))
    state = _snapshot_from_capture(procedure, fp, tree, answer, capture, order)
    return state, answer


def _replay(
    engine: _CompiledAFA, witness: tuple, accepting: bool
) -> bool | None:
    """Whether ``witness`` still yields ``accepting`` on the edited engine.

    ``None`` when the witness mentions symbols the engine lacks (cannot
    happen after a local edit, but the check keeps replay total).
    """
    mask = engine.final_mask
    for symbol in reversed(witness):
        rep = engine.rep_of.get(symbol)
        if rep is None:
            return None
        mask = engine.rows[rep](mask)
    return bool(engine.initial_fn(mask)) == accepting


def _search(
    engine: _CompiledAFA,
    accepting: bool,
    budget: Any,
    seed: tuple[dict, tuple] | None = None,
) -> tuple[Answer, dict | None, tuple[int, ...], int]:
    """One guarded generic BFS; returns (answer, parents, frontier, pops).

    Always runs seeded so the live parents/queue survive a guard trip:
    a fresh search's seed ``({start: None}, (start,))`` is exactly the
    generated searchers' initial state.  On a trip the partial parents
    and surviving frontier come back with the UNKNOWN answer, ready for
    a later *resume*.
    """
    ckpt = checkpoint_callable("delta.recheck")
    start = engine.final_mask
    if seed is None:
        if engine.initial_fn(start) == accepting:
            answer = Answer.yes(witness=[], detail="delta search")
            return answer, {start: None}, (), 0
        seed = ({start: None}, (start,))
    parents = dict(seed[0])
    pending: deque = deque(seed[1])
    rows = list(enumerate(engine.rows[rep] for rep in engine.reps))
    guard = ensure_guard(budget) if budget is not None else None
    try:
        if guard is not None:
            with guard.activate():
                parents, hit, pops = generic_search(
                    rows, start, accepting, engine.initial_fn, ckpt,
                    (parents, pending),
                )
        else:
            parents, hit, pops = generic_search(
                rows, start, accepting, engine.initial_fn, ckpt,
                (parents, pending),
            )
    except GuardTrip as error:
        answer = Answer.unknown(detail=error.trip.describe(), trip=error.trip)
        return answer, parents, tuple(pending), 0
    if hit is not None:
        witness = _reconstruct_classes(parents, hit, engine.reps)
        answer = Answer.yes(witness=list(witness), detail="delta search")
    else:
        answer = Answer.no(detail="vector space exhausted (delta search)")
    return answer, parents, (), pops


def recheck(
    procedure_fn: Callable[..., Answer],
    procedure: str,
    base: SWS,
    base_state: SearchState,
    base_tree: SubFingerprints,
    base_afa: AFA | None,
    new: SWS,
    kwargs: dict,
    budget: Any = None,
    new_tree: SubFingerprints | None = None,
) -> tuple[RecheckResult, SearchState, SubFingerprints, AFA | None]:
    """Re-check ``new`` against the snapshot of ``base``.

    Returns the result plus the *successor* snapshot, tree, and live AFA
    for the session to adopt.  ``base_afa`` may be ``None`` (cold
    session restored from the store); the warm path then rebuilds it
    once and later edits go incremental.
    """
    t0 = time.perf_counter()
    if new_tree is None:
        new_tree = sub_fingerprints(new)
    delta = compute_delta(base, new, base_tree, new_tree)
    surviving = base_state.surviving_components(delta)
    fp = job_fingerprint(procedure, (new,), kwargs)
    accepting = _accepting_for(procedure, kwargs)

    mode: str
    answer: Answer
    pops = 0
    rows_patched = 0
    rows_reused = 0
    next_state = base_state
    next_afa = base_afa

    stored = base_state.answer
    parents = base_state.parents
    if delta.is_empty and stored is not None and not stored.is_unknown:
        mode = "cached"
        answer = stored
    elif delta.is_empty and parents and base_state.frontier:
        mode = "resume"
        if next_afa is None:
            next_afa = to_afa(new)
        engine = next_afa._engine()
        answer, new_parents, new_frontier, pops = _search(
            engine, accepting, budget, seed=(parents, base_state.frontier)
        )
        next_state = _rebuild_state(
            procedure, fp, new_tree, answer, new_parents, new_frontier,
            base_state.order,
        )
    elif delta.is_local:
        if next_afa is None:
            next_afa = to_afa(base)
        base_engine = next_afa._engine()
        incremental = to_afa_incremental(
            new, base, next_afa, delta.changed_states
        )
        if incremental is None:
            mode = "full"
            next_state, answer = solve_fresh(
                procedure_fn, procedure, new, kwargs, budget, new_tree
            )
            next_afa = None
        else:
            next_afa = incremental
            dirty_pairs = {
                pair
                for state in delta.changed_states
                for pair in pair_states(state)
            }
            engine = None
            if "rows" in surviving:
                engine = patch_engine(base_engine, incremental, dirty_pairs)
            if engine is None:
                engine = incremental._engine()
            else:
                incremental._engine_cache = engine
                rows_patched = len(engine.reps)
                rows_reused = len(engine.order) - len(dirty_pairs)
            witness = base_state.witness
            replayed = (
                _replay(engine, witness, accepting)
                if witness is not None and stored is not None and stored.is_yes
                else None
            )
            if replayed:
                mode = "replay"
                answer = Answer.yes(
                    witness=list(witness),
                    detail="delta replay: previous witness re-validated",
                )
                next_state = _rebuild_state(
                    procedure, fp, new_tree, answer, None, (), base_state.order
                )
            else:
                mode = "warm"
                answer, new_parents, new_frontier, pops = _search(
                    engine, accepting, budget
                )
                next_state = _rebuild_state(
                    procedure, fp, new_tree, answer, new_parents, new_frontier,
                    base_state.order,
                )
    else:
        mode = "full"
        next_state, answer = solve_fresh(
            procedure_fn, procedure, new, kwargs, budget, new_tree
        )
        next_afa = None

    elapsed = time.perf_counter() - t0
    metrics.counter("delta.recheck", mode=mode).inc()
    metrics.histogram("delta.recheck.latency_s", mode=mode).observe(elapsed)
    metrics.histogram("delta.edit.states").observe(len(delta.changed_states))
    if rows_reused:
        metrics.counter("delta.rows.reused").inc(rows_reused)
    result = RecheckResult(
        answer=answer,
        mode=mode,
        delta=delta,
        elapsed_s=elapsed,
        pops=pops,
        rows_patched=rows_patched,
        rows_reused=rows_reused,
        surviving=surviving,
    )
    return result, next_state, new_tree, next_afa


def _rebuild_state(
    procedure: str,
    fingerprint: str,
    tree: SubFingerprints,
    answer: Answer,
    parents: dict | None,
    frontier: tuple[int, ...],
    order: tuple[str, ...],
) -> SearchState:
    if parents is not None and len(parents) > MAX_SNAPSHOT_VECTORS:
        parents = None
        frontier = ()
    return SearchState(
        procedure=procedure,
        fingerprint=fingerprint,
        root=tree.root,
        state_digests=dict(tree.states),
        answer=answer,
        witness=tuple(answer.witness) if answer.witness is not None else None,
        parents=parents,
        frontier=frontier,
        order=order,
        pops=len(parents) if parents is not None else 0,
    )
