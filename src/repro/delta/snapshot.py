"""Reusable search state captured from one solve of one instance.

A :class:`SearchState` is everything the delta engine can reuse on the
next re-check of an edited version, tagged component by component with
its *support* — the set of SWS states the component depends on.  On an
edit, :meth:`surviving_components` keeps exactly the components whose
support avoids the delta:

* ``answer`` / ``reached`` / ``frontier`` — global support (``None``):
  the reachable-vector set is a whole-instance property, so these
  survive only an empty delta (identical or rename-only versions).
  A tripped search's ``reached``/``frontier`` seed the *resume* path.
* ``witness`` — also globally supported, but unlike the others it can
  be *re-validated* in O(|witness|) against the edited automaton, so
  the engine replays it rather than discarding it.
* ``rows`` — per-state support: one AFA transition-row bit depends on
  exactly one SWS state's rules, so after a local edit every clean
  state's compiled row bits are reused verbatim
  (:func:`repro.automata.afa.patch_engine`).
* ``quotient`` — the symbol-class quotient, supported by all states but
  cheap to *refine* instead of recompute: classes split only where the
  changed states' formulas disagree.
* ``clauses`` — the SAT clause set of the nonrecursive PL path, global
  support (clause reuse across edits is future work; tracked here so
  invalidation is explicit rather than implicit).

The snapshot itself holds only picklable data (masks, names, digests) —
compiled row closures live in the owning session's process and are
rebuilt via ``patch_engine`` after a cold load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.delta.diff import InstanceDelta

__all__ = ["SearchState", "SNAPSHOT_COMPONENTS"]

#: Component names, in invalidation-report order.
SNAPSHOT_COMPONENTS = ("answer", "witness", "reached", "frontier", "rows", "quotient", "clauses")


@dataclass
class SearchState:
    """Snapshot of one (procedure, instance-version) solve."""

    procedure: str
    fingerprint: str
    root: str
    state_digests: dict[str, str]
    answer: Any = None
    witness: tuple | None = None
    #: Reached-vector parent links (mask → (class index, predecessor) or
    #: ``None`` for the start vector); ``None`` when not snapshotted.
    parents: dict[int, tuple | None] | None = None
    frontier: tuple[int, ...] = ()
    order: tuple[str, ...] = ()
    pops: int = 0
    support: dict[str, frozenset[str] | None] = field(default_factory=dict)
    clauses: Any = None

    def __post_init__(self) -> None:
        if not self.support:
            self.support = self.default_support()

    def default_support(self) -> dict[str, frozenset[str] | None]:
        """Global support everywhere except the per-state row tags."""
        support: dict[str, frozenset[str] | None] = {
            name: None for name in SNAPSHOT_COMPONENTS
        }
        # One row bit per AFA pair state; the pair of SWS state q is
        # supported by q alone (successors enter as names, not rules).
        support["rows"] = frozenset(self.state_digests)
        return support

    def surviving_components(self, delta: InstanceDelta) -> frozenset[str]:
        """Component names whose support does not intersect ``delta``.

        For the per-state ``rows`` component, survival is partial — the
        component survives when *any* state's rows survive; the engine
        consults ``delta.changed_states`` for the per-row mask.
        """
        surviving = set()
        for name in SNAPSHOT_COMPONENTS:
            support = self.support.get(name)
            if name == "rows" and delta.is_local:
                clean = (support or frozenset()) - delta.changed_states
                if clean:
                    surviving.add(name)
                continue
            if not delta.invalidates(support):
                surviving.add(name)
        return frozenset(surviving)

    def meta(self) -> dict:
        """JSON-friendly summary for store rows and CLI output."""
        return {
            "procedure": self.procedure,
            "root": self.root,
            "states": len(self.state_digests),
            "reached": len(self.parents or ()),
            "frontier": len(self.frontier),
            "pops": self.pops,
            "has_witness": self.witness is not None,
            "verdict": getattr(
                getattr(self.answer, "verdict", None), "value", None
            ),
        }
