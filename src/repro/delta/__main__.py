"""``python -m repro.delta`` — incremental re-solving CLI.

Subcommands:

* ``diff --trace module:function [--json]`` — build an edit-script
  trace (a factory returning a list of SWS versions, restricted to
  ``repro.workloads`` modules) and print the structural delta between
  consecutive versions: changed/added/removed states, whether the
  globals or alphabet moved, and what a snapshot would keep.
* ``replay --trace module:function [--procedure P] [--compare]
  [--require-warm N] [--cache-dir D] [--budget STEPS] [--json]`` —
  replay the trace through one :class:`repro.delta.Session`:
  check version 0 from scratch, then ``edit``/``recheck`` each
  successive version and report the re-check mode, latency, and
  verdict per step.  ``--compare`` also solves every version from
  scratch and fails on any verdict mismatch (the incremental ==
  from-scratch contract); ``--require-warm N`` fails unless at least
  ``N`` re-checks avoided the full path — the CI smoke uses it to
  assert the delta machinery actually engaged.

Trace factories live in :mod:`repro.workloads.editing`, e.g.::

    python -m repro.delta replay --trace repro.workloads.editing:menu_editing_trace
    python -m repro.delta replay --trace repro.workloads.editing:flip_trace --compare
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.delta.diff import compute_delta
from repro.delta.session import Session
from repro.serve.fingerprint import sub_fingerprints
from repro.serve.registry import get_procedure, resolve_factory


def _build_trace(args: argparse.Namespace) -> list[Any]:
    factory = resolve_factory(args.trace)
    trace = factory(*(json.loads(arg) for arg in args.arg))
    if not isinstance(trace, (list, tuple)) or len(trace) < 2:
        raise SystemExit(
            f"{args.trace}: trace factory must return >= 2 instance versions"
        )
    return list(trace)


def _emit(record: dict[str, Any], as_json: bool, text: str) -> None:
    if as_json:
        print(json.dumps(record, sort_keys=True))
    else:
        print(text)


def _cmd_diff(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    trees = [sub_fingerprints(sws) for sws in trace]
    for step in range(1, len(trace)):
        base, new = trace[step - 1], trace[step]
        delta = compute_delta(base, new, trees[step - 1], trees[step])
        record = {"step": step, "name": new.name, **delta.as_dict()}
        kind = (
            "empty"
            if delta.is_empty
            else "local" if delta.is_local else "global"
        )
        _emit(
            record,
            args.json,
            f"step {step}: {kind:<6} "
            f"changed={sorted(delta.changed_states)} "
            f"added={sorted(delta.added_states)} "
            f"removed={sorted(delta.removed_states)} "
            f"alphabet_changed={delta.alphabet_changed}",
        )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    cache = None
    if args.cache_dir:
        from repro.serve.cache import AnswerCache

        cache = AnswerCache(directory=args.cache_dir)
    budget = args.budget if args.budget else None
    scratch = get_procedure(args.procedure) if args.compare else None
    mismatches = 0
    try:
        session = Session(
            trace[0], args.procedure, cache=cache, budget=budget
        )
        first = session.check()
        _emit(
            {"step": 0, "mode": "solve", "verdict": first.verdict.value},
            args.json,
            f"step 0: solve   verdict={first.verdict.value}",
        )
        for step, version in enumerate(trace[1:], start=1):
            session.edit(version)
            result = session.recheck()
            record = {"step": step, "name": version.name, **result.as_dict()}
            line = (
                f"step {step}: {result.mode:<7} "
                f"verdict={result.answer.verdict.value} "
                f"{result.elapsed_s * 1e3:.2f}ms"
            )
            if scratch is not None:
                expected = scratch(version, guard=budget, **session.kwargs)
                record["expected"] = expected.verdict.value
                if expected.verdict is not result.answer.verdict:
                    mismatches += 1
                    line += f"  MISMATCH (scratch={expected.verdict.value})"
            _emit(record, args.json, line)
        stats = session.stats()
        _emit(
            {"_summary": stats},
            args.json,
            "modes: "
            + ", ".join(f"{n} {m}" for m, n in stats["modes"].items())
            + f"; {stats['incremental_rechecks']} incremental "
            f"of {stats['rechecks']} rechecks",
        )
    finally:
        if cache is not None:
            cache.close()
    if mismatches:
        print(
            f"FAIL: {mismatches} verdict mismatch(es) vs from-scratch",
            file=sys.stderr,
        )
        return 1
    if stats["incremental_rechecks"] < args.require_warm:
        print(
            f"FAIL: {stats['incremental_rechecks']} incremental recheck(s), "
            f"need >= {args.require_warm}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.delta",
        description="Incremental re-solving for edited services.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _trace_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            required=True,
            help="module:function returning a list of instance versions "
            "(repro.workloads modules only)",
        )
        p.add_argument(
            "--arg",
            action="append",
            default=[],
            help="positional JSON argument for the trace factory (repeatable)",
        )
        p.add_argument("--json", action="store_true", help="JSONL output")

    diff = sub.add_parser("diff", help="print per-step structural deltas")
    _trace_common(diff)
    diff.set_defaults(func=_cmd_diff)

    replay = sub.add_parser(
        "replay", help="replay an edit script through one Session"
    )
    _trace_common(replay)
    replay.add_argument(
        "--procedure",
        default="nonempty_pl",
        help="incrementally re-checkable procedure (default: nonempty_pl)",
    )
    replay.add_argument(
        "--compare",
        action="store_true",
        help="also solve each version from scratch; fail on verdict mismatch",
    )
    replay.add_argument(
        "--require-warm",
        type=int,
        default=0,
        metavar="N",
        help="fail unless >= N re-checks avoided the full path",
    )
    replay.add_argument(
        "--cache-dir",
        default=None,
        help="answer cache directory (persists snapshots in its store)",
    )
    replay.add_argument(
        "--budget",
        type=int,
        default=0,
        metavar="STEPS",
        help="per-check step budget (0 = unguarded)",
    )
    replay.set_defaults(func=_cmd_replay)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
