"""Structural deltas between two versions of an SWS instance.

The diff is layered on the serve-tier fingerprints: each version gets a
per-state Merkle tree (:func:`repro.serve.fingerprint.sub_fingerprints`)
whose leaves hash one state's transition + synthesis rules and whose
root matches :func:`repro.serve.fingerprint.fingerprint` equality.
Because edited copies of a service share rule *objects* for untouched
states, the leaf digests of unchanged regions hash-match out of a memo
without re-canonicalizing anything — a diff costs time proportional to
the edit, not to the service.

The delta classifies an edit for :mod:`repro.delta.engine`:

* ``is_empty`` — semantically identical (rename-only edits land here:
  ``name`` is a label, not structure); nothing to invalidate.
* ``is_local`` — same state set, start, and input variables; only the
  rules of ``changed_states`` differ.  The AFA layout is stable, so
  derived state whose support avoids the changed states survives.
* otherwise *global* — states were added/removed, the start moved, the
  input alphabet grew, or schema-level fields changed; every derived
  row is invalidated and the engine falls back to a full re-solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sws import SWS, SWSKind
from repro.serve.fingerprint import SubFingerprints, sub_fingerprints

__all__ = ["InstanceDelta", "compute_delta", "affected_cone"]


@dataclass(frozen=True)
class InstanceDelta:
    """What changed between ``base`` and ``new``, at state granularity."""

    base_root: str
    new_root: str
    changed_states: frozenset[str] = field(default_factory=frozenset)
    added_states: frozenset[str] = field(default_factory=frozenset)
    removed_states: frozenset[str] = field(default_factory=frozenset)
    globals_changed: bool = False
    alphabet_changed: bool = False

    @property
    def is_empty(self) -> bool:
        """No semantic difference (identical or rename-only)."""
        return self.base_root == self.new_root

    @property
    def is_local(self) -> bool:
        """Only existing states' rules changed; the AFA layout is stable."""
        return (
            not self.is_empty
            and not self.globals_changed
            and not self.alphabet_changed
            and not self.added_states
            and not self.removed_states
        )

    def invalidates(self, support: frozenset[str] | None) -> bool:
        """Whether derived state tagged with ``support`` must be dropped.

        ``support`` is the set of SWS states a piece of derived state
        depends on; ``None`` means "all of them" (global support).  An
        empty delta invalidates nothing; a non-local delta invalidates
        everything; a local delta invalidates exactly the state whose
        support intersects the changed states.
        """
        if self.is_empty:
            return False
        if not self.is_local:
            return True
        if support is None:
            return True
        return bool(support & self.changed_states)

    def as_dict(self) -> dict:
        return {
            "base_root": self.base_root,
            "new_root": self.new_root,
            "empty": self.is_empty,
            "local": self.is_local,
            "changed_states": sorted(self.changed_states),
            "added_states": sorted(self.added_states),
            "removed_states": sorted(self.removed_states),
            "globals_changed": self.globals_changed,
            "alphabet_changed": self.alphabet_changed,
        }


def compute_delta(
    base: SWS,
    new: SWS,
    base_tree: SubFingerprints | None = None,
    new_tree: SubFingerprints | None = None,
) -> InstanceDelta:
    """The :class:`InstanceDelta` from ``base`` to ``new``.

    Pass precomputed trees when available (a :class:`repro.delta.session.Session`
    keeps the current version's tree) to skip rehashing that side.
    """
    if base_tree is None:
        base_tree = sub_fingerprints(base)
    if new_tree is None:
        new_tree = sub_fingerprints(new)
    base_states = set(base_tree.states)
    new_states = set(new_tree.states)
    changed = {
        state
        for state in base_states & new_states
        if base_tree.states[state] != new_tree.states[state]
    }
    if base.kind is SWSKind.PL and new.kind is SWSKind.PL:
        alphabet_changed = base.input_variables() != new.input_variables()
    else:
        alphabet_changed = base.kind is not new.kind
    return InstanceDelta(
        base_root=base_tree.root,
        new_root=new_tree.root,
        changed_states=frozenset(changed),
        added_states=frozenset(new_states - base_states),
        removed_states=frozenset(base_states - new_states),
        globals_changed=base_tree.globals_digest != new_tree.globals_digest,
        alphabet_changed=alphabet_changed,
    )


def affected_cone(sws: SWS, changed_states: frozenset[str]) -> frozenset[str]:
    """States whose language values can differ after the edit.

    The backward valuation of a pair ``(q, m)`` depends only on ``q``'s
    own rules and (recursively) its successors' valuations, so only
    states that *reach* a changed state in the dependency graph can
    observe the edit — everything outside the cone evolves identically
    on every word.  Diagnostic surface for the CLI and tests; the
    engine's row patching uses ``changed_states`` directly (one row bit
    depends on exactly one state's formulas).
    """
    reverse: dict[str, set[str]] = {state: set() for state in sws.states}
    for source, target in sws.dependency_edges():
        reverse.setdefault(target, set()).add(source)
    cone = set(changed_states)
    frontier = list(changed_states)
    while frontier:
        state = frontier.pop()
        for predecessor in reverse.get(state, ()):
            if predecessor not in cone:
                cone.add(predecessor)
                frontier.append(predecessor)
    return frozenset(cone)
