"""The interactive editing session: ``open → edit → recheck``.

A :class:`Session` owns one evolving instance for one procedure and
keeps everything a re-check can reuse: the current version's
sub-fingerprint tree, the live (incrementally rebuilt) AFA and patched
engine, and the :class:`~repro.delta.snapshot.SearchState` snapshot.
Decided answers flow into the serve-tier answer cache under the same
delta-aware job fingerprints the scheduler uses, so an edited spec that
later arrives through ``serve run`` hits the cache; snapshots persist
in the store's ``search_states`` table (schema v3) so a *new process*
can reopen the session and still re-check incrementally.

Obtain one directly, or from a running service via
:meth:`repro.serve.scheduler.SolverService.session` (which wires the
service's cache and store in).
"""

from __future__ import annotations

from typing import Any, Callable

from repro import metrics
from repro.core.sws import SWS
from repro.delta.diff import InstanceDelta, compute_delta
from repro.delta.engine import (
    DeltaError,
    RecheckResult,
    SUPPORTED_PROCEDURES,
    recheck,
    solve_fresh,
)
from repro.delta.snapshot import SearchState
from repro.serve.fingerprint import job_fingerprint, sub_fingerprints

__all__ = ["Session"]


def _resolve_procedure(procedure: str) -> Callable[..., Any]:
    from repro.serve.registry import PROCEDURES

    try:
        return PROCEDURES[procedure]
    except KeyError:
        raise DeltaError(f"unknown procedure {procedure!r}") from None


class Session:
    """One editable instance, checked incrementally across versions."""

    def __init__(
        self,
        sws: SWS,
        procedure: str = "nonempty_pl",
        *,
        cache: Any = None,
        store: Any = None,
        budget: Any = None,
        **kwargs: Any,
    ) -> None:
        if procedure not in SUPPORTED_PROCEDURES:
            raise DeltaError(
                f"procedure {procedure!r} has no incremental re-check "
                f"(supported: {', '.join(sorted(SUPPORTED_PROCEDURES))})"
            )
        self.procedure = procedure
        self.procedure_fn = _resolve_procedure(procedure)
        self.kwargs = kwargs
        self.cache = cache
        self.store = store if store is not None else getattr(cache, "store", None)
        self.budget = budget
        self.current = sws
        self.tree = sub_fingerprints(sws)
        self.fingerprint = job_fingerprint(procedure, (sws,), kwargs)
        self.state: SearchState | None = None
        self.afa = None
        self.pending: SWS | None = None
        self.pending_tree = None
        self.rechecks = 0
        self.modes: dict[str, int] = {}
        metrics.counter("delta.sessions.opened").inc()

    # -- lifecycle ---------------------------------------------------------------

    def check(self, budget: Any = None) -> Any:
        """The initial (or current-version) answer, solving if needed.

        Tries, in order: the in-session snapshot, a persisted snapshot
        from the store, the answer cache, then a fresh solve (which
        captures a snapshot through the guard checkpoints).
        """
        if self.state is not None and self.state.answer is not None:
            return self.state.answer
        restored = self._load_snapshot()
        if restored is not None:
            self.state = restored
            if restored.answer is not None and not restored.answer.is_unknown:
                return restored.answer
        cached = self._cache_get()
        if cached is not None:
            if self.state is None:
                self.state = self._state_for_answer(cached)
            return cached
        self.state, answer = solve_fresh(
            self.procedure_fn,
            self.procedure,
            self.current,
            self.kwargs,
            budget if budget is not None else self.budget,
            self.tree,
        )
        self._publish(answer)
        return answer

    def edit(self, new: SWS) -> InstanceDelta:
        """Stage ``new`` as the next version; returns its delta.

        Staging is idempotent — a second ``edit`` before ``recheck``
        replaces the pending version.  The delta is diagnostic here;
        ``recheck`` recomputes it against whatever is finally staged.
        """
        self.pending_tree = sub_fingerprints(new)
        delta = compute_delta(self.current, new, self.tree, self.pending_tree)
        self.pending = new
        return delta

    def recheck(self, budget: Any = None) -> RecheckResult:
        """Re-check the staged (or current) version incrementally."""
        if self.state is None or self.state.answer is None:
            self.check(budget)
        new = self.pending if self.pending is not None else self.current
        new_tree = self.pending_tree if self.pending is not None else self.tree
        assert self.state is not None
        result, next_state, next_tree, next_afa = recheck(
            self.procedure_fn,
            self.procedure,
            self.current,
            self.state,
            self.tree,
            self.afa,
            new,
            self.kwargs,
            budget if budget is not None else self.budget,
            new_tree,
        )
        self.current = new
        self.tree = next_tree
        self.state = next_state
        self.afa = next_afa
        self.fingerprint = next_state.fingerprint
        self.pending = None
        self.pending_tree = None
        self.rechecks += 1
        self.modes[result.mode] = self.modes.get(result.mode, 0) + 1
        self._publish(result.answer)
        return result

    # -- persistence -------------------------------------------------------------

    def _publish(self, answer: Any) -> None:
        if answer is None:
            return
        if self.cache is not None and not answer.is_unknown:
            try:
                self.cache.put(self.fingerprint, answer, self.procedure)
            except Exception:  # noqa: BLE001 - cache degradation is non-fatal
                pass
        if self.store is not None and self.state is not None:
            try:
                self.store.put_search_state(
                    self.procedure,
                    self.fingerprint,
                    self.state,
                    meta=self.state.meta(),
                )
            except Exception:  # noqa: BLE001 - persistence is best-effort
                pass

    def _load_snapshot(self) -> SearchState | None:
        if self.store is None:
            return None
        try:
            state = self.store.get_search_state(self.procedure, self.fingerprint)
        except Exception:  # noqa: BLE001
            return None
        if not isinstance(state, SearchState):
            return None
        if state.root != self.tree.root:
            return None
        return state

    def _cache_get(self) -> Any | None:
        if self.cache is None:
            return None
        try:
            return self.cache.get(self.fingerprint, self.procedure)
        except Exception:  # noqa: BLE001
            return None

    def _state_for_answer(self, answer: Any) -> SearchState:
        return SearchState(
            procedure=self.procedure,
            fingerprint=self.fingerprint,
            root=self.tree.root,
            state_digests=dict(self.tree.states),
            answer=answer,
            witness=tuple(answer.witness)
            if getattr(answer, "witness", None) is not None
            else None,
        )

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-friendly session counters for CLIs and tests."""
        warm_modes = sum(
            count for mode, count in self.modes.items() if mode != "full"
        )
        return {
            "procedure": self.procedure,
            "fingerprint": self.fingerprint,
            "rechecks": self.rechecks,
            "modes": dict(sorted(self.modes.items())),
            "incremental_rechecks": warm_modes,
            "states": len(self.current.states),
        }
