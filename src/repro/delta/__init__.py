"""repro.delta — incremental re-solving for edited services.

The paper's decision procedures are one-shot; this subsystem turns them
into an interactive editing backend.  An edit to a service almost never
changes most of it, so a re-check should cost what the *edit* costs, not
what the *service* costs:

* :mod:`repro.delta.diff` — structural deltas from per-state
  sub-fingerprint Merkle trees (:func:`repro.serve.fingerprint.sub_fingerprints`).
* :mod:`repro.delta.snapshot` — :class:`SearchState`: the reusable
  remains of a solve, each component tagged with its supporting states.
* :mod:`repro.delta.engine` — the re-check itself: cached / resume /
  replay / warm / full, cheapest sound mode first.
* :mod:`repro.delta.session` — :class:`Session`: ``open → edit →
  recheck``, wired into the serve cache and the store's
  ``search_states`` table.
* ``python -m repro.delta`` — diff two versions, or replay an edit
  script from :mod:`repro.workloads.editing` and report per-step modes.

See ``docs/INCREMENTAL.md`` for the soundness argument per mode.
"""

from repro.delta.diff import InstanceDelta, affected_cone, compute_delta
from repro.delta.engine import DeltaError, RecheckResult, SUPPORTED_PROCEDURES
from repro.delta.session import Session
from repro.delta.snapshot import SNAPSHOT_COMPONENTS, SearchState

__all__ = [
    "DeltaError",
    "InstanceDelta",
    "RecheckResult",
    "SNAPSHOT_COMPONENTS",
    "SUPPORTED_PROCEDURES",
    "SearchState",
    "Session",
    "affected_cone",
    "compute_delta",
]
