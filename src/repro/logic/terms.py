"""Terms shared by the relational query languages.

A term is a :class:`Variable` or a :class:`Constant`.  Queries in CQ, UCQ,
FO and datalog are built from relational atoms over terms; the paper's CQ
and UCQ classes additionally allow equality and inequality atoms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A data constant embedded in a query."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)

    def __lt__(self, other: object) -> bool:
        # Stable ordering for deterministic output; variables sort before
        # constants, constants by repr.
        if isinstance(other, Variable):
            return False
        if isinstance(other, Constant):
            return repr(self.value) < repr(other.value)
        return NotImplemented


Term = Union[Variable, Constant]

#: A substitution maps variables to data values.
Substitution = Mapping[Variable, Any]


def var(name: str) -> Variable:
    """Shorthand constructor for a variable."""
    return Variable(name)


def vars_(*names: str) -> tuple[Variable, ...]:
    """Shorthand constructor for several variables at once."""
    return tuple(Variable(n) for n in names)


def const(value: Any) -> Constant:
    """Shorthand constructor for a constant."""
    return Constant(value)


def term_value(term: Term, substitution: Substitution) -> Any:
    """Resolve a term under a substitution.

    Raises :class:`KeyError` for unbound variables — callers are expected to
    only resolve terms they have already bound (safety is checked at query
    construction time).
    """
    if isinstance(term, Constant):
        return term.value
    return substitution[term]


def is_ground(terms: Iterable[Term]) -> bool:
    """Whether every term in the collection is a constant."""
    return all(isinstance(t, Constant) for t in terms)


class FreshVariableFactory:
    """Produces variables guaranteed not to collide with a reserved set.

    Query composition and unfolding (Sections 2 and 5 machinery) rename the
    variables of inlined query bodies apart; this factory centralizes that.
    """

    def __init__(self, reserved: Iterable[Variable] = (), prefix: str = "_v") -> None:
        self._taken = {v.name for v in reserved}
        self._prefix = prefix
        self._counter = itertools.count()

    def reserve(self, variables: Iterable[Variable]) -> None:
        """Mark more names as taken."""
        self._taken.update(v.name for v in variables)

    def fresh(self) -> Variable:
        """A variable whose name has never been handed out or reserved."""
        while True:
            candidate = f"{self._prefix}{next(self._counter)}"
            if candidate not in self._taken:
                self._taken.add(candidate)
                return Variable(candidate)

    def rename_apart(self, variables: Iterable[Variable]) -> dict[Variable, Variable]:
        """A renaming of ``variables`` onto entirely fresh ones."""
        return {v: self.fresh() for v in dict.fromkeys(variables)}


def partitions(items: list) -> Iterator[list[list]]:
    """Enumerate all set partitions of ``items``.

    Used by the Klug-style containment test for CQ with inequality, which
    quantifies over the equality patterns of the contained query's terms.
    The count is the Bell number of ``len(items)`` — callers keep queries
    small.
    """
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in partitions(rest):
        # Put `first` into each existing block ...
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1 :]
        # ... or into a block of its own.
        yield [[first]] + partition
