"""Textual syntax for the relational rule languages.

Hand-building query ASTs is verbose; this module provides a small concrete
syntax for the languages SWS rules are written in:

Conjunctive queries / datalog rules (``parse_cq``, ``parse_rule``)::

    Q(x, y) :- E(x, y), F(y, z), x != z, w = 'tag'

UCQs (``parse_ucq``) — disjuncts with a shared head predicate, separated
by ``;``::

    Q(x) :- E(x, y) ; Q(x) :- F(x, y), x != y

First-order queries (``parse_fo_query``) — ``head := formula`` with the
connectives ``and``, ``or``, ``not``, quantifiers ``exists``/``forall``
(bound variables before a ``.``), equality ``=`` / ``!=`` and relational
atoms::

    Q(f, r) := Act_qa(f) and (Act_qt(r) or not exists u . Act_qt(u))

Lexical rules: identifiers starting with a lowercase letter are variables;
identifiers starting with an uppercase letter or ``_`` are relation names
in atom position; constants are numbers or single-quoted strings.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import QueryError
from repro.logic import fo
from repro.logic.cq import Atom, Comparison, ConjunctiveQuery
from repro.logic.datalog import Rule
from repro.logic.terms import Constant, Term, Variable
from repro.logic.ucq import UnionQuery


class _Lexer:
    SYMBOLS = {":-", ":=", "!=", "=", "(", ")", ",", ".", ";"}

    def __init__(self, text: str) -> None:
        self.tokens = list(self._tokenize(text))
        self.position = 0

    def _tokenize(self, text: str) -> Iterator[tuple[str, object]]:
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            two = text[i : i + 2]
            if two in self.SYMBOLS:
                yield ("sym", two)
                i += 2
                continue
            if ch in self.SYMBOLS:
                yield ("sym", ch)
                i += 1
                continue
            if ch == "'":
                j = text.find("'", i + 1)
                if j < 0:
                    raise QueryError(f"unterminated string constant at {i}")
                yield ("const", text[i + 1 : j])
                i = j + 1
                continue
            if ch.isdigit() or (ch == "-" and i + 1 < len(text) and text[i + 1].isdigit()):
                j = i + 1
                while j < len(text) and (text[j].isdigit() or text[j] == "."):
                    j += 1
                lexeme = text[i:j]
                yield ("const", float(lexeme) if "." in lexeme else int(lexeme))
                i = j
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                yield ("name", text[i:j])
                i = j
                continue
            raise QueryError(f"unexpected character {ch!r} at {i}")

    def peek(self) -> tuple[str, object] | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> tuple[str, object]:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of input")
        self.position += 1
        return token

    def expect(self, value: str) -> None:
        kind, lexeme = self.next()
        if kind != "sym" or lexeme != value:
            raise QueryError(f"expected {value!r}, got {lexeme!r}")

    def at_symbol(self, value: str) -> bool:
        token = self.peek()
        return token is not None and token == ("sym", value)

    def done(self) -> bool:
        return self.peek() is None


def _term(lexer: _Lexer) -> Term:
    kind, lexeme = lexer.next()
    if kind == "const":
        return Constant(lexeme)
    if kind == "name":
        assert isinstance(lexeme, str)
        return Variable(lexeme)
    raise QueryError(f"expected a term, got {lexeme!r}")


def _term_list(lexer: _Lexer) -> list[Term]:
    lexer.expect("(")
    terms: list[Term] = []
    if not lexer.at_symbol(")"):
        terms.append(_term(lexer))
        while lexer.at_symbol(","):
            lexer.next()
            terms.append(_term(lexer))
    lexer.expect(")")
    return terms


def _head(lexer: _Lexer) -> tuple[str, list[Term]]:
    kind, name = lexer.next()
    if kind != "name":
        raise QueryError(f"expected a head predicate, got {name!r}")
    assert isinstance(name, str)
    return name, _term_list(lexer)


def _body_item(lexer: _Lexer) -> Atom | Comparison:
    # Either  Rel(t, ...)  or  term (=|!=) term.
    checkpoint = lexer.position
    kind, lexeme = lexer.next()
    if kind == "name" and lexer.at_symbol("("):
        assert isinstance(lexeme, str)
        return Atom(lexeme, _term_list(lexer))
    # Comparison: rewind and parse term op term.
    lexer.position = checkpoint
    left = _term(lexer)
    op_kind, op = lexer.next()
    if op_kind != "sym" or op not in {"=", "!="}:
        raise QueryError(f"expected '=' or '!=', got {op!r}")
    right = _term(lexer)
    return Comparison(left, right, negated=(op == "!="))


def _cq_clause(lexer: _Lexer) -> ConjunctiveQuery:
    name, head = _head(lexer)
    lexer.expect(":-")
    atoms: list[Atom] = []
    comparisons: list[Comparison] = []
    while True:
        item = _body_item(lexer)
        if isinstance(item, Atom):
            atoms.append(item)
        else:
            comparisons.append(item)
        if lexer.at_symbol(","):
            lexer.next()
            continue
        break
    return ConjunctiveQuery(head, atoms, comparisons, name)


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse one conjunctive query, e.g. ``Q(x) :- E(x, y), x != y``."""
    lexer = _Lexer(text)
    query = _cq_clause(lexer)
    if not lexer.done():
        raise QueryError(f"trailing tokens: {lexer.tokens[lexer.position:]}")
    return query


def parse_ucq(text: str) -> UnionQuery:
    """Parse a UCQ: CQ clauses separated by ``;`` (same head predicate)."""
    lexer = _Lexer(text)
    disjuncts = [_cq_clause(lexer)]
    while lexer.at_symbol(";"):
        lexer.next()
        disjuncts.append(_cq_clause(lexer))
    if not lexer.done():
        raise QueryError(f"trailing tokens: {lexer.tokens[lexer.position:]}")
    names = {d.name for d in disjuncts}
    if len(names) > 1:
        raise QueryError(f"disjuncts use different head predicates: {sorted(names)}")
    return UnionQuery(disjuncts, name=disjuncts[0].name)


def parse_rule(text: str) -> Rule:
    """Parse a datalog rule (same syntax as a CQ clause)."""
    query = parse_cq(text)
    return Rule(Atom(query.name, query.head), query.atoms, query.comparisons)


def parse_program(text: str):
    """Parse a datalog program: one rule per non-empty line (or ``;``)."""
    from repro.logic.datalog import Program

    chunks: list[str] = []
    for line in text.replace(";", "\n").splitlines():
        line = line.strip()
        if line and not line.startswith("%"):
            chunks.append(line)
    return Program([parse_rule(chunk) for chunk in chunks])


# -- FO ------------------------------------------------------------------------


def _fo_formula(lexer: _Lexer) -> fo.FOFormula:
    return _fo_quantified(lexer)


def _fo_quantified(lexer: _Lexer) -> fo.FOFormula:
    token = lexer.peek()
    if token is not None and token[0] == "name" and token[1] in {"exists", "forall"}:
        _kind, quantifier = lexer.next()
        variables: list[Variable] = []
        while True:
            kind, lexeme = lexer.next()
            if kind != "name":
                raise QueryError(f"expected a bound variable, got {lexeme!r}")
            assert isinstance(lexeme, str)
            variables.append(Variable(lexeme))
            if lexer.at_symbol(","):
                lexer.next()
                continue
            break
        lexer.expect(".")
        body = _fo_quantified(lexer)
        cls = fo.Exists if quantifier == "exists" else fo.Forall
        return cls(tuple(variables), body)
    return _fo_or(lexer)


def _fo_or(lexer: _Lexer) -> fo.FOFormula:
    parts = [_fo_and(lexer)]
    while True:
        token = lexer.peek()
        if token == ("name", "or"):
            lexer.next()
            parts.append(_fo_and(lexer))
        else:
            break
    return parts[0] if len(parts) == 1 else fo.OrF(parts)


def _fo_and(lexer: _Lexer) -> fo.FOFormula:
    parts = [_fo_unary(lexer)]
    while True:
        token = lexer.peek()
        if token == ("name", "and"):
            lexer.next()
            parts.append(_fo_unary(lexer))
        else:
            break
    return parts[0] if len(parts) == 1 else fo.AndF(parts)


def _fo_unary(lexer: _Lexer) -> fo.FOFormula:
    token = lexer.peek()
    if token == ("name", "not"):
        lexer.next()
        return fo.NotF(_fo_unary(lexer))
    if token is not None and token[0] == "name" and token[1] in {"exists", "forall"}:
        return _fo_quantified(lexer)
    if lexer.at_symbol("("):
        lexer.next()
        inner = _fo_formula(lexer)
        lexer.expect(")")
        return inner
    return _fo_atom(lexer)


def _fo_atom(lexer: _Lexer) -> fo.FOFormula:
    checkpoint = lexer.position
    kind, lexeme = lexer.next()
    if kind == "name" and lexer.at_symbol("("):
        assert isinstance(lexeme, str)
        return fo.RelAtom(Atom(lexeme, _term_list(lexer)))
    lexer.position = checkpoint
    left = _term(lexer)
    op_kind, op = lexer.next()
    if op_kind != "sym" or op not in {"=", "!="}:
        raise QueryError(f"expected '=' or '!=', got {op!r}")
    right = _term(lexer)
    equality = fo.Equals(left, right)
    return fo.NotF(equality) if op == "!=" else equality


def parse_fo(text: str) -> fo.FOFormula:
    """Parse a first-order formula (see the module docstring's syntax)."""
    lexer = _Lexer(text)
    formula = _fo_formula(lexer)
    if not lexer.done():
        raise QueryError(f"trailing tokens: {lexer.tokens[lexer.position:]}")
    return formula


def parse_fo_query(text: str) -> fo.FOQuery:
    """Parse ``Head(x, ...) := formula`` into an FO query."""
    lexer = _Lexer(text)
    name, head = _head(lexer)
    lexer.expect(":=")
    formula = _fo_formula(lexer)
    if not lexer.done():
        raise QueryError(f"trailing tokens: {lexer.tokens[lexer.position:]}")
    head_vars: list[Variable] = []
    for term in head:
        if not isinstance(term, Variable):
            raise QueryError("FO query heads must be variables")
        head_vars.append(term)
    return fo.FOQuery(tuple(head_vars), formula, name)
