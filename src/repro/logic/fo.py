"""First-order queries.

SWS(FO, FO) services — the class that captures the data-driven transducer
models of Abiteboul et al. and Deutsch et al. (Section 3, "The peer model")
— express transition and synthesis rules as first-order queries.  All three
decision problems are undecidable for this class (Theorem 4.1(1), by
reduction from FO satisfiability), so the library provides:

* exact *evaluation* over finite databases with active-domain semantics,
  which is all the run semantics of Section 2 needs; and
* a *bounded-model satisfiability* search (a MACE-style grounding of the
  formula to SAT for increasing domain sizes), which powers the sound but
  necessarily incomplete analysis procedures in :mod:`repro.analysis.bounded`.

Formulas are built from relational atoms (:class:`repro.logic.cq.Atom`),
equality, the boolean connectives and the two quantifiers.  A
:class:`FOQuery` pairs a formula with a tuple of free head variables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.data.relation import Relation, Row
from repro.errors import QueryError
from repro.logic import pl
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.terms import Constant, Term, Variable, term_value


class FOFormula:
    """Base class for first-order formulas."""

    def free_variables(self) -> frozenset[Variable]:
        """Variables not bound by a quantifier."""
        raise NotImplementedError

    def constants(self) -> frozenset[Constant]:
        """All constants in the formula."""
        raise NotImplementedError

    def relations(self) -> frozenset[str]:
        """All relation names in the formula."""
        raise NotImplementedError

    def _holds(
        self,
        database: Mapping[str, Relation],
        assignment: dict[Variable, Any],
        domain: Sequence[Any],
    ) -> bool:
        raise NotImplementedError

    def _ground(
        self,
        assignment: dict[Variable, Any],
        domain: Sequence[Any],
        fact_var: "FactNamer",
    ) -> pl.Formula:
        raise NotImplementedError

    # -- sugar ------------------------------------------------------------------

    def __and__(self, other: "FOFormula") -> "FOFormula":
        return AndF((self, other))

    def __or__(self, other: "FOFormula") -> "FOFormula":
        return OrF((self, other))

    def __invert__(self) -> "FOFormula":
        return NotF(self)


@dataclass(frozen=True)
class RelAtom(FOFormula):
    """A relational atom used as a formula."""

    atom: Atom

    def free_variables(self) -> frozenset[Variable]:
        return self.atom.variables()

    def constants(self) -> frozenset[Constant]:
        return self.atom.constants()

    def relations(self) -> frozenset[str]:
        return frozenset({self.atom.relation})

    def _holds(self, database, assignment, domain) -> bool:
        if self.atom.relation not in database:
            raise QueryError(
                f"formula mentions relation {self.atom.relation!r} absent "
                f"from the database"
            )
        row = tuple(term_value(t, assignment) for t in self.atom.terms)
        return row in database[self.atom.relation]

    def _ground(self, assignment, domain, fact_var) -> pl.Formula:
        row = tuple(term_value(t, assignment) for t in self.atom.terms)
        return pl.Var(fact_var(self.atom.relation, row))

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class Equals(FOFormula):
    """An equality between two terms."""

    left: Term
    right: Term

    def free_variables(self) -> frozenset[Variable]:
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Variable)
        )

    def constants(self) -> frozenset[Constant]:
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Constant)
        )

    def relations(self) -> frozenset[str]:
        return frozenset()

    def _holds(self, database, assignment, domain) -> bool:
        return term_value(self.left, assignment) == term_value(self.right, assignment)

    def _ground(self, assignment, domain, fact_var) -> pl.Formula:
        same = term_value(self.left, assignment) == term_value(self.right, assignment)
        return pl.TRUE if same else pl.FALSE

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class NotF(FOFormula):
    """Negation."""

    operand: FOFormula

    def free_variables(self) -> frozenset[Variable]:
        return self.operand.free_variables()

    def constants(self) -> frozenset[Constant]:
        return self.operand.constants()

    def relations(self) -> frozenset[str]:
        return self.operand.relations()

    def _holds(self, database, assignment, domain) -> bool:
        return not self.operand._holds(database, assignment, domain)

    def _ground(self, assignment, domain, fact_var) -> pl.Formula:
        return pl.Not(self.operand._ground(assignment, domain, fact_var))

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class AndF(FOFormula):
    """N-ary conjunction."""

    operands: tuple[FOFormula, ...]

    def __init__(self, operands: Iterable[FOFormula]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def free_variables(self) -> frozenset[Variable]:
        return frozenset().union(*(op.free_variables() for op in self.operands))

    def constants(self) -> frozenset[Constant]:
        return frozenset().union(*(op.constants() for op in self.operands))

    def relations(self) -> frozenset[str]:
        return frozenset().union(*(op.relations() for op in self.operands))

    def _holds(self, database, assignment, domain) -> bool:
        return all(op._holds(database, assignment, domain) for op in self.operands)

    def _ground(self, assignment, domain, fact_var) -> pl.Formula:
        return pl.And([op._ground(assignment, domain, fact_var) for op in self.operands])

    def __str__(self) -> str:
        return " ∧ ".join(f"({op})" for op in self.operands) if self.operands else "⊤"


@dataclass(frozen=True)
class OrF(FOFormula):
    """N-ary disjunction."""

    operands: tuple[FOFormula, ...]

    def __init__(self, operands: Iterable[FOFormula]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def free_variables(self) -> frozenset[Variable]:
        return frozenset().union(*(op.free_variables() for op in self.operands))

    def constants(self) -> frozenset[Constant]:
        return frozenset().union(*(op.constants() for op in self.operands))

    def relations(self) -> frozenset[str]:
        return frozenset().union(*(op.relations() for op in self.operands))

    def _holds(self, database, assignment, domain) -> bool:
        return any(op._holds(database, assignment, domain) for op in self.operands)

    def _ground(self, assignment, domain, fact_var) -> pl.Formula:
        return pl.Or([op._ground(assignment, domain, fact_var) for op in self.operands])

    def __str__(self) -> str:
        return " ∨ ".join(f"({op})" for op in self.operands) if self.operands else "⊥"


@dataclass(frozen=True)
class Exists(FOFormula):
    """Existential quantification over one or more variables."""

    variables: tuple[Variable, ...]
    body: FOFormula

    def __init__(self, variables: Iterable[Variable], body: FOFormula) -> None:
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "body", body)

    def free_variables(self) -> frozenset[Variable]:
        return self.body.free_variables() - frozenset(self.variables)

    def constants(self) -> frozenset[Constant]:
        return self.body.constants()

    def relations(self) -> frozenset[str]:
        return self.body.relations()

    def _holds(self, database, assignment, domain) -> bool:
        for values in itertools.product(domain, repeat=len(self.variables)):
            extended = dict(assignment)
            extended.update(zip(self.variables, values))
            if self.body._holds(database, extended, domain):
                return True
        return False

    def _ground(self, assignment, domain, fact_var) -> pl.Formula:
        parts = []
        for values in itertools.product(domain, repeat=len(self.variables)):
            extended = dict(assignment)
            extended.update(zip(self.variables, values))
            parts.append(self.body._ground(extended, domain, fact_var))
        return pl.Or(parts)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"∃{names}.({self.body})"


@dataclass(frozen=True)
class Forall(FOFormula):
    """Universal quantification over one or more variables."""

    variables: tuple[Variable, ...]
    body: FOFormula

    def __init__(self, variables: Iterable[Variable], body: FOFormula) -> None:
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "body", body)

    def free_variables(self) -> frozenset[Variable]:
        return self.body.free_variables() - frozenset(self.variables)

    def constants(self) -> frozenset[Constant]:
        return self.body.constants()

    def relations(self) -> frozenset[str]:
        return self.body.relations()

    def _holds(self, database, assignment, domain) -> bool:
        for values in itertools.product(domain, repeat=len(self.variables)):
            extended = dict(assignment)
            extended.update(zip(self.variables, values))
            if not self.body._holds(database, extended, domain):
                return False
        return True

    def _ground(self, assignment, domain, fact_var) -> pl.Formula:
        parts = []
        for values in itertools.product(domain, repeat=len(self.variables)):
            extended = dict(assignment)
            extended.update(zip(self.variables, values))
            parts.append(self.body._ground(extended, domain, fact_var))
        return pl.And(parts)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"∀{names}.({self.body})"


def atom(relation: str, *terms: Term) -> RelAtom:
    """Shorthand for a relational atom formula."""
    return RelAtom(Atom(relation, terms))


class FOQuery:
    """A first-order query: free head variables plus a formula.

    Evaluation uses *active-domain* semantics: quantifiers and free
    variables range over the values occurring in the database plus the
    query's own constants.  This matches the relational-transducer models
    the paper builds on (genericity/domain independence is the caller's
    concern, as usual in that literature).
    """

    def __init__(
        self,
        head: Iterable[Variable],
        formula: FOFormula,
        name: str = "Q",
    ) -> None:
        self.head: tuple[Variable, ...] = tuple(head)
        self.formula = formula
        self.name = name
        if len(set(self.head)) != len(self.head):
            raise QueryError(f"duplicate head variables in {name!r}")
        # Head variables that do not occur freely range over the whole
        # active domain — legal FO, occasionally useful, kept.  The
        # converse is an error: a free variable outside the head would be
        # unbound during evaluation.
        stray = formula.free_variables() - frozenset(self.head)
        if stray:
            raise QueryError(
                f"free variables {sorted(v.name for v in stray)} of "
                f"{name!r} are not in the head; quantify them explicitly"
            )
        self._unconstrained = frozenset(self.head) - formula.free_variables()

    @property
    def arity(self) -> int:
        """Head arity."""
        return len(self.head)

    def relations(self) -> frozenset[str]:
        """All relation names the query mentions."""
        return self.formula.relations()

    def evaluate(self, database: Mapping[str, Relation]) -> frozenset[Row]:
        """Answers under active-domain semantics."""
        domain = sorted(active_domain(database, self.formula), key=repr)
        out: set[Row] = set()
        for values in itertools.product(domain, repeat=len(self.head)):
            assignment = dict(zip(self.head, values))
            if self.formula._holds(database, assignment, domain):
                out.add(values)
        return frozenset(out)

    def holds(self, database: Mapping[str, Relation]) -> bool:
        """For boolean queries: truth of the (closed) formula."""
        if self.head:
            return bool(self.evaluate(database))
        domain = sorted(active_domain(database, self.formula), key=repr)
        return self.formula._holds(database, {}, domain)

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        return f"{self.name}({head}) := {self.formula}"


def active_domain(
    database: Mapping[str, Relation], formula: FOFormula | None = None
) -> frozenset[Any]:
    """Values in the database, plus the formula's constants."""
    values: set[Any] = set()
    for relation in database.values():
        values |= relation.active_domain()
    if formula is not None:
        values |= {c.value for c in formula.constants()}
    if not values:
        # FO evaluation over an entirely empty database still needs one
        # element for the quantifiers to range over; a single fresh value
        # is the canonical choice (any one-element domain is isomorphic).
        values.add("#adom")
    return frozenset(values)


# -- bounded model finding -------------------------------------------------------


class FactNamer:
    """Names propositional variables for potential facts ``R(row)``."""

    def __init__(self) -> None:
        self._names: dict[tuple[str, Row], str] = {}

    def __call__(self, relation: str, row: Row) -> str:
        key = (relation, row)
        if key not in self._names:
            self._names[key] = f"fact_{relation}_" + "_".join(repr(v) for v in row)
        return self._names[key]

    def decode(self) -> dict[str, tuple[str, Row]]:
        """Map from propositional variable name back to the fact."""
        return {name: key for key, name in self._names.items()}


def ground_to_sat(
    formula: FOFormula, domain: Sequence[Any], fact_var: FactNamer | None = None
) -> pl.Formula:
    """Ground a *closed* FO formula over an explicit finite domain.

    Every potential fact becomes a propositional variable; quantifiers
    expand into finite conjunctions/disjunctions.  The result is
    satisfiable iff the formula has a model with that domain (constants
    interpreted as themselves — include them in ``domain``).
    """
    free = formula.free_variables()
    if free:
        raise QueryError(
            f"grounding requires a closed formula; free: {sorted(v.name for v in free)}"
        )
    return formula._ground({}, domain, fact_var or FactNamer())


def bounded_satisfiable(
    formula: FOFormula, max_domain_size: int = 3
) -> tuple[bool, int | None]:
    """Search for a finite model with at most ``max_domain_size`` elements.

    Returns ``(found, size)``; ``(False, None)`` means no model up to the
    bound exists — which, FO satisfiability being undecidable, does *not*
    imply unsatisfiability.  Constants of the formula are always part of
    the domain (mutually distinct, as usual for data values).
    """
    from repro.logic.sat import satisfiable

    constants = sorted({c.value for c in formula.constants()}, key=repr)
    base = len(constants)
    upper = max(base, max_domain_size)
    for size in range(max(base, 1), upper + 1):
        domain = list(constants) + [f"#e{i}" for i in range(size - base)]
        grounded = ground_to_sat(formula, domain)
        if satisfiable(grounded):
            return True, size
    return False, None


def cq_to_fo(query: ConjunctiveQuery) -> FOQuery:
    """View a conjunctive query as an FO query (∃-closure of the body).

    Head constants and repeated head variables are normalized into fresh
    head variables constrained by equalities, since :class:`FOQuery` heads
    are duplicate-free variable tuples.
    """
    parts: list[FOFormula] = [RelAtom(a) for a in query.atoms]
    for comp in query.comparisons:
        equality = Equals(comp.left, comp.right)
        parts.append(NotF(equality) if comp.negated else equality)

    head: list[Variable] = []
    extra: list[FOFormula] = []
    seen: set[Variable] = set()
    for i, term in enumerate(query.head):
        if isinstance(term, Variable) and term not in seen:
            head.append(term)
            seen.add(term)
        else:
            fresh = Variable(f"_h{i}")
            head.append(fresh)
            extra.append(Equals(fresh, term))

    body: FOFormula = AndF(parts + extra) if extra else AndF(parts)
    bound = sorted(query.variables() - frozenset(head))
    if bound:
        body = Exists(bound, body)
    return FOQuery(head, body, query.name)
