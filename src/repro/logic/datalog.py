"""Datalog programs and sirups.

Two of the paper's complexity arguments lean on datalog:

* the EXPTIME lower bound for SWS(CQ, UCQ) non-emptiness is by reduction
  from *sirup* evaluation — single-rule datalog programs with a single
  ground fact, EXPTIME-complete by Gottlob & Papadimitriou (Theorem 4.1(2));
* the maximally-contained rewriting algorithm of Duschka & Genesereth used
  in the UC2RPQ composition case (Corollary 5.2) produces a datalog program
  (the *inverse rules*), which must then be evaluated.

This module provides datalog rules and programs, bottom-up semi-naive
evaluation, and sirup construction/evaluation.  Rules may carry =/≠
comparisons in their bodies (needed by the inverse-rule rewriting for
queries with inequality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.data.relation import Relation, Row
from repro.errors import QueryError
from repro.logic.cq import Atom, Comparison, ConjunctiveQuery
from repro.logic.terms import Constant, Term, Variable


@dataclass(frozen=True)
class Rule:
    """A datalog rule ``head :- body, comparisons``.

    Safety: every head variable must occur in a positive body atom.
    """

    head: Atom
    body: tuple[Atom, ...]
    comparisons: tuple[Comparison, ...] = ()

    def __init__(
        self,
        head: Atom,
        body: Iterable[Atom],
        comparisons: Iterable[Comparison] = (),
    ) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "comparisons", tuple(comparisons))
        body_vars = {v for a in self.body for v in a.variables()}
        unsafe = self.head.variables() - body_vars
        if unsafe:
            raise QueryError(
                f"unsafe rule: head variables {sorted(v.name for v in unsafe)} "
                f"missing from the body"
            )

    def as_query(self) -> ConjunctiveQuery:
        """The rule body as a CQ with the head terms as its head."""
        return ConjunctiveQuery(
            self.head.terms, self.body, self.comparisons, self.head.relation
        )

    def __str__(self) -> str:
        body = ", ".join([str(a) for a in self.body] + [str(c) for c in self.comparisons])
        return f"{self.head} :- {body}" if body else f"{self.head}."


class Program:
    """A datalog program: a list of rules.

    IDB predicates are those appearing in some rule head; every other
    predicate is EDB and must be supplied by the input database.
    """

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules: tuple[Rule, ...] = tuple(rules)

    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by rules."""
        return frozenset(rule.head.relation for rule in self.rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates the program reads but never derives."""
        idb = self.idb_predicates()
        out: set[str] = set()
        for rule in self.rules:
            out |= {a.relation for a in rule.body if a.relation not in idb}
        return frozenset(out)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self, edb: Mapping[str, Relation], max_iterations: int | None = None
    ) -> dict[str, frozenset[Row]]:
        """Least fixpoint via semi-naive bottom-up evaluation.

        ``edb`` supplies the extensional relations.  Returns all derived
        facts per IDB predicate.  ``max_iterations`` bounds the number of
        rounds (handy for instrumentation); the fixpoint of a datalog
        program over a finite database is always reached in finitely many
        rounds, so ``None`` means "run to fixpoint".
        """
        idb = self.idb_predicates()
        facts: dict[str, set[Row]] = {p: set() for p in idb}
        # Seed round: rules whose bodies touch only EDB can fire immediately;
        # the uniform loop below handles everything, starting from empty IDB.
        delta: dict[str, set[Row]] = {p: set() for p in idb}
        rounds = 0
        while True:
            rounds += 1
            if max_iterations is not None and rounds > max_iterations:
                break
            new: dict[str, set[Row]] = {p: set() for p in idb}
            database = self._combined(edb, facts)
            for rule in self.rules:
                derived = rule.as_query().evaluate(database)
                fresh = derived - facts[rule.head.relation]
                new[rule.head.relation] |= fresh
            if not any(new.values()):
                break
            for predicate, rows in new.items():
                facts[predicate] |= rows
            delta = new
        del delta
        return {p: frozenset(rows) for p, rows in facts.items()}

    def _combined(
        self, edb: Mapping[str, Relation], facts: Mapping[str, set[Row]]
    ) -> dict[str, Relation]:
        from repro.data.schema import RelationSchema

        database: dict[str, Relation] = dict(edb)
        arities = self._idb_arities()
        for predicate, rows in facts.items():
            arity = arities[predicate]
            schema = RelationSchema(predicate, [f"a{i}" for i in range(arity)])
            database[predicate] = Relation(schema, rows)
        return database

    def _idb_arities(self) -> dict[str, int]:
        arities: dict[str, int] = {}
        for rule in self.rules:
            name = rule.head.relation
            arity = len(rule.head.terms)
            if arities.setdefault(name, arity) != arity:
                raise QueryError(f"predicate {name!r} used with two arities")
        return arities


@dataclass(frozen=True)
class Sirup:
    """A single-rule program with ground facts and a ground goal.

    Deciding whether the goal is derivable is EXPTIME-complete (Gottlob &
    Papadimitriou), the source of the paper's EXPTIME lower bound for
    SWS(CQ, UCQ) non-emptiness.
    """

    rule: Rule
    facts: tuple[tuple[str, Row], ...]
    goal: tuple[str, Row]

    def __init__(
        self,
        rule: Rule,
        facts: Iterable[tuple[str, Sequence]],
        goal: tuple[str, Sequence],
    ) -> None:
        object.__setattr__(self, "rule", rule)
        object.__setattr__(
            self, "facts", tuple((p, tuple(row)) for p, row in facts)
        )
        object.__setattr__(self, "goal", (goal[0], tuple(goal[1])))

    def accepts(self) -> bool:
        """Whether the goal is derivable from the facts via the rule."""
        from repro.data.schema import RelationSchema

        idb = self.rule.head.relation
        # Split facts into EDB relations and seed IDB facts.
        edb_rows: dict[str, set[Row]] = {}
        seed_idb: set[Row] = set()
        for predicate, row in self.facts:
            if predicate == idb:
                seed_idb.add(row)
            else:
                edb_rows.setdefault(predicate, set()).add(row)
        # Seed IDB facts are injected through a fresh EDB predicate and a
        # copy rule, so Program.evaluate can remain pure bottom-up.
        seed_predicate = f"_seed_{idb}"
        arity = len(self.rule.head.terms)
        head_vars = tuple(Variable(f"x{i}") for i in range(arity))
        copy_rule = Rule(
            Atom(idb, head_vars), [Atom(seed_predicate, head_vars)]
        )
        program = Program([self.rule, copy_rule])
        edb: dict[str, Relation] = {}
        for predicate, rows in edb_rows.items():
            width = len(next(iter(rows)))
            schema = RelationSchema(predicate, [f"a{i}" for i in range(width)])
            edb[predicate] = Relation(schema, rows)
        seed_schema = RelationSchema(seed_predicate, [f"a{i}" for i in range(arity)])
        edb[seed_predicate] = Relation(seed_schema, seed_idb)
        # EDB predicates mentioned by the rule but without facts are empty.
        for predicate in program.edb_predicates():
            if predicate not in edb:
                arity_guess = self._predicate_arity(predicate)
                schema = RelationSchema(
                    predicate, [f"a{i}" for i in range(arity_guess)]
                )
                edb[predicate] = Relation(schema, set())
        derived = program.evaluate(edb)
        goal_predicate, goal_row = self.goal
        if goal_predicate == idb:
            return goal_row in derived.get(idb, frozenset())
        return goal_row in edb.get(goal_predicate, Relation(
            RelationSchema(goal_predicate, [f"a{i}" for i in range(len(goal_row))]), ()
        )).rows

    def _predicate_arity(self, predicate: str) -> int:
        for atom_ in self.rule.body:
            if atom_.relation == predicate:
                return len(atom_.terms)
        raise QueryError(f"predicate {predicate!r} not used by the sirup rule")
