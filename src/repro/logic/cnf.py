"""Conversion of propositional formulas to CNF.

Two routes are provided:

* :func:`to_cnf` — the classical distributive transformation.  Output is
  logically *equivalent* to the input but may be exponentially larger; used
  for small formulas and in tests as an oracle.
* :func:`tseitin` — the Tseitin transformation.  Output is *equisatisfiable*
  (introduces fresh definition variables) and only linearly larger; used by
  the SAT-backed decision procedures of Section 4 (the NP upper bounds for
  SWS_nr(PL, PL)).

Clauses are frozensets of :class:`Literal`; a CNF is a list of clauses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.logic import pl
from repro.errors import QueryError


@dataclass(frozen=True, order=True)
class Literal:
    """A possibly-negated propositional variable."""

    variable: str
    positive: bool = True

    def negated(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.variable, not self.positive)

    def __str__(self) -> str:
        return self.variable if self.positive else f"!{self.variable}"


Clause = frozenset[Literal]
CNF = list[Clause]


def _nnf(formula: pl.Formula, negate: bool) -> pl.Formula:
    """Negation normal form (negations pushed to variables)."""
    if isinstance(formula, pl.Var):
        return pl.Not(formula) if negate else formula
    if isinstance(formula, pl.Const):
        return pl.Const(formula.value != negate)
    if isinstance(formula, pl.Not):
        return _nnf(formula.operand, not negate)
    if isinstance(formula, pl.And):
        parts = [_nnf(op, negate) for op in formula.operands]
        return pl.Or(parts) if negate else pl.And(parts)
    if isinstance(formula, pl.Or):
        parts = [_nnf(op, negate) for op in formula.operands]
        return pl.And(parts) if negate else pl.Or(parts)
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def to_cnf(formula: pl.Formula) -> CNF:
    """Equivalent CNF via NNF + distribution.  Exponential in the worst case."""
    nnf = _nnf(formula.simplify(), negate=False).simplify()
    return _distribute(nnf)


def _distribute(formula: pl.Formula) -> CNF:
    if isinstance(formula, pl.Const):
        return [] if formula.value else [frozenset()]
    if isinstance(formula, pl.Var):
        return [frozenset({Literal(formula.name)})]
    if isinstance(formula, pl.Not):
        if isinstance(formula.operand, pl.Var):
            return [frozenset({Literal(formula.operand.name, positive=False)})]
        raise QueryError("formula is not in NNF")
    if isinstance(formula, pl.And):
        clauses: CNF = []
        for op in formula.operands:
            clauses.extend(_distribute(op))
        return _prune(clauses)
    if isinstance(formula, pl.Or):
        parts = [_distribute(op) for op in formula.operands]
        clauses = [
            frozenset(itertools.chain.from_iterable(choice))
            for choice in itertools.product(*parts)
        ]
        return _prune(clauses)
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def _prune(clauses: Iterable[Clause]) -> CNF:
    """Drop tautological clauses and duplicates."""
    seen: set[Clause] = set()
    out: CNF = []
    for clause in clauses:
        if any(lit.negated() in clause for lit in clause):
            continue
        if clause in seen:
            continue
        seen.add(clause)
        out.append(clause)
    return out


class FreshVariables:
    """Generator of fresh variable names with a fixed prefix."""

    def __init__(self, prefix: str = "_t") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def __next__(self) -> str:
        return f"{self._prefix}{next(self._counter)}"

    def __iter__(self) -> Iterator[str]:
        return self


def tseitin(formula: pl.Formula, fresh: FreshVariables | None = None) -> tuple[CNF, str]:
    """Equisatisfiable CNF via the Tseitin transformation.

    Returns ``(clauses, root)`` where ``root`` is the definition variable
    standing for the whole formula; the clauses assert ``root`` together with
    the definitional biconditionals, so the CNF is satisfiable iff the
    formula is.
    """
    fresh = fresh or FreshVariables()
    clauses: CNF = []
    root = _tseitin_define(formula.simplify(), clauses, fresh)
    clauses.append(frozenset({Literal(root)}))
    return _prune(clauses), root


def _tseitin_define(
    formula: pl.Formula, clauses: CNF, fresh: FreshVariables
) -> str:
    if isinstance(formula, pl.Var):
        return formula.name
    if isinstance(formula, pl.Const):
        name = next(fresh)
        lit = Literal(name, positive=formula.value)
        clauses.append(frozenset({lit}))
        return name
    if isinstance(formula, pl.Not):
        inner = _tseitin_define(formula.operand, clauses, fresh)
        name = next(fresh)
        # name <-> !inner
        clauses.append(frozenset({Literal(name, False), Literal(inner, False)}))
        clauses.append(frozenset({Literal(name), Literal(inner)}))
        return name
    if isinstance(formula, pl.And):
        parts = [_tseitin_define(op, clauses, fresh) for op in formula.operands]
        name = next(fresh)
        # name -> each part;  all parts -> name
        for part in parts:
            clauses.append(frozenset({Literal(name, False), Literal(part)}))
        clauses.append(
            frozenset({Literal(name)} | {Literal(p, False) for p in parts})
        )
        return name
    if isinstance(formula, pl.Or):
        parts = [_tseitin_define(op, clauses, fresh) for op in formula.operands]
        name = next(fresh)
        # each part -> name;  name -> some part
        for part in parts:
            clauses.append(frozenset({Literal(name), Literal(part, False)}))
        clauses.append(frozenset({Literal(name, False)} | {Literal(p) for p in parts}))
        return name
    raise QueryError(f"unknown formula node {type(formula).__name__}")
