"""Conjunctive queries with equality and inequality.

The SWS classes SWS(CQ, UCQ) and SWS_nr(CQ, UCQ) (Section 2) use conjunctive
queries — with ``=`` and ``≠``, as the paper stipulates — for transition
rules, and unions of conjunctive queries for synthesis rules.  This module
implements:

* the CQ data type with relational atoms, equalities and inequalities;
* evaluation against a database (any mapping of relation names to
  :class:`~repro.data.relation.Relation`), via backtracking joins;
* satisfiability (consistency of the =/≠ constraints);
* canonical databases, including the enumeration over *equality patterns*
  (partitions of the query's terms) that Klug's containment test for queries
  with inequality requires — this is the engine behind the coNEXPTIME
  equivalence procedure for SWS_nr(CQ, UCQ) (Theorem 4.1(2));
* containment and equivalence (against CQs and unions of CQs);
* core minimization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.data.relation import Relation, Row
from repro.errors import QueryError
from repro.logic.terms import (
    Constant,
    FreshVariableFactory,
    Substitution,
    Term,
    Variable,
    partitions,
    term_value,
)


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t1, ..., tk)``."""

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms: Iterable[Term]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))

    def variables(self) -> frozenset[Variable]:
        """Variables occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def constants(self) -> frozenset[Constant]:
        """Constants occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Constant))

    def rename(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Apply a variable renaming/substitution to the atom."""
        return Atom(self.relation, tuple(_apply(t, mapping) for t in self.terms))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class Comparison:
    """An equality (``negated=False``) or inequality (``negated=True``)."""

    left: Term
    right: Term
    negated: bool

    def variables(self) -> frozenset[Variable]:
        """Variables occurring in the comparison."""
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Variable))

    def rename(self, mapping: Mapping[Variable, Term]) -> "Comparison":
        """Apply a variable renaming/substitution."""
        return Comparison(_apply(self.left, mapping), _apply(self.right, mapping), self.negated)

    def __str__(self) -> str:
        op = "!=" if self.negated else "="
        return f"{self.left} {op} {self.right}"


def eq(left: Term, right: Term) -> Comparison:
    """An equality atom."""
    return Comparison(left, right, negated=False)


def neq(left: Term, right: Term) -> Comparison:
    """An inequality atom."""
    return Comparison(left, right, negated=True)


def _apply(term: Term, mapping: Mapping[Variable, Term]) -> Term:
    if isinstance(term, Variable):
        return mapping.get(term, term)
    return term


@dataclass(frozen=True)
class LabeledNull:
    """A fresh value used in canonical databases.

    Labeled nulls compare unequal to every ordinary constant and to every
    other null, which is exactly the freshness canonical-database arguments
    need.
    """

    index: int

    def __repr__(self) -> str:
        return f"⊥{self.index}"


class ConjunctiveQuery:
    """A conjunctive query with =/≠: ``head :- atoms, comparisons``.

    ``head`` is a tuple of terms (variables or constants); a 0-ary head
    makes the query boolean.  The query must be *safe*: every head variable
    and every variable in a comparison must be range-restricted, i.e. occur
    in a relational atom or be transitively equated to one (or to a
    constant).
    """

    def __init__(
        self,
        head: Iterable[Term],
        atoms: Iterable[Atom],
        comparisons: Iterable[Comparison] = (),
        name: str = "Q",
    ) -> None:
        self.head: tuple[Term, ...] = tuple(head)
        self.atoms: tuple[Atom, ...] = tuple(atoms)
        self.comparisons: tuple[Comparison, ...] = tuple(comparisons)
        self.name = name
        self._check_safety()

    # -- structure ----------------------------------------------------------------

    def variables(self) -> frozenset[Variable]:
        """All variables occurring anywhere in the query."""
        out: set[Variable] = {t for t in self.head if isinstance(t, Variable)}
        for atom in self.atoms:
            out |= atom.variables()
        for comp in self.comparisons:
            out |= comp.variables()
        return frozenset(out)

    def constants(self) -> frozenset[Constant]:
        """All constants occurring anywhere in the query."""
        out: set[Constant] = {t for t in self.head if isinstance(t, Constant)}
        for atom in self.atoms:
            out |= atom.constants()
        for comp in self.comparisons:
            out |= {
                t for t in (comp.left, comp.right) if isinstance(t, Constant)
            }
        return frozenset(out)

    def relations(self) -> frozenset[str]:
        """Names of all relations the query mentions."""
        return frozenset(a.relation for a in self.atoms)

    @property
    def arity(self) -> int:
        """Head arity."""
        return len(self.head)

    def equalities(self) -> tuple[Comparison, ...]:
        """The equality comparisons."""
        return tuple(c for c in self.comparisons if not c.negated)

    def inequalities(self) -> tuple[Comparison, ...]:
        """The inequality comparisons."""
        return tuple(c for c in self.comparisons if c.negated)

    def rename(self, mapping: Mapping[Variable, Term], name: str | None = None) -> "ConjunctiveQuery":
        """Apply a variable renaming/substitution throughout the query."""
        return ConjunctiveQuery(
            tuple(_apply(t, mapping) for t in self.head),
            tuple(a.rename(mapping) for a in self.atoms),
            tuple(c.rename(mapping) for c in self.comparisons),
            name or self.name,
        )

    def rename_apart(self, factory: FreshVariableFactory) -> "ConjunctiveQuery":
        """Rename every variable to a fresh one from ``factory``."""
        mapping = factory.rename_apart(sorted(self.variables()))
        return self.rename(mapping)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self.head == other.head
            and set(self.atoms) == set(other.atoms)
            and set(self.comparisons) == set(other.comparisons)
        )

    def __hash__(self) -> int:
        return hash((self.head, frozenset(self.atoms), frozenset(self.comparisons)))

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(str(t) for t in self.head)})"
        body = ", ".join(
            [str(a) for a in self.atoms] + [str(c) for c in self.comparisons]
        )
        return f"{head} :- {body}" if body else f"{head} :- true"

    def __repr__(self) -> str:
        return f"<CQ {self}>"

    # -- safety --------------------------------------------------------------------

    def _check_safety(self) -> None:
        classes = self._equality_classes()
        restricted: set[Variable] = set()
        atom_vars = {v for a in self.atoms for v in a.variables()}
        for cls in classes.values():
            grounded = any(isinstance(t, Constant) for t in cls) or any(
                t in atom_vars for t in cls if isinstance(t, Variable)
            )
            if grounded:
                restricted |= {t for t in cls if isinstance(t, Variable)}
        restricted |= atom_vars
        needed = {t for t in self.head if isinstance(t, Variable)}
        for comp in self.comparisons:
            needed |= comp.variables()
        unsafe = needed - restricted
        if unsafe:
            raise QueryError(
                f"query {self.name!r} is unsafe: variables "
                f"{sorted(v.name for v in unsafe)} are not range-restricted"
            )

    def _equality_classes(self) -> dict[Term, list[Term]]:
        """Union-find closure of the equality atoms, keyed by representative."""
        parent: dict[Term, Term] = {}

        def find(t: Term) -> Term:
            parent.setdefault(t, t)
            while parent[t] != t:
                parent[t] = parent[parent[t]]
                t = parent[t]
            return t

        def union(a: Term, b: Term) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for term in self._all_terms():
            find(term)
        for comp in self.equalities():
            union(comp.left, comp.right)
        classes: dict[Term, list[Term]] = {}
        for term in parent:
            classes.setdefault(find(term), []).append(term)
        return classes

    def _all_terms(self) -> Iterator[Term]:
        yield from self.head
        for atom in self.atoms:
            yield from atom.terms
        for comp in self.comparisons:
            yield comp.left
            yield comp.right

    # -- satisfiability ---------------------------------------------------------------

    def normalized(self) -> "ConjunctiveQuery | None":
        """Eliminate equalities by substituting class representatives.

        Returns an equivalent query without equality atoms, or ``None`` when
        the =/≠ constraints are inconsistent (two distinct constants forced
        equal, or an inequality within one class).
        """
        classes = self._equality_classes()
        mapping: dict[Variable, Term] = {}
        for cls in classes.values():
            constants = [t for t in cls if isinstance(t, Constant)]
            if len({c.value for c in constants}) > 1:
                return None
            rep: Term
            if constants:
                rep = constants[0]
            else:
                rep = min(
                    (t for t in cls if isinstance(t, Variable)),
                    key=lambda v: v.name,
                )
            for term in cls:
                if isinstance(term, Variable):
                    mapping[term] = rep
        new_ineqs: list[Comparison] = []
        for comp in self.inequalities():
            left = _apply(comp.left, mapping)
            right = _apply(comp.right, mapping)
            if left == right:
                return None
            if isinstance(left, Constant) and isinstance(right, Constant):
                continue  # distinct constants: trivially satisfied
            new_ineqs.append(Comparison(left, right, negated=True))
        return ConjunctiveQuery(
            tuple(_apply(t, mapping) for t in self.head),
            tuple(a.rename(mapping) for a in self.atoms),
            tuple(dict.fromkeys(new_ineqs)),
            self.name,
        )

    def is_satisfiable(self) -> bool:
        """Whether some database makes the query return its head."""
        return self.normalized() is not None

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, database: Mapping[str, Relation]) -> frozenset[Row]:
        """Evaluate against a database; returns the set of head tuples."""
        normalized = self.normalized()
        if normalized is None:
            return frozenset()
        results: set[Row] = set()
        for substitution in normalized._matches(database):
            if not normalized._inequalities_hold(substitution):
                continue
            results.add(
                tuple(term_value(t, substitution) for t in normalized.head)
            )
        return frozenset(results)

    def holds(self, database: Mapping[str, Relation]) -> bool:
        """For boolean queries: whether the body is satisfied."""
        return bool(self.evaluate(database))

    def _matches(self, database: Mapping[str, Relation]) -> Iterator[dict[Variable, Any]]:
        """Backtracking join over the relational atoms."""
        ordered = self._atom_order()
        yield from self._match_atoms(ordered, 0, {}, database)

    def _atom_order(self) -> list[Atom]:
        """Greedy join order: maximize bound variables at each step."""
        remaining = list(self.atoms)
        bound: set[Variable] = set()
        ordered: list[Atom] = []
        while remaining:
            best = max(remaining, key=lambda a: (len(a.variables() & bound), -len(a.variables())))
            ordered.append(best)
            remaining.remove(best)
            bound |= best.variables()
        return ordered

    def _match_atoms(
        self,
        atoms: list[Atom],
        index: int,
        substitution: dict[Variable, Any],
        database: Mapping[str, Relation],
    ) -> Iterator[dict[Variable, Any]]:
        if index == len(atoms):
            yield dict(substitution)
            return
        atom = atoms[index]
        if atom.relation not in database:
            raise QueryError(
                f"query {self.name!r} mentions relation {atom.relation!r} "
                f"absent from the database ({sorted(database)})"
            )
        for row in database[atom.relation]:
            extension = _unify(atom.terms, row, substitution)
            if extension is None:
                continue
            yield from self._match_atoms(atoms, index + 1, extension, database)

    def _inequalities_hold(self, substitution: Substitution) -> bool:
        for comp in self.inequalities():
            if term_value(comp.left, substitution) == term_value(comp.right, substitution):
                return False
        return True

    # -- canonical databases and containment ---------------------------------------------

    def canonical_instance(self) -> tuple[dict[str, set[Row]], Row] | None:
        """The canonical database: variables frozen to distinct nulls.

        Returns ``(facts, head_row)`` or ``None`` if the query is
        unsatisfiable.  This is the *most general* pattern; containment
        under inequality additionally needs :meth:`equality_patterns`.
        """
        normalized = self.normalized()
        if normalized is None:
            return None
        freeze: dict[Variable, Any] = {
            v: LabeledNull(i) for i, v in enumerate(sorted(normalized.variables()))
        }
        return normalized._freeze(freeze)

    def equality_patterns(
        self, extra_constants: Iterable[Constant] = ()
    ) -> Iterator[tuple[dict[str, set[Row]], Row]]:
        """All canonical databases over the equality patterns of the query.

        A pattern partitions the query's variables, identifying variables
        within a block and separating blocks; blocks may also be merged with
        constants.  Patterns violating the query's inequalities are skipped.
        Klug's containment test quantifies over exactly these instances:
        ``Q1 ⊆ Q2`` iff every pattern's canonical database makes ``Q2``
        return the frozen head of ``Q1``.

        ``extra_constants`` must include the constants of the *containing*
        query when the patterns drive a containment test: a variable of this
        query can, on a real database, take the value of a constant that
        only the other query mentions, and completeness requires covering
        that case.
        """
        normalized = self.normalized()
        if normalized is None:
            return
        variables = sorted(normalized.variables())
        constants = sorted(set(normalized.constants()) | set(extra_constants))
        # Each variable is either merged into one of the constants or placed
        # in a partition block with other variables.  We enumerate by first
        # choosing, for every variable, a constant (or "none"), and then
        # partitioning the unmerged variables.
        options: list[list[Constant | None]] = [
            [None, *constants] for _ in variables
        ]
        for choice in itertools.product(*options):
            merged: dict[Variable, Any] = {}
            free: list[Variable] = []
            for variable, target in zip(variables, choice):
                if target is None:
                    free.append(variable)
                else:
                    merged[variable] = target.value
            for partition in partitions(free):
                freeze = dict(merged)
                for i, block in enumerate(partition):
                    for variable in block:
                        freeze[variable] = LabeledNull(i)
                instance = normalized._freeze_checked(freeze)
                if instance is not None:
                    yield instance

    def _freeze(self, freeze: Mapping[Variable, Any]) -> tuple[dict[str, set[Row]], Row]:
        facts: dict[str, set[Row]] = {}
        for atom in self.atoms:
            row = tuple(term_value(t, freeze) for t in atom.terms)
            facts.setdefault(atom.relation, set()).add(row)
        head_row = tuple(term_value(t, freeze) for t in self.head)
        return facts, head_row

    def _freeze_checked(
        self, freeze: Mapping[Variable, Any]
    ) -> tuple[dict[str, set[Row]], Row] | None:
        if not self._inequalities_hold(freeze):
            return None
        return self._freeze(freeze)

    def contained_in(self, other: "ConjunctiveQuery") -> bool:
        """Whether this query is contained in ``other`` (Klug-style test)."""
        return self.contained_in_union((other,))

    def contained_in_union(self, disjuncts: Sequence["ConjunctiveQuery"]) -> bool:
        """Containment in a union of CQs.

        Complete for CQs with =/≠ (the equality-pattern enumeration) and for
        unions on the right-hand side (Sagiv–Yannakakis: the frozen head
        must be produced by *some* disjunct on *each* canonical instance).
        """
        for disjunct in disjuncts:
            if disjunct.arity != self.arity:
                raise QueryError(
                    "containment requires equal head arities: "
                    f"{self.arity} vs {disjunct.arity}"
                )
        needs_patterns = bool(self.inequalities()) or any(
            d.inequalities() for d in disjuncts
        )
        instances: Iterable[tuple[dict[str, set[Row]], Row]]
        if needs_patterns:
            other_constants: set[Constant] = set()
            for disjunct in disjuncts:
                other_constants |= disjunct.constants()
            instances = self.equality_patterns(other_constants)
        else:
            canonical = self.canonical_instance()
            instances = [canonical] if canonical is not None else []
        all_relations = self.relations().union(*(d.relations() for d in disjuncts))
        for facts, head_row in instances:
            database = _facts_as_database(facts, all_relations)
            if not any(head_row in d.evaluate(database) for d in disjuncts):
                return False
        return True

    def equivalent_to(self, other: "ConjunctiveQuery") -> bool:
        """Mutual containment."""
        return self.contained_in(other) and other.contained_in(self)

    def minimized(self) -> "ConjunctiveQuery":
        """Remove redundant atoms while preserving equivalence (core).

        Only meaningful (and only attempted) for queries without
        inequalities; queries with ≠ are returned unchanged.
        """
        if self.inequalities():
            return self
        atoms = list(self.atoms)
        changed = True
        while changed:
            changed = False
            for atom in list(atoms):
                candidate_atoms = [a for a in atoms if a != atom]
                if not candidate_atoms:
                    continue
                try:
                    candidate = ConjunctiveQuery(
                        self.head, candidate_atoms, self.comparisons, self.name
                    )
                except QueryError:
                    continue  # dropping the atom breaks safety
                if candidate.equivalent_to(self):
                    atoms = candidate_atoms
                    changed = True
                    break
        return ConjunctiveQuery(self.head, atoms, self.comparisons, self.name)


def _unify(
    terms: Sequence[Term], row: Row, substitution: Mapping[Variable, Any]
) -> dict[Variable, Any] | None:
    """Extend a substitution so the atom's terms match ``row``."""
    if len(terms) != len(row):
        raise QueryError(
            f"atom arity {len(terms)} does not match row arity {len(row)}"
        )
    extension = dict(substitution)
    for term, value in zip(terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extension.get(term, _UNBOUND)
            if bound is _UNBOUND:
                extension[term] = value
            elif bound != value:
                return None
    return extension


_UNBOUND = object()


def _facts_as_database(
    facts: Mapping[str, set[Row]], relations: Iterable[str]
) -> dict[str, Relation]:
    """Wrap frozen facts as anonymous relations for evaluation."""
    from repro.data.schema import RelationSchema

    database: dict[str, Relation] = {}
    for name in relations:
        rows = facts.get(name, set())
        arity = len(next(iter(rows))) if rows else 0
        schema = RelationSchema(name, [f"a{i}" for i in range(arity)])
        database[name] = Relation(schema, rows)
    return database
