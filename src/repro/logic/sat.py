"""A DPLL SAT solver.

The NP upper bounds of Theorem 4.1(3) — non-emptiness and validation for
SWS_nr(PL, PL) — are realized by encoding the bounded-depth run of a
nonrecursive PL service into a propositional formula and handing it to this
solver.  The solver implements classical DPLL with unit propagation, pure
literal elimination and a most-frequent-variable branching heuristic; it is
complete, deterministic, and more than fast enough for the instance sizes
the benchmarks sweep.

The solver also exposes :func:`satisfiable`, :func:`valid`,
:func:`equivalent` and :func:`all_models` conveniences over formulas.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro._stats import STATS
from repro.guard import checkpoint, register_span
from repro.logic import pl
from repro.obs import traced
from repro.logic.cnf import CNF, Clause, Literal, to_cnf, tseitin


@traced("sat.solve_cnf", kind="logic")
def solve_cnf(clauses: Iterable[Clause]) -> dict[str, bool] | None:
    """Return a satisfying assignment for a CNF, or ``None`` if UNSAT.

    The returned assignment covers every variable the search fixed; callers
    may extend it arbitrarily on untouched variables.
    """
    STATS.sat_calls += 1
    return _dpll([frozenset(c) for c in clauses], {})


def _dpll(clauses: list[Clause], assignment: dict[str, bool]) -> dict[str, bool] | None:
    # Raising variant: no boundary here — a GuardTrip (a populated
    # BudgetExceededError) propagates to the guarded caller.
    checkpoint("sat.solve_cnf")
    if any(not clause for clause in clauses):
        return None
    clauses, assignment = _propagate(clauses, dict(assignment))
    if clauses is None:
        return None
    if not clauses:
        return assignment
    variable = _choose_variable(clauses)
    STATS.dpll_decisions += 1
    for value in (True, False):
        trial = dict(assignment)
        trial[variable] = value
        reduced = _assign(clauses, Literal(variable, value))
        if reduced is None:
            continue
        result = _dpll(reduced, trial)
        if result is not None:
            return result
    return None


def _propagate(
    clauses: list[Clause], assignment: dict[str, bool]
) -> tuple[list[Clause] | None, dict[str, bool]]:
    """Exhaustive unit propagation and pure-literal elimination."""
    changed = True
    while changed:
        changed = False
        # Unit propagation.
        unit = next((c for c in clauses if len(c) == 1), None)
        if unit is not None:
            lit = next(iter(unit))
            assignment[lit.variable] = lit.positive
            clauses = _assign(clauses, lit)
            if clauses is None:
                return None, assignment
            changed = True
            continue
        # Pure literal elimination.
        polarity: dict[str, set[bool]] = {}
        for clause in clauses:
            for lit in clause:
                polarity.setdefault(lit.variable, set()).add(lit.positive)
        pure = next(
            (var for var, pols in polarity.items() if len(pols) == 1), None
        )
        if pure is not None:
            positive = next(iter(polarity[pure]))
            assignment[pure] = positive
            clauses = _assign(clauses, Literal(pure, positive))
            if clauses is None:
                return None, assignment
            changed = True
    return clauses, assignment


def _assign(clauses: list[Clause], literal: Literal) -> list[Clause] | None:
    """Condition a CNF on a literal; ``None`` signals a conflict."""
    negation = literal.negated()
    out: list[Clause] = []
    for clause in clauses:
        if literal in clause:
            continue
        if negation in clause:
            reduced = clause - {negation}
            if not reduced:
                return None
            out.append(reduced)
        else:
            out.append(clause)
    return out


def _choose_variable(clauses: list[Clause]) -> str:
    counts: Counter[str] = Counter()
    for clause in clauses:
        for lit in clause:
            counts[lit.variable] += 1
    variable, _count = counts.most_common(1)[0]
    return variable


# -- formula-level conveniences -------------------------------------------------


def satisfiable(formula: pl.Formula) -> bool:
    """Whether the formula has a model (Tseitin + DPLL)."""
    clauses, _root = tseitin(formula)
    return solve_cnf(clauses) is not None


def model(formula: pl.Formula) -> frozenset[str] | None:
    """A model of the formula as the set of true *original* variables.

    Returns ``None`` when unsatisfiable.  Tseitin definition variables are
    filtered out; original variables the solver never touched default to
    false, which is always sound for a completed DPLL run.
    """
    clauses, _root = tseitin(formula)
    solution = solve_cnf(clauses)
    if solution is None:
        return None
    original = formula.variables()
    return frozenset(v for v in original if solution.get(v, False))


def valid(formula: pl.Formula) -> bool:
    """Whether the formula is a tautology."""
    return not satisfiable(pl.Not(formula))


def equivalent(left: pl.Formula, right: pl.Formula) -> bool:
    """Whether two formulas agree under every assignment."""
    differ = (left & pl.Not(right)) | (pl.Not(left) & right)
    return not satisfiable(differ)


def all_models(formula: pl.Formula) -> Iterator[frozenset[str]]:
    """Enumerate all models over the formula's own variables.

    Exponential by nature; used by tests and brute-force oracles on small
    formulas only.
    """
    variables = sorted(formula.variables())
    for mask in range(2 ** len(variables)):
        assignment = frozenset(
            v for i, v in enumerate(variables) if mask >> i & 1
        )
        if formula.evaluate(assignment):
            yield assignment


def count_models(formula: pl.Formula) -> int:
    """Number of models over the formula's own variables (brute force)."""
    return sum(1 for _ in all_models(formula))


register_span(
    "sat.solve_cnf",
    "DPLL recursion (one checkpoint per call)",
    "Theorem 4.1(3): NP procedures for SWS_nr(PL, PL) via SAT",
    raising_only=True,
)
