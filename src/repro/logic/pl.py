"""Propositional logic.

SWS(PL, PL) services (Section 2, "SWS classes") express both transition and
synthesis queries as propositional formulas.  An input message is a truth
assignment represented as the set of variables that are true; message and
action registers hold a single truth value.

This module provides the formula AST, a small recursive-descent parser, and
the operations the SWS machinery needs: evaluation, substitution of formulas
for variables (used when synthesis formulas are instantiated with successor
action values), variable collection, and structural simplification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Mapping

from repro.errors import QueryError

Assignment = AbstractSet[str]


class Formula:
    """Base class for propositional formulas.

    Formulas are immutable value objects; ``&``, ``|``, ``~`` and ``>>``
    build conjunctions, disjunctions, negations and implications.
    """

    def evaluate(self, assignment: Assignment) -> bool:
        """Truth value under ``assignment`` (the set of true variables)."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """All variables occurring in the formula."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Formula"]) -> "Formula":
        """Replace variables by formulas, simultaneously."""
        raise NotImplementedError

    def simplify(self) -> "Formula":
        """Bottom-up constant propagation and trivial-identity removal."""
        raise NotImplementedError

    # -- operator sugar -------------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Or((Not(self), other))


@dataclass(frozen=True)
class Var(Formula):
    """A propositional variable."""

    name: str

    def evaluate(self, assignment: Assignment) -> bool:
        return self.name in assignment

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return mapping.get(self.name, self)

    def simplify(self) -> Formula:
        return self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Formula):
    """A propositional constant (true or false)."""

    value: bool

    def evaluate(self, assignment: Assignment) -> bool:
        return self.value

    def variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return self

    def simplify(self) -> Formula:
        return self

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def evaluate(self, assignment: Assignment) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return Not(self.operand.substitute(mapping))

    def simplify(self) -> Formula:
        inner = self.operand.simplify()
        if isinstance(inner, Const):
            return Const(not inner.value)
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)

    def __str__(self) -> str:
        return f"!{_wrap(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction.  ``And(())`` is true."""

    operands: tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, assignment: Assignment) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def variables(self) -> frozenset[str]:
        return frozenset().union(*(op.variables() for op in self.operands))

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return And(op.substitute(mapping) for op in self.operands)

    def simplify(self) -> Formula:
        flat: list[Formula] = []
        for op in self.operands:
            s = op.simplify()
            if isinstance(s, Const):
                if not s.value:
                    return FALSE
                continue
            if isinstance(s, And):
                flat.extend(s.operands)
            else:
                flat.append(s)
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        return And(flat)

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return " & ".join(_wrap(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction.  ``Or(())`` is false."""

    operands: tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, assignment: Assignment) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def variables(self) -> frozenset[str]:
        return frozenset().union(*(op.variables() for op in self.operands))

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return Or(op.substitute(mapping) for op in self.operands)

    def simplify(self) -> Formula:
        flat: list[Formula] = []
        for op in self.operands:
            s = op.simplify()
            if isinstance(s, Const):
                if s.value:
                    return TRUE
                continue
            if isinstance(s, Or):
                flat.extend(s.operands)
            else:
                flat.append(s)
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        return Or(flat)

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return " | ".join(_wrap(op) for op in self.operands)


def _wrap(formula: Formula) -> str:
    if isinstance(formula, (Var, Const, Not)):
        return str(formula)
    return f"({formula})"


def conjoin(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of a (possibly empty) collection, simplified."""
    return And(formulas).simplify()


def disjoin(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of a (possibly empty) collection, simplified."""
    return Or(formulas).simplify()


def iff(left: Formula, right: Formula) -> Formula:
    """Biconditional, expressed through the core connectives."""
    return (left & right) | (~left & ~right)


# -- parser -----------------------------------------------------------------
#
# Grammar (lowest to highest precedence):
#   formula    := implication
#   implication:= disjunction ('->' implication)?
#   disjunction:= conjunction ('|' conjunction)*
#   conjunction:= unary ('&' unary)*
#   unary      := '!' unary | atom
#   atom       := 'true' | 'false' | identifier | '(' formula ')'


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = self._tokenize(text)
        self._pos = 0

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        tokens: list[str] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
            elif ch in "()&|!":
                tokens.append(ch)
                i += 1
            elif text.startswith("->", i):
                tokens.append("->")
                i += 2
            elif ch.isalnum() or ch == "_":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                tokens.append(text[i:j])
                i = j
            else:
                raise QueryError(f"unexpected character {ch!r} in formula {text!r}")
        return tokens

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of formula")
        self._pos += 1
        return token

    def parse(self) -> Formula:
        formula = self._implication()
        if self._peek() is not None:
            raise QueryError(f"trailing tokens after formula: {self._tokens[self._pos:]}")
        return formula

    def _implication(self) -> Formula:
        left = self._disjunction()
        if self._peek() == "->":
            self._next()
            right = self._implication()
            return Or((Not(left), right))
        return left

    def _disjunction(self) -> Formula:
        operands = [self._conjunction()]
        while self._peek() == "|":
            self._next()
            operands.append(self._conjunction())
        if len(operands) == 1:
            return operands[0]
        return Or(operands)

    def _conjunction(self) -> Formula:
        operands = [self._unary()]
        while self._peek() == "&":
            self._next()
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return And(operands)

    def _unary(self) -> Formula:
        if self._peek() == "!":
            self._next()
            return Not(self._unary())
        return self._atom()

    def _atom(self) -> Formula:
        token = self._next()
        if token == "(":
            inner = self._implication()
            if self._next() != ")":
                raise QueryError("unbalanced parentheses in formula")
            return inner
        if token == "true":
            return TRUE
        if token == "false":
            return FALSE
        if token in {")", "&", "|", "->", "!"}:
            raise QueryError(f"unexpected token {token!r} in formula")
        return Var(token)


def parse(text: str) -> Formula:
    """Parse a formula from its textual syntax.

    Connectives: ``!`` (not), ``&`` (and), ``|`` (or), ``->`` (implies);
    constants ``true`` / ``false``; identifiers are variables.
    """
    return _Parser(text).parse()
